//! Cluster monitoring: the paper's motivating scenario (§2.2) on the
//! Borg-like stream — detect job stages with session windows and count
//! job submissions with tumbling windows, then see how differently the
//! two workloads load the state store.
//!
//! Run with: `cargo run --release --example cluster_monitoring`

use gadget::analysis::{key_sequence, ttl_distribution, working_set, working_set_series};
use gadget::core::{GadgetConfig, OperatorKind};
use gadget::datasets::DatasetSpec;
use gadget::hashlog::{HashLogConfig, HashLogStore};
use gadget::lsm::{LsmConfig, LsmStore};
use gadget::replay::TraceReplayer;

fn main() {
    let spec = DatasetSpec::benchmark().with_events(80_000);

    // "Detect job stages by grouping tasks submitted in quick succession":
    // a 2-minute session window keyed by jobID.
    let sessions = GadgetConfig::dataset(OperatorKind::SessionIncr, "borg", spec).run();

    // "Compute the number of jobs submitted every 5 seconds":
    // an incremental tumbling window.
    let counts = GadgetConfig::dataset(OperatorKind::TumblingIncr, "borg", spec).run();

    for (name, trace) in [
        ("session(stage detect)", &sessions),
        ("tumbling(submit rate)", &counts),
    ] {
        let stats = trace.stats();
        let keys = key_sequence(trace);
        let ws = working_set_series(&keys, 100);
        let ttl = ttl_distribution(&keys, None);
        println!(
            "{name}: {} ops, {:.2} deletes-ratio, peak working set {}, p50 TTL {} steps",
            stats.total,
            stats.ratio(gadget::types::OpType::Delete),
            working_set::peak(&ws),
            ttl.percentile(50.0)
        );
    }

    // Which store should back this pipeline? Try both session-window
    // candidates on the heavier workload.
    let dir = std::env::temp_dir().join("gadget-cluster-monitoring");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");

    let lsm = LsmStore::open(dir.join("lsm"), LsmConfig::small()).expect("open lsm");
    let hash = HashLogStore::new(HashLogConfig::default());
    let replayer = TraceReplayer::default();
    for report in [
        replayer
            .replay(&sessions, &lsm, "sessions")
            .expect("replay"),
        replayer
            .replay(&sessions, &hash, "sessions")
            .expect("replay"),
    ] {
        println!(
            "sessions on {:>8}: {:>8.0} ops/s, p99.9 {:>7.1}us",
            report.store,
            report.throughput,
            report.latency.p999_ns as f64 / 1_000.0
        );
    }
    drop(lsm);
    let _ = std::fs::remove_dir_all(&dir);
}
