//! Taxi analytics: the paper's location-based-service example — join
//! shared-ride fare events with trips before the drop-off timestamp
//! (continuous join), and watch how window length drives delete ratios on
//! a slow stream (Fig. 2's effect).
//!
//! Run with: `cargo run --release --example taxi_analytics`

use gadget::core::{GadgetConfig, OperatorKind};
use gadget::datasets::DatasetSpec;
use gadget::types::OpType;

fn main() {
    let spec = DatasetSpec::benchmark().with_events(80_000);

    // "Total taxi fare events for a shared ride before the drop-off":
    // a continuous join over trips (left) and fares (right).
    let join = GadgetConfig::dataset(OperatorKind::ContinuousJoin, "taxi", spec).run();
    let stats = join.stats();
    println!(
        "continuous join: {} ops | get={:.2} put={:.2} merge={:.2} delete={:.2}",
        stats.total,
        stats.ratio(OpType::Get),
        stats.ratio(OpType::Put),
        stats.ratio(OpType::Merge),
        stats.ratio(OpType::Delete)
    );
    println!(
        "every drop-off cleans its ride: deletes track trips ({} deletes)",
        stats.deletes
    );

    // Fig. 2's effect: on a slow stream, shrinking the window raises the
    // delete share because windows hold fewer updates before they expire.
    println!("\nwindow length sweep (tumbling-incr over taxi):");
    for secs in [1u64, 5, 30, 60] {
        let mut cfg = GadgetConfig::dataset(OperatorKind::TumblingIncr, "taxi", spec);
        cfg.window_length = secs * 1_000;
        let s = cfg.run().stats();
        let bar = "#".repeat((s.ratio(OpType::Delete) * 80.0) as usize);
        println!(
            "  {secs:>3}s windows: delete ratio {:.3} {bar}",
            s.ratio(OpType::Delete)
        );
    }
}
