//! Store shootout: a compact version of the paper's Figure 13 — pick the
//! right store for your operator. Holistic windows want the LSM's lazy
//! merge; incremental operators want in-place updates.
//!
//! Run with: `cargo run --release --example store_shootout`

use std::sync::Arc;

use gadget::btree::{BTreeConfig, BTreeStore};
use gadget::core::{GadgetConfig, GeneratorConfig, OperatorKind};
use gadget::hashlog::{HashLogConfig, HashLogStore};
use gadget::kv::StateStore;
use gadget::lsm::{LsmConfig, LsmStore};
use gadget::replay::TraceReplayer;

fn main() {
    let workloads = [
        OperatorKind::Aggregation,
        OperatorKind::TumblingIncr,
        OperatorKind::TumblingHol,
    ];
    let base = std::env::temp_dir().join("gadget-shootout");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).expect("mkdir");

    println!(
        "{:>14} | {:>16} | {:>10} | {:>9}",
        "workload", "store", "Kops/s", "p99.9 us"
    );
    println!("{}", "-".repeat(60));
    for kind in workloads {
        let trace = GadgetConfig::synthetic(
            kind,
            GeneratorConfig {
                events: 30_000,
                ..GeneratorConfig::default()
            },
        )
        .run();

        let stores: Vec<(&str, Arc<dyn StateStore>)> = vec![
            (
                "rocksdb-class",
                Arc::new(
                    LsmStore::open(
                        base.join(format!("lsm-{}", kind.name())),
                        LsmConfig {
                            memtable_bytes: 8 << 20,
                            block_cache_bytes: 4 << 20,
                            l1_target_bytes: 16 << 20,
                            target_file_bytes: 4 << 20,
                            ..LsmConfig::default()
                        },
                    )
                    .expect("open lsm"),
                ),
            ),
            (
                "faster-class",
                Arc::new(HashLogStore::new(HashLogConfig::default())),
            ),
            (
                "berkeleydb-class",
                Arc::new(
                    BTreeStore::open(
                        base.join(format!("bt-{}.db", kind.name())),
                        BTreeConfig::default(),
                    )
                    .expect("open btree"),
                ),
            ),
        ];
        let mut best = ("", 0.0f64);
        for (label, store) in &stores {
            let report = TraceReplayer::default()
                .replay(&trace, store.as_ref(), kind.name())
                .expect("replay");
            if report.throughput > best.1 {
                best = (label, report.throughput);
            }
            println!(
                "{:>14} | {:>16} | {:>10.1} | {:>9.1}",
                kind.name(),
                label,
                report.throughput / 1_000.0,
                report.latency.p999_ns as f64 / 1_000.0
            );
        }
        println!("{:>14} > winner: {}", "", best.0);
    }
    let _ = std::fs::remove_dir_all(&base);
}
