//! Extending Gadget with a custom operator (the paper's §5.4 API).
//!
//! The paper's pitch: adding a new operator to Gadget is a ~30-line state
//! machine, vastly easier than instrumenting a stream processor. This
//! example defines a *deduplicating top-K* operator — a common enrichment
//! stage that keeps one "seen" flag and one top-K digest per key — wires
//! it through the standard [`Driver`], and characterizes its workload
//! exactly like the built-ins.
//!
//! Run with: `cargo run --release --example custom_operator`

use std::collections::BTreeMap;

use gadget::analysis::{key_sequence, stack_distances};
use gadget::core::{Driver, EventGenerator, GeneratorConfig, Operator};
use gadget::types::{Event, StateAccess, StateKey, Timestamp};

/// A deduplicating top-K operator.
///
/// Per event: probe a per-(key, time-bucket) dedup flag (`get`); first
/// occurrence writes the flag (`put`) and lazily appends the event to the
/// key's top-K digest (`merge`). Expired dedup buckets are purged on
/// watermark (`delete`), while digests live forever like a rolling
/// aggregate.
struct DedupTopK {
    /// Dedup flag granularity in ms.
    bucket_ms: Timestamp,
    /// Driver-side metadata: which (key, bucket) flags exist, by expiry.
    vindex: BTreeMap<Timestamp, Vec<StateKey>>,
    /// Metadata mirror of live flags, to model the hit/miss outcome.
    live: std::collections::HashSet<u128>,
}

impl DedupTopK {
    fn new(bucket_ms: Timestamp) -> Self {
        DedupTopK {
            bucket_ms,
            vindex: BTreeMap::new(),
            live: std::collections::HashSet::new(),
        }
    }
}

impl Operator for DedupTopK {
    fn name(&self) -> &'static str {
        "dedup-topk"
    }

    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>) {
        let bucket = event.timestamp - event.timestamp % self.bucket_ms;
        let flag = StateKey::windowed(event.key, bucket);
        // Probe the dedup flag.
        out.push(StateAccess::get(flag, event.timestamp));
        if self.live.insert(flag.as_u128()) {
            // First sighting in this bucket: set the flag, update digest.
            out.push(StateAccess::put(flag, 1, event.timestamp));
            let digest = StateKey::plain(event.key);
            out.push(StateAccess::merge(digest, 16, event.timestamp));
            self.vindex
                .entry(bucket + self.bucket_ms)
                .or_default()
                .push(flag);
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Vec<StateAccess>) {
        let due: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&t, _)| t).collect();
        for t in due {
            for flag in self.vindex.remove(&t).expect("listed") {
                self.live.remove(&flag.as_u128());
                out.push(StateAccess::delete(flag, wm));
            }
        }
    }
}

fn main() {
    let stream = EventGenerator::new(GeneratorConfig {
        events: 50_000,
        ..GeneratorConfig::default()
    })
    .generate();

    // The custom operator plugs into the standard driver unchanged.
    let mut driver = Driver::new(Box::new(DedupTopK::new(10_000)));
    let trace = driver.run(stream.into_iter());

    let stats = trace.stats();
    println!(
        "dedup-topk: {} accesses from {} events ({:.2}x amplification)",
        stats.total,
        stats.input_events,
        stats.event_amplification().unwrap_or(0.0)
    );
    println!(
        "composition: get={:.2} put={:.2} merge={:.2} delete={:.2}",
        stats.ratio(gadget::types::OpType::Get),
        stats.ratio(gadget::types::OpType::Put),
        stats.ratio(gadget::types::OpType::Merge),
        stats.ratio(gadget::types::OpType::Delete)
    );
    let sd = stack_distances(&key_sequence(&trace), None);
    println!(
        "mean stack distance: {:.1} — a dedup stage is cache-friendly",
        sd.mean
    );
    println!(
        "deletes ({}) purge dedup flags; the top-K digests persist like a rolling aggregate",
        stats.deletes
    );
}
