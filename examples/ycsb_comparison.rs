//! Why YCSB is not enough: tune YCSB as close as possible to a streaming
//! workload and watch both the locality metrics and the measured store
//! performance diverge (the paper's §4 and §6.2 in one sitting).
//!
//! Run with: `cargo run --release --example ycsb_comparison`

use gadget::analysis::{key_sequence, stack_distances, ttl_distribution, unique_sequences};
use gadget::core::{GadgetConfig, OperatorKind};
use gadget::datasets::DatasetSpec;
use gadget::kv::MemStore;
use gadget::replay::TraceReplayer;
use gadget::types::OpType;
use gadget::ycsb::{RequestDistribution, YcsbConfig};

fn main() {
    // The real streaming workload: tumbling window over Borg.
    let spec = DatasetSpec::benchmark().with_events(60_000);
    let real = GadgetConfig::dataset(OperatorKind::TumblingIncr, "borg", spec).run();
    let stats = real.stats();

    // Tune YCSB "as close as possible": same op count, same keyspace,
    // same read/update ratio (the paper's §4 methodology).
    let tuned = |distribution| {
        YcsbConfig {
            record_count: stats.distinct_keys,
            operation_count: stats.total,
            read_proportion: stats.ratio(OpType::Get),
            update_proportion: 1.0 - stats.ratio(OpType::Get),
            insert_proportion: 0.0,
            rmw_proportion: 0.0,
            distribution,
            value_size: 256,
            seed: 42,
        }
        .generate()
    };
    let ycsb_latest = tuned(RequestDistribution::Latest);
    let ycsb_sequential = tuned(RequestDistribution::Sequential);

    println!(
        "{:>16} | {:>9} | {:>10} | {:>9} | {:>9}",
        "trace", "mean SD", "uniq seqs", "p50 TTL", "once-frac"
    );
    println!("{}", "-".repeat(66));
    for (name, trace) in [
        ("real", &real),
        ("ycsb-latest", &ycsb_latest),
        ("ycsb-sequential", &ycsb_sequential),
    ] {
        let keys = key_sequence(trace);
        let sd = stack_distances(&keys, None);
        let seqs = unique_sequences(&keys, 10);
        let ttl = ttl_distribution(&keys, None);
        println!(
            "{:>16} | {:>9.1} | {:>10} | {:>9} | {:>9.2}",
            name,
            sd.mean,
            seqs.total(),
            ttl.percentile(50.0),
            ttl.accessed_once_fraction()
        );
    }

    // And the performance consequence: even on a neutral store the hit
    // profile differs completely (real traces delete their keys; YCSB
    // keeps touching everything forever).
    println!();
    for (name, trace) in [("real", &real), ("ycsb-latest", &ycsb_latest)] {
        let store = MemStore::new();
        let report = TraceReplayer::default()
            .replay(trace, &store, name)
            .expect("replay");
        println!(
            "{name}: leftover keys in store after replay = {} (real workloads clean up)",
            store.len()
        );
        let _ = report;
    }
}
