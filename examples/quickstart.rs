//! Quickstart: generate a streaming state-access workload, characterize
//! it, and benchmark a store with it — the five-minute tour of Gadget.
//!
//! Run with: `cargo run --release --example quickstart`

use gadget::analysis::{key_sequence, stack_distances, unique_sequences};
use gadget::core::{GadgetConfig, GeneratorConfig, OperatorKind};
use gadget::lsm::{LsmConfig, LsmStore};
use gadget::replay::TraceReplayer;
use gadget::types::OpType;

fn main() {
    // 1. Describe a workload: a 5s incremental tumbling window over a
    //    zipfian event stream arriving at 1K events/s.
    let config = GadgetConfig::synthetic(
        OperatorKind::TumblingIncr,
        GeneratorConfig {
            events: 50_000,
            ..GeneratorConfig::default()
        },
    );

    // 2. Offline mode: simulate the operator to produce the state-access
    //    trace without touching any store.
    let trace = config.run();
    let stats = trace.stats();
    println!(
        "generated {} state accesses from {} events",
        stats.total, stats.input_events
    );
    println!(
        "composition: get={:.2} put={:.2} merge={:.2} delete={:.2}",
        stats.ratio(OpType::Get),
        stats.ratio(OpType::Put),
        stats.ratio(OpType::Merge),
        stats.ratio(OpType::Delete)
    );
    println!(
        "amplification: {:.1}x events, {:.1}x keyspace",
        stats.event_amplification().unwrap_or(0.0),
        stats.key_amplification().unwrap_or(0.0)
    );

    // 3. Characterize the trace's locality.
    let keys = key_sequence(&trace);
    let sd = stack_distances(&keys, None);
    println!("mean LRU stack distance: {:.1}", sd.mean);
    println!(
        "unique key sequences (len<=10): {}",
        unique_sequences(&keys, 10).total()
    );

    // 4. Replay the trace against the RocksDB-class LSM store and measure.
    let dir = std::env::temp_dir().join("gadget-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let store = LsmStore::open(&dir, LsmConfig::small()).expect("open store");
    let report = TraceReplayer::default()
        .replay(&trace, &store, "tumbling-incr")
        .expect("replay");
    println!(
        "replayed on {}: {:.0} ops/s, p99.9 = {:.1}us",
        report.store,
        report.throughput,
        report.latency.p999_ns as f64 / 1_000.0
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
