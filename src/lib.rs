//! Gadget: a benchmark harness for systematic and robust evaluation of
//! streaming state stores.
//!
//! This is the facade crate of the workspace: it re-exports every subsystem
//! under a stable, discoverable module tree. See the README for a tour and
//! `examples/quickstart.rs` for a five-minute introduction.
//!
//! # Crate map
//!
//! * [`types`] — events, watermarks, state accesses, traces.
//! * [`distrib`] — key/value/arrival distributions.
//! * [`kv`] — the [`StateStore`](kv::StateStore) trait and adapters.
//! * [`lsm`], [`hashlog`], [`btree`] — the three store substrates
//!   (RocksDB/Lethe-class, FASTER-class, and BerkeleyDB-class).
//! * [`datasets`] — synthetic Borg / Taxi / Azure event streams.
//! * [`core`] — event generator, driver, operator state machines, and the
//!   workload generator.
//! * [`replay`] — the performance evaluator (trace replayer, online mode).
//! * [`ycsb`] — a YCSB-compatible workload generator used as baseline.
//! * [`flinksim`] — an instrumented reference stream processor that produces
//!   "real" traces for validating Gadget's simulation.
//! * [`analysis`] — trace characterization (locality, amplification, TTL,
//!   statistical tests).
//! * [`report`] — versioned run reports and statistical perf-regression
//!   comparison (KS + Wasserstein, PASS/WARN/REGRESSED verdicts).

pub use gadget_analysis as analysis;
pub use gadget_btree as btree;
pub use gadget_core as core;
pub use gadget_datasets as datasets;
pub use gadget_distrib as distrib;
pub use gadget_flinksim as flinksim;
pub use gadget_hashlog as hashlog;
pub use gadget_kv as kv;
pub use gadget_lsm as lsm;
pub use gadget_obs as obs;
pub use gadget_replay as replay;
pub use gadget_report as report;
pub use gadget_server as server;
pub use gadget_types as types;
pub use gadget_ycsb as ycsb;
