//! One shard: a hash index over an append-only record log.

use std::collections::HashMap;

use bytes::Bytes;

use crate::HashLogConfig;

/// Record header: `[klen u16][vcap u32][vlen u32]`.
const HEADER: usize = 10;

/// A single-threaded shard; the store wraps each shard in a mutex.
pub struct Shard {
    index: HashMap<Vec<u8>, usize>,
    log: Vec<u8>,
    dead_bytes: usize,
    config: HashLogConfig,
    in_place_updates: u64,
    copy_updates: u64,
    gc_runs: u64,
}

impl Shard {
    /// Creates an empty shard.
    pub fn new(config: HashLogConfig) -> Self {
        Shard {
            index: HashMap::new(),
            log: Vec::new(),
            dead_bytes: 0,
            config,
            in_place_updates: 0,
            copy_updates: 0,
            gc_runs: 0,
        }
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    fn record_vcap(&self, addr: usize) -> usize {
        u32::from_le_bytes(self.log[addr + 2..addr + 6].try_into().unwrap()) as usize
    }

    fn record_klen(&self, addr: usize) -> usize {
        u16::from_le_bytes(self.log[addr..addr + 2].try_into().unwrap()) as usize
    }

    fn record_vlen(&self, addr: usize) -> usize {
        u32::from_le_bytes(self.log[addr + 6..addr + 10].try_into().unwrap()) as usize
    }

    fn record_size(&self, addr: usize) -> usize {
        HEADER + self.record_klen(addr) + self.record_vcap(addr)
    }

    fn value_range(&self, addr: usize) -> (usize, usize) {
        let start = addr + HEADER + self.record_klen(addr);
        (start, start + self.record_vlen(addr))
    }

    /// Whether a record address lies in the in-place-updatable tail region.
    fn in_mutable_region(&self, addr: usize) -> bool {
        addr + self.config.mutable_bytes >= self.log.len()
    }

    fn append_record(&mut self, key: &[u8], value: &[u8]) -> usize {
        let vcap = value.len() + self.config.value_slack;
        let addr = self.log.len();
        self.log.reserve(HEADER + key.len() + vcap);
        self.log
            .extend_from_slice(&(key.len() as u16).to_le_bytes());
        self.log.extend_from_slice(&(vcap as u32).to_le_bytes());
        self.log
            .extend_from_slice(&(value.len() as u32).to_le_bytes());
        self.log.extend_from_slice(key);
        self.log.extend_from_slice(value);
        self.log.resize(addr + HEADER + key.len() + vcap, 0);
        addr
    }

    /// Visits every live record (exactly one per key, via the hash
    /// index) as `(key, value)` slices — the checkpoint walk. The raw
    /// log is *not* snapshot-restorable on its own: deletes drop index
    /// entries without writing tombstones, so only the index knows
    /// which records are alive.
    pub fn for_each_live(&self, mut f: impl FnMut(&[u8], &[u8])) {
        for (key, &addr) in &self.index {
            let (start, end) = self.value_range(addr);
            f(key, &self.log[start..end]);
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let &addr = self.index.get(key)?;
        let (start, end) = self.value_range(addr);
        Some(Bytes::copy_from_slice(&self.log[start..end]))
    }

    /// Insert or overwrite.
    pub fn upsert(&mut self, key: &[u8], value: &[u8]) {
        if let Some(&addr) = self.index.get(key) {
            if self.in_mutable_region(addr) && value.len() <= self.record_vcap(addr) {
                // In-place update.
                let klen = self.record_klen(addr);
                self.log[addr + 6..addr + 10].copy_from_slice(&(value.len() as u32).to_le_bytes());
                let start = addr + HEADER + klen;
                self.log[start..start + value.len()].copy_from_slice(value);
                self.in_place_updates += 1;
                return;
            }
            // Read-copy-update: retire the old record.
            self.dead_bytes += self.record_size(addr);
            self.copy_updates += 1;
        }
        let addr = self.append_record(key, value);
        self.index.insert(key.to_vec(), addr);
        self.maybe_gc();
    }

    /// Read-modify-write append: the merge translation for this store.
    pub fn rmw_append(&mut self, key: &[u8], operand: &[u8]) {
        match self.index.get(key).copied() {
            None => self.upsert(key, operand),
            Some(addr) => {
                let (start, end) = self.value_range(addr);
                let vlen = end - start;
                let new_len = vlen + operand.len();
                if self.in_mutable_region(addr) && new_len <= self.record_vcap(addr) {
                    // Grow in place within the allocated capacity.
                    self.log[addr + 6..addr + 10].copy_from_slice(&(new_len as u32).to_le_bytes());
                    self.log[end..end + operand.len()].copy_from_slice(operand);
                    self.in_place_updates += 1;
                } else {
                    // Copy the full value and append — O(value) cost.
                    let mut value = Vec::with_capacity(new_len);
                    value.extend_from_slice(&self.log[start..end]);
                    value.extend_from_slice(operand);
                    self.dead_bytes += self.record_size(addr);
                    self.copy_updates += 1;
                    let addr = self.append_record(key, &value);
                    self.index.insert(key.to_vec(), addr);
                    self.maybe_gc();
                }
            }
        }
    }

    /// Removes a key.
    pub fn delete(&mut self, key: &[u8]) {
        if let Some(addr) = self.index.remove(key) {
            self.dead_bytes += self.record_size(addr);
            self.maybe_gc();
        }
    }

    fn maybe_gc(&mut self) {
        if self.log.len() < self.config.gc_min_bytes {
            return;
        }
        if (self.dead_bytes as f64) < self.config.gc_dead_fraction * self.log.len() as f64 {
            return;
        }
        // GC runs inline on the writing thread, so this span is exactly
        // the window in which foreground ops on this shard stall.
        let _span = gadget_obs::trace::span(
            gadget_obs::trace::Category::HashlogGc,
            self.dead_bytes as u64,
        );
        // Compact: rewrite live records into a fresh log.
        let mut new_log = Vec::with_capacity(self.log.len().saturating_sub(self.dead_bytes));
        let mut new_index = HashMap::with_capacity(self.index.len());
        // Preserve insertion-order-independent correctness by walking the
        // index (order irrelevant: one live record per key).
        let entries: Vec<(Vec<u8>, usize)> =
            self.index.iter().map(|(k, &a)| (k.clone(), a)).collect();
        for (key, addr) in entries {
            let (start, end) = self.value_range(addr);
            let value = self.log[start..end].to_vec();
            let vcap = value.len() + self.config.value_slack;
            let new_addr = new_log.len();
            new_log.extend_from_slice(&(key.len() as u16).to_le_bytes());
            new_log.extend_from_slice(&(vcap as u32).to_le_bytes());
            new_log.extend_from_slice(&(value.len() as u32).to_le_bytes());
            new_log.extend_from_slice(&key);
            new_log.extend_from_slice(&value);
            new_log.resize(new_addr + HEADER + key.len() + vcap, 0);
            new_index.insert(key, new_addr);
        }
        self.log = new_log;
        self.index = new_index;
        self.dead_bytes = 0;
        self.gc_runs += 1;
    }

    /// Internal statistics for reports.
    pub fn stats(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("log_bytes", self.log.len() as u64),
            ("dead_bytes", self.dead_bytes as u64),
            ("in_place_updates", self.in_place_updates),
            ("copy_updates", self.copy_updates),
            ("gc_runs", self.gc_runs),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> Shard {
        Shard::new(HashLogConfig::small())
    }

    #[test]
    fn upsert_and_get() {
        let mut s = shard();
        s.upsert(b"k", b"value");
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"value");
        assert_eq!(s.get(b"other"), None);
    }

    #[test]
    fn in_place_shrink_grow_within_slack() {
        let mut s = shard();
        s.upsert(b"k", b"12345678");
        let before = s.log.len();
        s.upsert(b"k", b"abc"); // Shrink in place.
        assert_eq!(s.log.len(), before);
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"abc");
        s.rmw_append(b"k", b"de"); // Within vcap (8 + slack 8).
        assert_eq!(s.log.len(), before);
        assert_eq!(s.get(b"k").unwrap().as_ref(), b"abcde");
    }

    #[test]
    fn rmw_beyond_capacity_copies() {
        let mut s = shard();
        s.upsert(b"k", b"x");
        let big = vec![b'y'; 100];
        s.rmw_append(b"k", &big);
        let v = s.get(b"k").unwrap();
        assert_eq!(v.len(), 101);
        assert_eq!(v[0], b'x');
        assert!(s
            .stats()
            .iter()
            .any(|&(k, v)| k == "copy_updates" && v >= 1));
    }

    #[test]
    fn old_records_are_rcu_not_in_place() {
        let mut cfg = HashLogConfig::small();
        cfg.mutable_bytes = 32; // Tiny tail: almost everything is "old".
        cfg.gc_min_bytes = usize::MAX; // Disable GC for this test.
        let mut s = Shard::new(cfg);
        s.upsert(b"aged", b"v0");
        // Push the record out of the mutable region.
        for i in 0..20u64 {
            s.upsert(&i.to_be_bytes(), b"filler--filler--filler");
        }
        s.upsert(b"aged", b"v1");
        assert_eq!(s.get(b"aged").unwrap().as_ref(), b"v1");
        assert!(s
            .stats()
            .iter()
            .any(|&(k, v)| k == "copy_updates" && v >= 1));
    }

    #[test]
    fn dead_bytes_never_exceed_log_length() {
        // Regression: dead-byte accounting once double-counted record
        // headers, eventually underflowing the GC capacity computation.
        let mut cfg = HashLogConfig::small();
        cfg.gc_min_bytes = usize::MAX; // Let dead bytes accumulate freely.
        let mut s = Shard::new(cfg);
        for i in 0..5_000u64 {
            // Growing merges force retire-and-append every step.
            s.rmw_append(&(i % 3).to_be_bytes(), &[b'x'; 40]);
            if i % 7 == 0 {
                s.delete(&(i % 3).to_be_bytes());
            }
        }
        let stats: std::collections::HashMap<_, _> = s.stats().into_iter().collect();
        assert!(
            stats["dead_bytes"] <= stats["log_bytes"],
            "dead {} > log {}",
            stats["dead_bytes"],
            stats["log_bytes"]
        );
    }

    #[test]
    fn gc_reclaims_dead_space() {
        let mut s = shard();
        // Strictly growing values overflow each record's capacity, so every
        // update retires the previous record and dead space accumulates.
        for i in 0..2_000u64 {
            let value = vec![b'x'; 4 + (i as usize % 50) * 20];
            s.upsert(b"churn", &value);
            s.upsert(&(i % 3).to_be_bytes(), b"live");
        }
        assert!(s.stats().iter().any(|&(k, v)| k == "gc_runs" && v > 0));
        assert_eq!(s.get(b"churn").unwrap().len(), 4 + 49 * 20);
        assert_eq!(s.len(), 4);
    }
}
