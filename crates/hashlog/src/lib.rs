//! A hash-index + record-log key-value store: the FASTER-class substrate.
//!
//! FASTER [SIGMOD '18] pairs a hash index with a *hybrid log* whose tail
//! region supports in-place updates while older records are
//! read-copy-updated. This crate reproduces that architectural class:
//!
//! * a sharded **hash index** mapping keys to log addresses — O(1) point
//!   lookups, the property that makes FASTER dominate incremental
//!   streaming operators in the paper (§6.5);
//! * per-shard **record logs** with a mutable tail region: updates whose
//!   new value fits the record's allocated capacity and whose record lies
//!   in the tail are performed **in place**; all other updates append a new
//!   record version (read-copy-update);
//! * **read-modify-write** merges: `merge` is implemented as RMW, so
//!   appending to a growing value costs O(value) — exactly the behaviour
//!   the paper contrasts with RocksDB's lazy merge on holistic windows;
//! * log **garbage collection** that compacts a shard when dead bytes
//!   exceed a configurable fraction.
//!
//! # Examples
//!
//! ```
//! use gadget_hashlog::{HashLogConfig, HashLogStore};
//! use gadget_kv::StateStore;
//!
//! let store = HashLogStore::new(HashLogConfig::default());
//! store.put(b"k", b"v1").unwrap();
//! store.merge(b"k", b"+2").unwrap(); // RMW append.
//! assert_eq!(store.get(b"k").unwrap().unwrap().as_ref(), b"v1+2");
//! ```

use std::collections::HashMap;
use std::path::Path;

use bytes::Bytes;
use parking_lot::Mutex;

use gadget_kv::durability::{read_kv_records, write_snapshot_file};
use gadget_kv::{
    apply_ops_serially, BatchResult, CheckpointManifest, Durability, StateStore, StoreCounters,
    StoreError,
};
use gadget_obs::{MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;

mod shard;

use shard::Shard;

/// Configuration for [`HashLogStore`].
#[derive(Debug, Clone)]
pub struct HashLogConfig {
    /// Number of index/log shards (power of two recommended).
    pub shards: usize,
    /// Size of the in-place-updatable tail region per shard, in bytes.
    ///
    /// Records at addresses within the last `mutable_bytes` of a shard's
    /// log may be updated in place; older records are read-copy-updated.
    pub mutable_bytes: usize,
    /// Extra capacity allocated per value so small growth stays in place.
    pub value_slack: usize,
    /// Trigger log compaction when this fraction of a shard's log is dead.
    pub gc_dead_fraction: f64,
    /// Never run GC below this log size (bytes per shard).
    pub gc_min_bytes: usize,
}

impl Default for HashLogConfig {
    fn default() -> Self {
        HashLogConfig {
            shards: 64,
            // Paper setup: 256 MiB log + 64 MiB hash index overall.
            mutable_bytes: (64 << 20) / 64,
            value_slack: 16,
            gc_dead_fraction: 0.5,
            gc_min_bytes: 1 << 20,
        }
    }
}

impl HashLogConfig {
    /// A small configuration for tests: tiny mutable region and eager GC.
    pub fn small() -> Self {
        HashLogConfig {
            shards: 4,
            mutable_bytes: 4 << 10,
            value_slack: 8,
            gc_dead_fraction: 0.3,
            gc_min_bytes: 8 << 10,
        }
    }

    /// Validates and normalizes the shard count.
    ///
    /// Zero shards is an error (there would be nowhere to put a key).
    /// A non-power-of-two count is rounded *up* to the next power of
    /// two with a warning on stderr: the FNV router distributes `h %
    /// shards` noticeably unevenly for some non-power-of-two counts,
    /// and the per-shard byte budgets assume the documented
    /// power-of-two layout.
    pub fn validated(mut self) -> Result<HashLogConfig, StoreError> {
        if self.shards == 0 {
            return Err(StoreError::InvalidArgument(
                "HashLogConfig::shards must be at least 1".to_string(),
            ));
        }
        if !self.shards.is_power_of_two() {
            let rounded = self.shards.next_power_of_two();
            eprintln!(
                "hashlog: shards = {} is not a power of two; rounding up to {rounded}",
                self.shards
            );
            self.shards = rounded;
        }
        Ok(self)
    }
}

/// File name of the hashlog snapshot inside a checkpoint directory.
const SNAPSHOT_NAME: &str = "hashlog.snap";

/// A FASTER-class concurrent hash/log store. See the crate docs.
pub struct HashLogStore {
    shards: Vec<Mutex<Shard>>,
    config: HashLogConfig,
    counters: StoreCounters,
    metrics: MetricsRegistry,
}

impl HashLogStore {
    /// Creates an empty store, validating the configuration first (see
    /// [`HashLogConfig::validated`]).
    pub fn try_new(config: HashLogConfig) -> Result<Self, StoreError> {
        let config = config.validated()?;
        let shards = (0..config.shards)
            .map(|_| Mutex::new(Shard::new(config.clone())))
            .collect();
        let metrics = MetricsRegistry::new();
        Ok(HashLogStore {
            shards,
            config,
            counters: StoreCounters::registered(&metrics),
            metrics,
        })
    }

    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (`shards == 0`); use
    /// [`HashLogStore::try_new`] to handle that as an error.
    pub fn new(config: HashLogConfig) -> Self {
        HashLogStore::try_new(config).expect("invalid HashLogConfig")
    }

    /// Number of internal index/log shards (after normalization).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, key: &[u8]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        (h as usize) % self.shards.len()
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard> {
        &self.shards[self.shard_index(key)]
    }

    /// Total live keys across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns true if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated internal statistics across shards.
    fn shard_stats(&self) -> HashMap<&'static str, u64> {
        let mut agg: HashMap<&'static str, u64> = HashMap::new();
        for s in &self.shards {
            for (k, v) in s.lock().stats() {
                *agg.entry(k).or_insert(0) += v;
            }
        }
        agg
    }
}

impl StateStore for HashLogStore {
    fn name(&self) -> &'static str {
        "hashlog"
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.counters.record_get();
        Ok(self.shard_for(key).lock().get(key))
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.counters.record_put();
        self.shard_for(key).lock().upsert(key, value);
        Ok(())
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.counters.record_merge();
        self.shard_for(key).lock().rmw_append(key, operand);
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.counters.record_delete();
        self.shard_for(key).lock().delete(key);
        Ok(())
    }

    fn supports_merge(&self) -> bool {
        // Merges are handled natively but as read-modify-writes, not lazy
        // operand stacking; report `false` so harnesses can distinguish the
        // cost class (see the trait docs).
        false
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        let mut out = self.counters.snapshot();
        for (k, v) in self.shard_stats() {
            out.push((k.to_string(), v));
        }
        out.sort();
        out
    }

    fn durability(&self) -> Durability {
        // The log lives in process memory; only explicit checkpoints
        // survive a crash.
        Durability::SnapshotOnly
    }

    fn checkpoint(&self, dir: &Path) -> Result<CheckpointManifest, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::path_io("open", dir, e))?;
        // Walk the hash index shard by shard: one live record per key.
        // Deletes leave no tombstones in the log, so the index walk (not
        // a raw log copy) is the only faithful snapshot.
        let mut records: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for shard in &self.shards {
            shard
                .lock()
                .for_each_live(|k, v| records.push((k.to_vec(), v.to_vec())));
        }
        let bytes = write_snapshot_file(
            &dir.join(SNAPSHOT_NAME),
            records.iter().map(|(k, v)| (k.as_slice(), v.as_slice())),
        )?;
        let mut manifest = CheckpointManifest::new(self.name());
        manifest.push_file(SNAPSHOT_NAME, bytes);
        manifest.save(dir)?;
        Ok(manifest)
    }

    fn restore(&self, dir: &Path) -> Result<(), StoreError> {
        let manifest = CheckpointManifest::load(dir)?;
        if manifest.store != self.name() {
            return Err(StoreError::Corruption(format!(
                "checkpoint was taken by store {:?}, not {:?}",
                manifest.store,
                self.name()
            )));
        }
        let records = read_kv_records(&dir.join(SNAPSHOT_NAME))?;
        // Rebuild every shard from scratch, re-hashing each record: the
        // snapshot is shard-layout-independent, so a store configured
        // with a different shard count restores the same state.
        for shard in &self.shards {
            *shard.lock() = Shard::new(self.config.clone());
        }
        for (k, v) in records {
            self.shard_for(&k).lock().upsert(&k, &v);
        }
        Ok(())
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        // Single-op batches take the per-op methods: the shard-grouping
        // sort has nothing to amortize over.
        if batch.len() <= 1 {
            return apply_ops_serially(self, batch);
        }
        // Partition the batch by shard and take each shard mutex once per
        // contiguous run. Reordering across shards is safe: same-key ops
        // always hash to the same shard, and per-shard order is preserved
        // (the sort key (shard, original index) is unique), so every key
        // sees its ops in issue order and results are identical to
        // op-by-op application.
        let mut order: Vec<(usize, usize)> = batch
            .iter()
            .enumerate()
            .map(|(i, op)| (self.shard_index(op.key()), i))
            .collect();
        order.sort_unstable();
        let mut out: Vec<Option<BatchResult>> = vec![None; batch.len()];
        let mut pos = 0;
        while pos < order.len() {
            let shard_idx = order[pos].0;
            let mut shard = self.shards[shard_idx].lock();
            while pos < order.len() && order[pos].0 == shard_idx {
                let i = order[pos].1;
                out[i] = Some(match &batch[i] {
                    Op::Get { key } => {
                        self.counters.record_get();
                        BatchResult::Value(shard.get(key))
                    }
                    Op::Put { key, value } => {
                        self.counters.record_put();
                        shard.upsert(key, value);
                        BatchResult::Applied
                    }
                    Op::Merge { key, operand } => {
                        self.counters.record_merge();
                        shard.rmw_append(key, operand);
                        BatchResult::Applied
                    }
                    Op::Delete { key } => {
                        self.counters.record_delete();
                        shard.delete(key);
                        BatchResult::Applied
                    }
                });
                pos += 1;
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every op visited"))
            .collect())
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snap = self.metrics.snapshot();
        let stats = self.shard_stats();
        for name in ["in_place_updates", "copy_updates", "gc_runs"] {
            snap.push_counter(name, stats.get(name).copied().unwrap_or(0));
        }
        // Log growth: live bytes vs dead (retired-record) bytes.
        snap.push_gauge(
            "log_bytes",
            stats.get("log_bytes").copied().unwrap_or(0) as i64,
        );
        snap.push_gauge(
            "dead_bytes",
            stats.get("dead_bytes").copied().unwrap_or(0) as i64,
        );
        // Chain-length proxies: with one live record per key, the average
        // and worst-case per-shard occupancy are what govern index probe
        // cost (a FASTER hash chain collapses to its live tail entry).
        let mut live = 0usize;
        let mut max_shard = 0usize;
        for s in &self.shards {
            let n = s.lock().len();
            live += n;
            max_shard = max_shard.max(n);
        }
        snap.push_gauge("live_keys", live as i64);
        snap.push_gauge("max_shard_keys", max_shard as i64);
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let s = HashLogStore::new(HashLogConfig::small());
        s.put(b"a", b"1").unwrap();
        assert_eq!(s.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        s.delete(b"a").unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn zero_shards_is_rejected() {
        let cfg = HashLogConfig {
            shards: 0,
            ..HashLogConfig::small()
        };
        assert!(matches!(
            cfg.clone().validated(),
            Err(StoreError::InvalidArgument(_))
        ));
        assert!(HashLogStore::try_new(cfg).is_err());
    }

    #[test]
    fn non_power_of_two_shards_round_up() {
        for (given, expect) in [(1usize, 1usize), (3, 4), (4, 4), (7, 8), (65, 128)] {
            let cfg = HashLogConfig {
                shards: given,
                ..HashLogConfig::small()
            };
            assert_eq!(cfg.clone().validated().unwrap().shards, expect);
            let store = HashLogStore::try_new(cfg).unwrap();
            assert_eq!(store.shard_count(), expect, "given {given}");
            // The rounded store still works.
            store.put(b"k", b"v").unwrap();
            assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        }
    }

    #[test]
    fn merge_is_rmw_append() {
        let s = HashLogStore::new(HashLogConfig::small());
        s.merge(b"k", b"a").unwrap();
        s.merge(b"k", b"b").unwrap();
        s.merge(b"k", b"c").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"abc"[..]));
    }

    #[test]
    fn overwrite_shrinking_and_growing() {
        let s = HashLogStore::new(HashLogConfig::small());
        s.put(b"k", b"a-long-initial-value").unwrap();
        s.put(b"k", b"tiny").unwrap(); // In-place shrink.
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"tiny"[..]));
        let big = vec![7u8; 500];
        s.put(b"k", &big).unwrap(); // Forced copy.
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&big[..]));
    }

    #[test]
    fn many_keys_survive_gc() {
        let s = HashLogStore::new(HashLogConfig::small());
        // Churn keys with alternating value sizes so record capacities
        // overflow, accumulating dead space until GC triggers.
        for i in 0..10_000u64 {
            let value = vec![b'v'; 4 + (i as usize % 40) * 25];
            s.put(&(i % 50).to_be_bytes(), &value).unwrap();
        }
        for k in 0..50u64 {
            let got = s.get(&k.to_be_bytes()).unwrap().unwrap();
            assert!(!got.is_empty());
        }
        let stats = s.shard_stats();
        assert!(
            stats.get("gc_runs").copied().unwrap_or(0) > 0,
            "GC never ran: {stats:?}"
        );
    }

    #[test]
    fn in_place_updates_dominate_hot_tail() {
        let s = HashLogStore::new(HashLogConfig::small());
        s.put(b"hot", b"00000000").unwrap();
        for _ in 0..1_000 {
            s.put(b"hot", b"11111111").unwrap();
        }
        let stats = s.shard_stats();
        let in_place = stats.get("in_place_updates").copied().unwrap_or(0);
        assert!(in_place > 900, "expected in-place updates, got {in_place}");
    }

    #[test]
    fn concurrent_disjoint_writers() {
        let s = std::sync::Arc::new(HashLogStore::new(HashLogConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    let key = (t << 32 | i).to_be_bytes();
                    s.put(&key, &i.to_le_bytes()).unwrap();
                }
                for i in (0..5_000u64).step_by(271) {
                    let key = (t << 32 | i).to_be_bytes();
                    assert_eq!(s.get(&key).unwrap().unwrap().as_ref(), &i.to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 20_000);
    }

    #[test]
    fn concurrent_merges_on_shared_keys_lose_nothing() {
        // Merge (RMW) is atomic under the shard lock: concurrent appends
        // to the same key must all land.
        let s = std::sync::Arc::new(HashLogStore::new(HashLogConfig::default()));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    s.merge(b"shared", &[t]).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let v = s.get(b"shared").unwrap().unwrap();
        assert_eq!(v.len(), 4_000, "lost merges under concurrency");
        for t in 0..4u8 {
            assert_eq!(v.iter().filter(|&&b| b == t).count(), 1_000, "thread {t}");
        }
    }

    #[test]
    fn metrics_snapshot_covers_internals() {
        let s = HashLogStore::new(HashLogConfig::small());
        s.put(b"hot", b"00000000").unwrap();
        for _ in 0..100 {
            s.put(b"hot", b"11111111").unwrap();
        }
        s.merge(b"hot", b"!").unwrap();
        s.get(b"hot").unwrap();
        let snap = s.metrics().expect("hashlog store exposes metrics");
        assert_eq!(snap.counter("puts"), Some(101));
        assert_eq!(snap.counter("gets"), Some(1));
        assert_eq!(snap.counter("merges"), Some(1));
        assert!(snap.counter("in_place_updates").unwrap() > 90);
        assert!(snap.gauge("log_bytes").unwrap() > 0);
        assert_eq!(snap.gauge("live_keys"), Some(1));
        assert_eq!(snap.gauge("max_shard_keys"), Some(1));
    }

    #[test]
    fn apply_batch_groups_by_shard_but_preserves_per_key_order() {
        let batched = HashLogStore::new(HashLogConfig::small());
        let serial = HashLogStore::new(HashLogConfig::small());
        // Keys spread over all 4 shards, with per-key op sequences whose
        // order matters (put → merge → get → delete → get).
        let mut ops = Vec::new();
        for i in 0..40u64 {
            let key = i.to_be_bytes().to_vec();
            ops.push(Op::put(key.clone(), format!("v{i}").into_bytes()));
            ops.push(Op::merge(key.clone(), b"+m".to_vec()));
            ops.push(Op::get(key.clone()));
            if i % 3 == 0 {
                ops.push(Op::delete(key.clone()));
                ops.push(Op::get(key));
            }
        }
        let out = batched.apply_batch(&ops).unwrap();
        let expect = gadget_kv::apply_ops_serially(&serial, &ops).unwrap();
        assert_eq!(out, expect);
        for i in 0..40u64 {
            assert_eq!(
                batched.get(&i.to_be_bytes()).unwrap(),
                serial.get(&i.to_be_bytes()).unwrap(),
                "key {i}"
            );
        }
    }

    #[test]
    fn checkpoint_restore_roundtrip_and_resharding() {
        let dir = std::env::temp_dir().join(format!("gadget-hl-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = HashLogStore::new(HashLogConfig::small());
        assert_eq!(s.durability(), Durability::SnapshotOnly);
        for i in 0..200u64 {
            s.put(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        s.delete(&13u64.to_be_bytes()).unwrap();
        s.merge(b"acc", b"xy").unwrap();
        s.checkpoint(&dir).unwrap();

        // Diverge, then roll back in place.
        s.put(&1u64.to_be_bytes(), b"clobbered").unwrap();
        s.put(b"extra", b"z").unwrap();
        s.restore(&dir).unwrap();
        assert_eq!(
            s.get(&1u64.to_be_bytes()).unwrap().as_deref(),
            Some(&b"v1"[..])
        );
        assert_eq!(s.get(b"extra").unwrap(), None);
        assert_eq!(s.get(&13u64.to_be_bytes()).unwrap(), None);
        assert_eq!(s.get(b"acc").unwrap().as_deref(), Some(&b"xy"[..]));

        // The snapshot is shard-layout-independent: a store with a
        // different shard count restores the same state.
        let wide = HashLogStore::new(HashLogConfig {
            shards: 16,
            ..HashLogConfig::small()
        });
        wide.restore(&dir).unwrap();
        assert_eq!(wide.len(), s.len());
        for i in (0..200u64).step_by(17) {
            assert_eq!(
                wide.get(&i.to_be_bytes()).unwrap(),
                s.get(&i.to_be_bytes()).unwrap(),
                "key {i}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_missing_is_noop() {
        let s = HashLogStore::new(HashLogConfig::small());
        s.delete(b"never").unwrap();
        assert_eq!(s.get(b"never").unwrap(), None);
    }
}
