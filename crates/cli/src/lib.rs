//! The `gadget` command-line harness.
//!
//! Mirrors the paper artifact's user interface: JSON config files describe
//! a workload (source + operator, §A.4.1); subcommands generate traces
//! offline, replay them against a chosen store, run online, analyze trace
//! characteristics, and produce YCSB baselines.
//!
//! ```text
//! gadget generate --config cfg.json --out trace.gdt
//! gadget replay   --trace trace.gdt --store rocksdb-class [--rate R] [--ops N]
//! gadget online   --config cfg.json --store faster-class
//! gadget analyze  --trace trace.gdt
//! gadget ycsb     --workload A --records 1000 --ops 100000 --out trace.gdt
//! gadget stores
//! ```

use std::collections::HashMap;
use std::path::PathBuf;

use gadget_analysis::{
    key_sequence, stack_distances, ttl_distribution, unique_sequences, working_set,
    working_set_series,
};
use gadget_core::GadgetConfig;
use gadget_kv::StateStore;
use gadget_obs::{MetricsSeries, SharedSnapshot, SnapshotEmitter};
use gadget_replay::{
    run_online_observed_with, run_online_with, run_sweep, ArrivalMode, RateStep, ReplayOptions,
    SweepOptions, TraceReplayer,
};
use gadget_types::{OpType, Trace};
use gadget_ycsb::{CoreWorkload, YcsbConfig};

/// Parsed command-line flags: `--key value` pairs after the subcommand.
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses flags from an argument list.
    pub fn parse(args: &[String]) -> Result<Flags, String> {
        let mut values = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                return Err(format!("expected a --flag, found {}", args[i]));
            };
            if i + 1 >= args.len() {
                return Err(format!("--{key} requires a value"));
            }
            values.insert(key.to_string(), args[i + 1].clone());
            i += 2;
        }
        Ok(Flags { values })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Canonical `key=value` rendering of all flags, sorted by key.
    /// Digested into a run report's `config_digest`, so the same
    /// invocation always produces the same digest regardless of flag
    /// order.
    pub fn canonical(&self) -> String {
        let mut pairs: Vec<_> = self
            .values
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        pairs.sort();
        pairs.join(" ")
    }

    /// An optional parsed flag.
    pub fn optional_parse<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.values.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} got an unparsable value {v}")),
        }
    }
}

/// Top-level dispatch. Returns an error message for the user on failure.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    // Bare-flags form (`gadget --config c.json --metrics out.json`): the
    // observability sweep, for parity with the paper artifact's default
    // invocation.
    if cmd.starts_with("--") {
        let flags = Flags::parse(args)?;
        return cmd_observe(&flags);
    }
    // `report` takes positional file arguments (`report compare a b`),
    // which the strict `--key value` parser would reject.
    if cmd == "report" {
        return cmd_report(&args[1..]);
    }
    // `trace` likewise (`trace merge client.json server.json`).
    if cmd == "trace" {
        return cmd_trace(&args[1..]);
    }
    let flags = Flags::parse(&args[1..])?;
    match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "replay" => cmd_replay(&flags),
        "sweep" => cmd_sweep(&flags),
        "online" => cmd_online(&flags),
        "observe" => cmd_observe(&flags),
        "analyze" => cmd_analyze(&flags),
        "compare" => cmd_compare(&flags),
        "concurrent" => cmd_concurrent(&flags),
        "tune-cache" => cmd_tune_cache(&flags),
        "dataset" => cmd_dataset(&flags),
        "ycsb" => cmd_ycsb(&flags),
        "serve" => cmd_serve(&flags),
        "drive" => cmd_drive(&flags),
        "reshard" => cmd_reshard(&flags),
        "crash" => cmd_crash(&flags),
        // Hidden: the re-exec'd half of `crash` (see cmd_crash_child).
        "crash-child" => cmd_crash_child(&flags),
        "checkpoint" => cmd_checkpoint(&flags),
        "restore" => cmd_restore(&flags),
        "stop" => cmd_stop(&flags),
        "stores" => cmd_stores(),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand {other}\n{}", usage())),
    }
}

/// Usage text.
pub fn usage() -> String {
    "usage: gadget <subcommand> [--flag value]...\n\
     subcommands:\n\
     \x20 generate --config <json> --out <trace>         generate a state-access trace (offline mode)\n\
     \x20 replay   --trace <trace> --store <label>       replay a trace against a store\n\
     \x20          [--dir <path>] [--rate <ops/s>] [--ops <n>] [--batch-size <n>]\n\
     \x20          [--arrival closed|constant|poisson]    open-loop pacing (intended-time latency; needs --rate)\n\
     \x20          [--arrival-seed <n>]                   arrival-schedule seed (poisson)\n\
     \x20          [--shards <n>] [--replay-threads <n>]  keyspace-sharded store / shard-affine threads\n\
     \x20          [--reshard-at <frac>:<from>:<to>]      live shard split/migration mid-replay (needs --shards)\n\
     \x20          [--metrics <json>] [--every <ops>]\n\
     \x20          [--metrics-addr <host:port>]           live Prometheus scrape endpoint during the run\n\
     \x20          [--trace-out <json>]                   span timeline (Chrome/Perfetto) + tail attribution\n\
     \x20          [--report-out <json>]                  versioned run report (provenance + histograms)\n\
     \x20 online   --config <json> --store <label>       generate and issue requests on the fly\n\
     \x20          [--shards <n>] [--batch-size <n>] [--metrics <json>] [--every <ops>] [--trace <json>]\n\
     \x20          [--metrics-addr <host:port>] [--report-out <json>]\n\
     \x20 sweep    --backend <label> [--trace <trace>]    latency-throughput curve with knee detection\n\
     \x20          [--arrival constant|poisson] [--seed <n>]  open-loop arrival schedule (default poisson)\n\
     \x20          [--rates <r1,r2,..>]                   explicit ladder, or geometric + bisection:\n\
     \x20          [--start-rate <ops/s>] [--max-rate <ops/s>] [--growth <x>] [--refine <n>]\n\
     \x20          [--ops-per-step <n>] [--sustainable-fraction <0..1>] [--p99-bound-ms <ms>]\n\
     \x20          [--report-out <json>] [--metrics-addr <host:port>]  SweepReport / live per-step metrics\n\
     \x20 report   show <report.json>                    summarize one run or sweep report\n\
     \x20 report   compare <baseline.json> <candidate.json>  statistical regression verdict (KS + W1);\n\
     \x20          compare <candidate.json> --baseline <dir>  ...against the newest matching baseline;\n\
     \x20                                                 sweep reports gate the whole curve + knee shift\n\
     \x20          [--tolerance <pct>] [--rate-tolerance <pct>] [--knee-tolerance <pct>] [--out <json>]\n\
     \x20          [--allow-topology-change]              tolerate mismatched partition-map digests\n\
     \x20 observe  --config <json> --metrics <json>      run the workload on every store, sampling\n\
     \x20          [--stores <a,b,..>] [--every <ops>]    internal metrics into a JSON time series\n\
     \x20 analyze  --trace <trace>                       characterize a trace (composition, locality, TTL)\n\
     \x20 compare  --a <trace> --b <trace>                side-by-side fidelity report (paper 6.1)\n\
     \x20 concurrent --traces <a.gdt,b.gdt> --store <label>  co-located operators (paper 6.4)\n\
     \x20          [--rate <ops/s>] [--ops <n>] [--batch-size <n>] [--shards <n>] [--replay-threads <n>]\n\
     \x20          [--metrics-addr <host:port>] [--report-out <json>]  one report per trace (suffixed -0, -1, ...)\n\
     \x20 tune-cache --trace <trace> --hit-rate <0..1>   recommend an LRU capacity (paper 8)\n\
     \x20 dataset  --name <borg|taxi|azure> --events <n> --out <events.csv>\n\
     \x20 ycsb     --workload <A|B|C|D|F> --records <n> --ops <n> --out <trace>\n\
     \x20 serve    --backend <mem|lsm|hashlog|btree|label>  serve any store over TCP (gadget-server)\n\
     \x20          [--addr <host:port>] [--dir <path>] [--shards <n>] [--queue-depth <n>]\n\
     \x20          [--metrics-addr <host:port>]           Prometheus text scrape endpoint\n\
     \x20          [--trace-out <json>]                   server-side span timeline, written on drain\n\
     \x20 drive    --addr <host:port> --trace <trace>    fan a trace across many client connections\n\
     \x20          [--connections <n>] [--churn <0..1>] [--segment-ops <n>] [--seed <n>]\n\
     \x20          [--rate <ops/s>] [--arrival constant|poisson] [--arrival-seed <n>]\n\
     \x20          [--ops <n>] [--batch-size <n>] [--report-out <json>]\n\
     \x20          [--trace-out <json>]                   client span timeline + wire trace contexts\n\
     \x20                                                 (latency decomposition lands in the report)\n\
     \x20          [--reshard-at <frac>:<from>:<to>]      live reshard on the server mid-drive\n\
     \x20 trace    merge <client.json> <server.json>     clock-align + join the two span timelines\n\
     \x20          [--out <merged.json>] [--check]        one Perfetto file; --check gates nesting and\n\
     \x20                                                 segment-sum consistency (CI smoke)\n\
     \x20 reshard  --addr <host:port> --from <n> --to <n>  fire one live shard split/migration now\n\
     \x20          [--at-op <n>]                          op index recorded on the event\n\
     \x20 crash    --store <lsm|hashlog|btree|mem>       crash-recovery harness: re-exec a replay as a\n\
     \x20          [--kill-at-frac <0..1>] [--seed <n>]   child, abort it mid-run, recover, and measure\n\
     \x20          [--trace <trace>] [--ops <n>]          the loss window (acknowledged writes missing\n\
     \x20          [--batch-size <n>] [--shards <n>]      from the recovered state) and recovery time\n\
     \x20          [--checkpoint-at-frac <0..1>]          checkpoint mid-run; recover from it, not the WAL\n\
     \x20          [--torn-tail truncate|garble]          damage the WAL tail before recovery\n\
     \x20          [--crashes <n>] [--dir <path>]         repeated crash/recover cycles (seeded kill points)\n\
     \x20          [--report-out <json>]                  run report with a `recovery` section\n\
     \x20 checkpoint --addr <host:port> --out <dir>      checkpoint a served store (dir is server-local)\n\
     \x20 restore  --addr <host:port> --from <dir>       restore a served store from a checkpoint\n\
     \x20 stop     --addr <host:port>                    ask a running server to drain and exit\n\
     \x20 stores                                         list available store labels"
        .to_string()
}

fn load_config(flags: &Flags) -> Result<GadgetConfig, String> {
    let path = flags.required("config")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("invalid config {path}: {e}"))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let config = load_config(flags)?;
    let out = flags.required("out")?;
    let trace = config.run();
    let stats = trace.stats();
    trace
        .save(out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} accesses ({} input events, {} distinct state keys) to {out}",
        stats.total, stats.input_events, stats.distinct_keys
    );
    Ok(())
}

/// Resolves the working directory for a store (or a temp dir).
fn store_dir(dir: Option<&str>) -> PathBuf {
    match dir {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("gadget-cli-{}", std::process::id())),
    }
}

/// Builds a store by bench-zoo label in `dir` (or a temp dir).
fn open_store(
    label: &str,
    dir: Option<&str>,
) -> Result<std::sync::Arc<dyn gadget_kv::StateStore>, String> {
    open_store_at(label, &store_dir(dir), None)
}

/// Builds a store by label, optionally hash-partitioned: with
/// `shards > 1` the keyspace splits across `shards` instances of the
/// labelled store behind a [`gadget_kv::ShardedStore`], each shard in
/// its own `shard-<i>` subdirectory with independent WAL, memtables,
/// SSTables, and background threads.
fn open_store_sharded(
    label: &str,
    dir: Option<&str>,
    shards: usize,
) -> Result<std::sync::Arc<dyn gadget_kv::StateStore>, String> {
    let (store, _) = open_store_maybe_sharded(label, dir, shards)?;
    Ok(store)
}

/// [`open_store_sharded`], also handing back the concrete
/// [`ShardedStore`] when one was built — the handle live topology
/// changes (`--reshard-at`, the server's `reshard` frame) operate on.
/// `None` for unsharded stores. The retained factory is `'static`
/// (owned label and base dir), so `split_shard` can build brand-new
/// shards — each in its own `shard-<i>` subdirectory — long after this
/// function returns.
type MaybeSharded = (
    std::sync::Arc<dyn gadget_kv::StateStore>,
    Option<std::sync::Arc<gadget_kv::ShardedStore>>,
);

fn open_store_maybe_sharded(
    label: &str,
    dir: Option<&str>,
    shards: usize,
) -> Result<MaybeSharded, String> {
    if shards <= 1 {
        return Ok((open_store(label, dir)?, None));
    }
    let base = store_dir(dir);
    let label = label.to_string();
    let sharded = gadget_kv::ShardedStore::from_factory(shards, move |shard| {
        open_store_at(
            &label,
            &base.join(format!("shard-{shard}")),
            Some(shard as u64),
        )
        .map_err(gadget_kv::StoreError::InvalidArgument)
    })
    .map_err(|e| e.to_string())?;
    let sharded = std::sync::Arc::new(sharded);
    Ok((sharded.clone(), Some(sharded)))
}

/// Builds one store instance in exactly `dir`. `shard` tags LSM
/// instances with their shard id (worker-thread name + trace spans).
fn open_store_at(
    label: &str,
    dir: &std::path::Path,
    shard: Option<u64>,
) -> Result<std::sync::Arc<dyn gadget_kv::StateStore>, String> {
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let lsm_cfg = |cfg: gadget_lsm::LsmConfig| match shard {
        Some(s) => cfg.with_shard_id(s),
        None => cfg,
    };
    let store: std::sync::Arc<dyn gadget_kv::StateStore> = match label {
        "rocksdb-class" => std::sync::Arc::new(
            gadget_lsm::LsmStore::open(dir, lsm_cfg(gadget_lsm::LsmConfig::paper_rocksdb()))
                .map_err(|e| e.to_string())?,
        ),
        "lethe-class" => std::sync::Arc::new(
            gadget_lsm::LsmStore::open(dir, lsm_cfg(gadget_lsm::LsmConfig::paper_lethe()))
                .map_err(|e| e.to_string())?,
        ),
        "faster-class" => std::sync::Arc::new(gadget_hashlog::HashLogStore::new(
            gadget_hashlog::HashLogConfig::default(),
        )),
        "berkeleydb-class" => std::sync::Arc::new(
            gadget_btree::BTreeStore::open(
                dir.join("data.db"),
                gadget_btree::BTreeConfig::default(),
            )
            .map_err(|e| e.to_string())?,
        ),
        // A shrunk LSM (tiny memtable/cache, synchronous WAL) whose
        // flushes, compactions, fsyncs, and cache fills all fire within
        // a few thousand operations — the store to use for traced smoke
        // runs where the paper-scale config would never leave memory.
        "rocksdb-small" => std::sync::Arc::new(
            gadget_lsm::LsmStore::open(
                dir,
                lsm_cfg(gadget_lsm::LsmConfig {
                    wal_sync: true,
                    ..gadget_lsm::LsmConfig::small()
                }),
            )
            .map_err(|e| e.to_string())?,
        ),
        "mem" => std::sync::Arc::new(gadget_kv::MemStore::new()),
        other => {
            // `net:<addr>` dials a running gadget-server: a *real*
            // network store, so replay/online/concurrent measure actual
            // wire latency. With `--shards N` this opens N connections.
            if let Some(addr) = other.strip_prefix("net:") {
                return Ok(std::sync::Arc::new(
                    gadget_server::NetStore::connect(addr).map_err(|e| e.to_string())?,
                ));
            }
            // `remote-<label>` wraps any embedded store behind a synthetic
            // datacenter network (paper §8, external state management).
            if let Some(inner_label) = other.strip_prefix("remote-") {
                let inner = open_store_at(inner_label, dir, shard)?;
                return Ok(std::sync::Arc::new(gadget_kv::RemoteStore::new(
                    ArcStore(inner),
                    gadget_kv::NetworkProfile::datacenter(),
                )));
            }
            return Err(format!(
                "unknown store {other}; run `gadget stores` for the list"
            ));
        }
    };
    Ok(store)
}

/// Replay options shared by `replay`/`online`/`concurrent`/`drive`:
/// `--rate`, `--ops`, `--batch-size` (default 1 = op-by-op),
/// `--replay-threads` (default 1 = single-threaded, in trace order),
/// `--arrival` (default closed = paced send-time measurement) and
/// `--arrival-seed`. Open-loop arrivals need a rate to schedule.
fn replay_options(flags: &Flags) -> Result<ReplayOptions, String> {
    let batch_size = flags.optional_parse("batch-size")?.unwrap_or(1);
    if batch_size == 0 {
        return Err("--batch-size must be at least 1".to_string());
    }
    let replay_threads = flags.optional_parse("replay-threads")?.unwrap_or(1);
    if replay_threads == 0 {
        return Err("--replay-threads must be at least 1".to_string());
    }
    let service_rate: Option<f64> = flags.optional_parse("rate")?;
    let arrival = flags
        .optional_parse::<ArrivalMode>("arrival")?
        .unwrap_or_default();
    if arrival.is_open() && service_rate.is_none() {
        return Err(format!(
            "--arrival {arrival} is an open-loop schedule and requires --rate"
        ));
    }
    Ok(ReplayOptions {
        service_rate,
        max_ops: flags.optional_parse("ops")?,
        batch_size,
        replay_threads,
        arrival,
        arrival_seed: flags
            .optional_parse("arrival-seed")?
            .unwrap_or(gadget_replay::DEFAULT_ARRIVAL_SEED),
    })
}

/// Starts the live `/metrics` scrape endpoint (`--metrics-addr`).
///
/// Serves the most recent snapshot published by the run's
/// [`SnapshotEmitter`] (flattened, component-prefixed); before the
/// first sample — or for commands that don't sample — it degrades to
/// the store's own current metrics, so the endpoint is never empty on
/// a live store.
fn start_metrics_endpoint(
    addr: &str,
    shared: SharedSnapshot,
    store: std::sync::Arc<dyn gadget_kv::StateStore>,
) -> Result<gadget_server::MetricsServer, String> {
    let source: std::sync::Arc<gadget_server::SnapshotFn> = std::sync::Arc::new(move || {
        let snap = shared.get();
        if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
            store.metrics().unwrap_or_default()
        } else {
            snap
        }
    });
    let endpoint = gadget_server::MetricsServer::start(addr, source)
        .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
    println!("metrics endpoint on http://{}", endpoint.local_addr());
    Ok(endpoint)
}

/// How a run's operations reached the store, for report provenance:
/// `"tcp"` when the label dials a gadget-server, `"embedded"` for
/// in-process stores (including the simulated `remote-*` wrappers,
/// which never leave the process).
fn transport_for_label(label: &str) -> &'static str {
    if label.starts_with("net:") {
        "tcp"
    } else {
        "embedded"
    }
}

/// `--shards` (default 1 = unsharded).
fn shard_count(flags: &Flags) -> Result<usize, String> {
    match flags.optional_parse("shards")? {
        Some(0) => Err("--shards must be at least 1".to_string()),
        Some(n) => Ok(n),
        None => Ok(1),
    }
}

/// Adapter: lets an `Arc<dyn StateStore>` be wrapped by decorators that
/// take ownership of a concrete store.
struct ArcStore(std::sync::Arc<dyn gadget_kv::StateStore>);

impl gadget_kv::StateStore for ArcStore {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn get(&self, key: &[u8]) -> Result<Option<bytes::Bytes>, gadget_kv::StoreError> {
        self.0.get(key)
    }
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), gadget_kv::StoreError> {
        self.0.put(key, value)
    }
    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), gadget_kv::StoreError> {
        self.0.merge(key, operand)
    }
    fn delete(&self, key: &[u8]) -> Result<(), gadget_kv::StoreError> {
        self.0.delete(key)
    }
    fn scan(
        &self,
        lo: &[u8],
        hi: &[u8],
    ) -> Result<Vec<(bytes::Bytes, bytes::Bytes)>, gadget_kv::StoreError> {
        self.0.scan(lo, hi)
    }
    fn supports_scan(&self) -> bool {
        self.0.supports_scan()
    }
    fn supports_merge(&self) -> bool {
        self.0.supports_merge()
    }
    fn flush(&self) -> Result<(), gadget_kv::StoreError> {
        self.0.flush()
    }
    fn internal_counters(&self) -> Vec<(String, u64)> {
        self.0.internal_counters()
    }
    // Must forward: the trait default would silently degrade batches to
    // op-by-op, hiding the inner store's native group-commit path.
    fn apply_batch(
        &self,
        batch: &[gadget_types::Op],
    ) -> Result<Vec<gadget_kv::BatchResult>, gadget_kv::StoreError> {
        self.0.apply_batch(batch)
    }
    fn metrics(&self) -> Option<gadget_obs::MetricsSnapshot> {
        self.0.metrics()
    }
}

fn print_report(report: &gadget_replay::RunReport) {
    println!(
        "store={} workload={} ops={} seconds={:.3}",
        report.store, report.workload, report.operations, report.seconds
    );
    println!("throughput: {:.0} ops/s", report.throughput);
    println!(
        "latency ns: mean={:.0} p50={} p99={} p99.9={} max={}",
        report.latency.mean_ns,
        report.latency.p50_ns,
        report.latency.p99_ns,
        report.latency.p999_ns,
        report.latency.max_ns
    );
    println!("gets: {} hits, {} misses", report.hits, report.misses);
    for (op, lat) in &report.per_op {
        println!(
            "  {op:>6}: mean={:.0}ns p50={} p99.9={}",
            lat.mean_ns, lat.p50_ns, lat.p999_ns
        );
    }
    print_decomposition(&report.decomposition);
}

/// Renders the request-latency decomposition (client-traced TCP runs):
/// one line per wire segment, telescoping to the end-to-end row.
fn print_decomposition(segments: &[(String, gadget_obs::LogHistogram)]) {
    if segments.is_empty() {
        return;
    }
    println!("decomposition (ns, per traced request):");
    for (name, hist) in segments {
        println!(
            "  {name:>12}: n={} mean={:.0} p50={} p99={} max={}",
            hist.count(),
            hist.mean(),
            hist.percentile(50.0),
            hist.percentile(99.0),
            hist.max()
        );
    }
}

/// Default sampling interval: aim for ~10 snapshots over `total_ops`.
fn sample_interval(flags: &Flags, total_ops: u64) -> Result<u64, String> {
    match flags.optional_parse("every")? {
        Some(0) => Err("--every must be at least 1".to_string()),
        Some(n) => Ok(n),
        None => Ok((total_ops / 10).max(1)),
    }
}

fn write_series(path: &str, series: &MetricsSeries) -> Result<(), String> {
    let mut text = serde_json::to_string_pretty(series).map_err(|e| e.to_string())?;
    text.push('\n');
    std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {} metrics snapshots to {path}", series.points.len());
    Ok(())
}

/// Writes a finished trace session as Chrome JSON, prints the
/// tail-latency attribution table, and (when a metrics series is being
/// collected) embeds the report in the series' final point. Returns the
/// attribution so callers can also embed it in a run report.
fn export_trace(
    path: &str,
    log: &gadget_obs::trace::TraceLog,
    emitter: Option<&mut SnapshotEmitter>,
) -> Result<gadget_obs::trace::AttributionReport, String> {
    log.write_chrome(std::path::Path::new(path))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "wrote {} trace events to {path} ({} dropped by ring wrap); load it at https://ui.perfetto.dev",
        log.events.len(),
        log.dropped
    );
    let report = log.attribution();
    print!("{}", report.to_table());
    if let Some(em) = emitter {
        em.annotate_last(
            "trace_attribution",
            gadget_obs::attribution_snapshot(&report),
        );
    }
    Ok(report)
}

/// Assembles and writes a versioned [`gadget_report::RunReport`] for a
/// finished measured run: provenance from the environment and flags,
/// measurements from the replay layer, plus the store's final metrics
/// snapshot and (when tracing was on) the tail-latency attribution.
/// A run's final partition topology, for report provenance: the
/// partition-map digest (hex) plus every reshard completed mid-run.
struct TopologyStamp {
    digest: String,
    events: Vec<gadget_report::ReshardRecord>,
}

impl TopologyStamp {
    /// Reads the stamp off a live [`gadget_kv::ShardedStore`].
    fn of_store(store: &gadget_kv::ShardedStore) -> TopologyStamp {
        TopologyStamp {
            digest: store.partition_digest(),
            events: store.reshard_events().iter().map(reshard_record).collect(),
        }
    }

    /// Reads the stamp off a driven server's topology answer.
    fn of_topology(topology: &gadget_server::Topology) -> TopologyStamp {
        TopologyStamp {
            digest: topology.digest_hex(),
            events: topology.events.iter().map(reshard_record).collect(),
        }
    }
}

/// Lifts a store-layer reshard event into the report schema's record.
fn reshard_record(e: &gadget_kv::ReshardEvent) -> gadget_report::ReshardRecord {
    gadget_report::ReshardRecord {
        at_op: e.at_op,
        from: e.from as u64,
        to: e.to as u64,
        slots: e.slots as u64,
        keys: e.keys,
        pause_us: e.pause_us,
        copy_us: e.copy_us,
        map_version: e.map_version,
    }
}

fn write_run_report(
    path: &str,
    flags: &Flags,
    run: &gadget_replay::RunReport,
    store_metrics: Option<gadget_obs::MetricsSnapshot>,
    attribution: Option<&gadget_obs::trace::AttributionReport>,
    transport: &str,
    topology: Option<TopologyStamp>,
) -> Result<(), String> {
    let options = replay_options(flags)?;
    let mut meta = gadget_report::capture(&flags.canonical());
    meta.threads = options.replay_threads as u64;
    meta.shards = shard_count(flags)? as u64;
    meta.batch_size = options.batch_size as u64;
    meta.transport = transport.to_string();
    // A drive's parallelism is its connection count, not replay threads.
    if let Some(connections) = flags.optional_parse::<u64>("connections")? {
        meta.threads = connections;
    }
    if let Some(topology) = topology {
        meta.partition_digest = topology.digest;
        // The final shard count may differ from `--shards` after a
        // mid-run split; the event trail says why.
        if let Some(last) = topology.events.last() {
            meta.shards = meta.shards.max(last.to + 1);
        }
        meta.reshard_events = topology.events;
    }
    let mut report = gadget_report::RunReport::from_run(run, meta);
    if let Some(snapshot) = store_metrics {
        report.metrics = snapshot;
    }
    report.attribution = attribution.map(gadget_obs::attribution_snapshot);
    report
        .save(std::path::Path::new(path))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote run report to {path}");
    Ok(())
}

/// `reports.json` → `reports-0.json`, `reports-1.json`, ... — one
/// output per concurrent trace.
fn indexed_path(path: &str, index: usize) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}-{index}.{ext}"),
        _ => format!("{path}-{index}"),
    }
}

fn cmd_replay(flags: &Flags) -> Result<(), String> {
    let trace_path = flags.required("trace")?;
    let label = flags.required("store")?;
    // Validate flags before the (possibly slow) trace load.
    let replayer = TraceReplayer::new(replay_options(flags)?);
    let trace = Trace::load(trace_path).map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let (store, sharded) =
        open_store_maybe_sharded(label, flags.optional("dir"), shard_count(flags)?)?;
    // `--reshard-at frac:from:to` arms a live topology change at that
    // fraction of the replayed ops: the migration runs on a background
    // thread while the replay keeps issuing traffic, so the latency
    // histogram records the elasticity cost from the foreground's view.
    let resharding = match flags.optional("reshard-at") {
        Some(spec) => {
            let Some(sharded) = sharded.clone() else {
                return Err(
                    "--reshard-at needs a sharded embedded store (--shards 2 or more)".to_string(),
                );
            };
            let total_ops = flags
                .optional_parse::<u64>("ops")?
                .map_or(trace.len() as u64, |n| n.min(trace.len() as u64));
            let plan = gadget_replay::ReshardPlan::parse(spec, total_ops)?;
            Some(std::sync::Arc::new(gadget_replay::ReshardingStore::new(
                sharded, plan,
            )))
        }
        None => None,
    };
    let op_store: std::sync::Arc<dyn gadget_kv::StateStore> = match &resharding {
        Some(r) => r.clone(),
        None => store.clone(),
    };
    // `--trace` is the *input* .gdt here, so the span-timeline output
    // flag is `--trace-out`. Tracing needs the ObservedStore wrapper
    // (its sampler emits the foreground op spans); untraced runs keep
    // the raw store.
    let trace_out = flags.optional("trace-out");
    let run_store: Box<dyn gadget_kv::StateStore> = match trace_out {
        Some(_) => Box::new(gadget_kv::ObservedStore::new(ArcStore(op_store.clone()))),
        None => Box::new(ArcStore(op_store)),
    };
    let session = trace_out.map(|_| gadget_obs::trace::start_session());
    // `--metrics-addr` needs an emitter too: its endpoint serves the
    // emitter's live samples (scheduler lag, offered/achieved rate).
    let mut emitter = match (flags.optional("metrics"), flags.optional("metrics-addr")) {
        (None, None) => None,
        _ => Some(SnapshotEmitter::every(sample_interval(
            flags,
            trace.len() as u64,
        )?)),
    };
    let endpoint = match flags.optional("metrics-addr") {
        Some(addr) => {
            let shared = SharedSnapshot::new();
            emitter = emitter.map(|em| em.with_live_sink(shared.clone()));
            Some(start_metrics_endpoint(addr, shared, store.clone())?)
        }
        None => None,
    };
    let report = match emitter.as_mut() {
        None => replayer.replay(&trace, run_store.as_ref(), trace_path),
        Some(em) => replayer.replay_observed(&trace, run_store.as_ref(), trace_path, em),
    }
    .map_err(|e| e.to_string())?;
    if let Some(resharding) = &resharding {
        match resharding.finish() {
            Some(Ok(event)) => println!(
                "reshard at op {}: shard {} -> {}, {} slots, {} keys, \
                 pause {}us, copy {}us (map v{})",
                event.at_op,
                event.from,
                event.to,
                event.slots,
                event.keys,
                event.pause_us,
                event.copy_us,
                event.map_version
            ),
            Some(Err(e)) => return Err(format!("mid-replay reshard failed: {e}")),
            None => {
                return Err(
                    "--reshard-at never fired: the replay ended before the planned op".to_string(),
                )
            }
        }
    }
    let mut attribution = None;
    if let Some(out) = trace_out {
        let log = session
            .expect("session exists when --trace-out set")
            .finish();
        attribution = Some(export_trace(out, &log, emitter.as_mut())?);
    }
    if let (Some(metrics_path), Some(em)) = (flags.optional("metrics"), emitter.as_ref()) {
        write_series(metrics_path, em.series())?;
    }
    if let Some(path) = flags.optional("report-out") {
        write_run_report(
            path,
            flags,
            &report,
            store.metrics(),
            attribution.as_ref(),
            transport_for_label(label),
            sharded.as_deref().map(TopologyStamp::of_store),
        )?;
    }
    if let Some(endpoint) = endpoint {
        endpoint.stop();
    }
    print_report(&report);
    Ok(())
}

/// `gadget sweep`: the open-loop service-rate observatory. Replays one
/// workload at a ladder of offered rates (open-loop, so latency is
/// anchored to *intended* arrival times and coordinated omission cannot
/// hide queueing), finds the knee — the highest sustainable rate — and
/// writes a versioned [`gadget_report::SweepReport`].
fn cmd_sweep(flags: &Flags) -> Result<(), String> {
    let raw = flags
        .optional("backend")
        .or_else(|| flags.optional("store"))
        .ok_or("missing required flag --backend (or --store)")?;
    let label = backend_label(raw).to_string();
    let (store, sharded) =
        open_store_maybe_sharded(&label, flags.optional("dir"), shard_count(flags)?)?;

    let mut opts = SweepOptions {
        arrival: flags
            .optional_parse::<ArrivalMode>("arrival")?
            .unwrap_or(ArrivalMode::Poisson),
        // Pinned (not entropy-derived) so CI baselines reproduce.
        seed: flags.optional_parse("seed")?.unwrap_or(42),
        ..SweepOptions::default()
    };
    if !opts.arrival.is_open() {
        return Err(
            "--arrival must be an open-loop schedule (constant or poisson) for a sweep".to_string(),
        );
    }
    if let Some(list) = flags.optional("rates") {
        for part in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let rate: f64 = part
                .parse()
                .map_err(|_| format!("--rates got an unparsable rate {part}"))?;
            if rate <= 0.0 {
                return Err("--rates entries must be positive".to_string());
            }
            opts.rates.push(rate);
        }
        if opts.rates.is_empty() {
            return Err("--rates must name at least one rate".to_string());
        }
    }
    if let Some(r) = flags.optional_parse("start-rate")? {
        opts.start_rate = r;
    }
    if let Some(r) = flags.optional_parse("max-rate")? {
        opts.max_rate = r;
    }
    if let Some(g) = flags.optional_parse("growth")? {
        opts.growth = g;
    }
    if let Some(n) = flags.optional_parse("refine")? {
        opts.refine = n;
    }
    if let Some(n) = flags.optional_parse("ops-per-step")? {
        if n == 0 {
            return Err("--ops-per-step must be at least 1".to_string());
        }
        opts.ops_per_step = n;
    }
    if let Some(f) = flags.optional_parse::<f64>("sustainable-fraction")? {
        if !(0.0..=1.0).contains(&f) {
            return Err("--sustainable-fraction must be in [0, 1]".to_string());
        }
        opts.sustainable_fraction = f;
    }
    if let Some(ms) = flags.optional_parse::<u64>("p99-bound-ms")? {
        opts.p99_bound_ns = ms.saturating_mul(1_000_000);
    }
    // Not routed through replay_options(): a sweep's rates come from
    // the ladder, so `--rate` is neither needed nor accepted here.
    opts.batch_size = flags.optional_parse("batch-size")?.unwrap_or(1);
    if opts.batch_size == 0 {
        return Err("--batch-size must be at least 1".to_string());
    }
    opts.replay_threads = flags.optional_parse("replay-threads")?.unwrap_or(1);
    if opts.replay_threads == 0 {
        return Err("--replay-threads must be at least 1".to_string());
    }

    // Workload: an existing trace, or a self-generated YCSB core
    // workload sized to one step.
    let (workload, trace) = match flags.optional("trace") {
        Some(path) => {
            let trace = Trace::load(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let name = std::path::Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or(path)
                .to_string();
            (name, trace)
        }
        None => {
            let wl = flags.optional("workload").unwrap_or("A");
            let workload = match wl {
                "A" | "a" => CoreWorkload::A,
                "B" | "b" => CoreWorkload::B,
                "C" | "c" => CoreWorkload::C,
                "D" | "d" => CoreWorkload::D,
                "F" | "f" => CoreWorkload::F,
                other => return Err(format!("unknown YCSB workload {other} (A, B, C, D, F)")),
            };
            let records: u64 = flags.optional_parse("records")?.unwrap_or(1_000);
            let trace = YcsbConfig::core(workload, records, opts.ops_per_step).generate();
            (format!("ycsb-{}", wl.to_lowercase()), trace)
        }
    };

    // The live endpoint sees each completed step as a gauge pair on top
    // of the store's internals.
    let live = match flags.optional("metrics-addr") {
        Some(addr) => {
            let shared = SharedSnapshot::new();
            let endpoint = start_metrics_endpoint(addr, shared.clone(), store.clone())?;
            Some((shared, endpoint))
        }
        None => None,
    };
    println!(
        "sweeping {label} / {workload} ({} arrivals, seed {})",
        opts.arrival, opts.seed
    );
    println!(
        "{:>12} {:>12} {:>6} {:>12} {:>12}",
        "offered", "achieved", "sust", "p50(ns)", "p99(ns)"
    );
    let shared_for_progress = live.as_ref().map(|(s, _)| s.clone());
    let store_for_progress = store.clone();
    let mut progress = |step: &RateStep| {
        println!(
            "{:>12.0} {:>12.0} {:>6} {:>12} {:>12}",
            step.offered,
            step.achieved,
            if step.sustainable { "yes" } else { "NO" },
            step.run.latency.p50_ns,
            step.run.latency.p99_ns,
        );
        if let Some(shared) = &shared_for_progress {
            let mut snap = gadget_obs::MetricsSnapshot::new();
            snap.push_gauge("offered_rate", step.offered.round() as i64);
            snap.push_gauge("achieved_rate", step.achieved.round() as i64);
            snap.push_gauge("sustainable", step.sustainable as i64);
            let mut registries = vec![("sweep".to_string(), snap)];
            if let Some(store_snap) = store_for_progress.metrics() {
                registries.push(("store".to_string(), store_snap));
            }
            shared.publish(gadget_obs::flatten_registries(&registries));
        }
    };
    let outcome = run_sweep(
        &trace,
        &ArcStore(store.clone()),
        &workload,
        &opts,
        Some(&mut progress),
    )
    .map_err(|e| e.to_string())?;
    if let Some((_, endpoint)) = live {
        endpoint.stop();
    }

    let mut meta = gadget_report::capture(&flags.canonical());
    meta.threads = opts.replay_threads as u64;
    meta.shards = shard_count(flags)? as u64;
    meta.batch_size = opts.batch_size as u64;
    meta.transport = transport_for_label(&label).to_string();
    meta.arrival = opts.arrival.name().to_string();
    if let Some(stamp) = sharded.as_deref().map(TopologyStamp::of_store) {
        meta.partition_digest = stamp.digest;
        meta.reshard_events = stamp.events;
    }
    let sweep = gadget_report::SweepReport::from_sweep(&outcome, &opts, meta);

    match &sweep.knee {
        Some(knee) => println!(
            "knee: {:.0} ops/s offered ({:.0} achieved, p99 {}ns) at step {}",
            knee.offered_rate, knee.achieved_rate, knee.p99_ns, knee.step_index
        ),
        None => println!("knee: none — no offered rate was sustainable"),
    }
    let default_out = format!(
        "results/reports/sweep-{}-{}-{}.json",
        sweep.store, sweep.workload, sweep.arrival
    );
    let out = flags.optional("report-out").unwrap_or(&default_out);
    sweep
        .save(std::path::Path::new(out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote sweep report to {out}");
    Ok(())
}

fn cmd_online(flags: &Flags) -> Result<(), String> {
    let config = load_config(flags)?;
    let label = flags.required("store")?;
    let store = open_store_sharded(label, flags.optional("dir"), shard_count(flags)?)?;
    // No input-trace flag on `online`, so the span timeline is plain
    // `--trace` (with `--trace-out` accepted as the replay-consistent
    // alias).
    let trace_out = flags
        .optional("trace")
        .or_else(|| flags.optional("trace-out"));
    let run_store: Box<dyn gadget_kv::StateStore> = match trace_out {
        Some(_) => Box::new(gadget_kv::ObservedStore::new(ArcStore(store.clone()))),
        None => Box::new(ArcStore(store.clone())),
    };
    let session = trace_out.map(|_| gadget_obs::trace::start_session());
    let mut emitter = match (flags.optional("metrics"), flags.optional("metrics-addr")) {
        (None, None) => None,
        _ => {
            // Online op count is not known upfront; approximate it as 2×
            // the source event count for the default interval.
            let events = match &config.source {
                gadget_core::SourceConfig::Synthetic(g) => g.events,
                gadget_core::SourceConfig::Dataset { events, .. } => *events,
            };
            Some(SnapshotEmitter::every(sample_interval(flags, events * 2)?))
        }
    };
    let endpoint = match flags.optional("metrics-addr") {
        Some(addr) => {
            let shared = SharedSnapshot::new();
            emitter = emitter.map(|em| em.with_live_sink(shared.clone()));
            Some(start_metrics_endpoint(addr, shared, store.clone())?)
        }
        None => None,
    };
    let options = replay_options(flags)?;
    let report = match emitter.as_mut() {
        None => run_online_with(&config, run_store.as_ref(), &config.operator, &options),
        Some(em) => {
            run_online_observed_with(&config, run_store.as_ref(), &config.operator, &options, em)
        }
    }
    .map_err(|e| e.to_string())?;
    let mut attribution = None;
    if let Some(out) = trace_out {
        let log = session.expect("session exists when tracing").finish();
        attribution = Some(export_trace(out, &log, emitter.as_mut())?);
    }
    if let (Some(metrics_path), Some(em)) = (flags.optional("metrics"), emitter.as_ref()) {
        write_series(metrics_path, em.series())?;
    }
    if let Some(path) = flags.optional("report-out") {
        write_run_report(
            path,
            flags,
            &report,
            store.metrics(),
            attribution.as_ref(),
            transport_for_label(label),
            None,
        )?;
    }
    if let Some(endpoint) = endpoint {
        endpoint.stop();
    }
    print_report(&report);
    Ok(())
}

/// Store labels swept by `observe` when `--stores` is not given: the
/// paper's four store classes.
const OBSERVE_STORES: &str = "rocksdb-class,lethe-class,faster-class,berkeleydb-class";

/// Runs one workload against a set of stores, sampling each store's
/// internal metrics into a single JSON time series. Components in each
/// snapshot are prefixed with the store label (`rocksdb-class.store`,
/// `rocksdb-class.replayer`).
fn cmd_observe(flags: &Flags) -> Result<(), String> {
    let config = load_config(flags)?;
    let metrics_path = flags.required("metrics")?;
    let labels = flags.optional("stores").unwrap_or(OBSERVE_STORES);
    let trace = config.run();
    let interval = sample_interval(flags, trace.len() as u64)?;
    let replayer = TraceReplayer::default();
    let mut combined = MetricsSeries {
        interval_ops: interval,
        points: Vec::new(),
    };
    // One failing store must not abort the sweep (the other stores'
    // series are still wanted) — but it must not be silent either: the
    // partial series is written, then the command exits non-zero naming
    // every failure.
    let mut failures: Vec<String> = Vec::new();
    for label in labels.split(',').map(str::trim).filter(|l| !l.is_empty()) {
        let dir =
            std::env::temp_dir().join(format!("gadget-observe-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = match open_store(label, dir.to_str()) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("{label}: {e}");
                failures.push(format!("{label}: {e}"));
                continue;
            }
        };
        let observed = gadget_kv::ObservedStore::new(ArcStore(store));
        let mut emitter = SnapshotEmitter::every(interval);
        match replayer.replay_observed(&trace, &observed, label, &mut emitter) {
            Ok(report) => println!(
                "{label}: {} ops at {:.0} ops/s (p99.9 {}ns)",
                report.operations, report.throughput, report.latency.p999_ns
            ),
            Err(e) => {
                eprintln!("{label}: run failed: {e}");
                failures.push(format!("{label}: {e}"));
            }
        }
        for mut point in emitter.series().points.iter().cloned() {
            for (component, _) in &mut point.registries {
                *component = format!("{label}.{component}");
            }
            combined.points.push(point);
        }
        drop(observed);
        let _ = std::fs::remove_dir_all(&dir);
    }
    write_series(metrics_path, &combined)?;
    if !failures.is_empty() {
        return Err(format!(
            "observe sweep failed for {} store(s): {}",
            failures.len(),
            failures.join("; ")
        ));
    }
    Ok(())
}

fn cmd_analyze(flags: &Flags) -> Result<(), String> {
    let trace_path = flags.required("trace")?;
    let trace = Trace::load(trace_path).map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let stats = trace.stats();
    println!("accesses: {}", stats.total);
    println!(
        "composition: get={:.3} put={:.3} merge={:.3} delete={:.3}",
        stats.ratio(OpType::Get),
        stats.ratio(OpType::Put),
        stats.ratio(OpType::Merge),
        stats.ratio(OpType::Delete)
    );
    println!("distinct state keys: {}", stats.distinct_keys);
    if let Some(amp) = stats.event_amplification() {
        println!("event amplification: {amp:.2}");
    }
    if let Some(amp) = stats.key_amplification() {
        println!("keyspace amplification: {amp:.2}");
    }

    let keys = key_sequence(&trace);
    let sd = stack_distances(&keys, None);
    println!(
        "temporal locality: mean stack distance {:.1} ({} cold accesses)",
        sd.mean, sd.cold_accesses
    );
    let seqs = unique_sequences(&keys, 10);
    println!(
        "spatial locality: {} unique sequences (len 1..=10)",
        seqs.total()
    );
    let ws = working_set_series(&keys, 100);
    println!(
        "working set: peak {} keys, final {}",
        working_set::peak(&ws),
        ws.last().map(|p| p.size).unwrap_or(0)
    );
    let ttl = ttl_distribution(&keys, None);
    println!(
        "TTL steps: p50={} p90={} p99.9={} max={} (accessed-once fraction {:.2})",
        ttl.percentile(50.0),
        ttl.percentile(90.0),
        ttl.percentile(99.9),
        ttl.max(),
        ttl.accessed_once_fraction()
    );
    Ok(())
}

fn cmd_compare(flags: &Flags) -> Result<(), String> {
    use gadget_analysis::{ks_test, rank_normalize, wasserstein_distance};
    let load = |key: &str| -> Result<Trace, String> {
        let path = flags.required(key)?;
        Trace::load(path).map_err(|e| format!("cannot read {path}: {e}"))
    };
    let (a, b) = (load("a")?, load("b")?);
    let (ka, kb) = (key_sequence(&a), key_sequence(&b));

    println!("{:>24} | {:>12} | {:>12}", "metric", "trace A", "trace B");
    println!("{}", "-".repeat(56));
    let row = |name: &str, va: String, vb: String| {
        println!("{name:>24} | {va:>12} | {vb:>12}");
    };
    row("accesses", a.len().to_string(), b.len().to_string());
    row(
        "get ratio",
        format!("{:.3}", a.stats().ratio(OpType::Get)),
        format!("{:.3}", b.stats().ratio(OpType::Get)),
    );
    row(
        "delete ratio",
        format!("{:.3}", a.stats().ratio(OpType::Delete)),
        format!("{:.3}", b.stats().ratio(OpType::Delete)),
    );
    let (sa, sb) = (stack_distances(&ka, None), stack_distances(&kb, None));
    row(
        "mean stack distance",
        format!("{:.1}", sa.mean),
        format!("{:.1}", sb.mean),
    );
    row(
        "unique seqs (<=10)",
        unique_sequences(&ka, 10).total().to_string(),
        unique_sequences(&kb, 10).total().to_string(),
    );
    let (ta, tb) = (ttl_distribution(&ka, None), ttl_distribution(&kb, None));
    row(
        "p50 TTL steps",
        ta.percentile(50.0).to_string(),
        tb.percentile(50.0).to_string(),
    );

    let (ra, rb) = (rank_normalize(&ka), rank_normalize(&kb));
    let ks = ks_test(&ra, &rb);
    println!();
    println!(
        "key distributions: KS D = {:.4}, p = {:.4} ({}), Wasserstein = {:.5}",
        ks.d,
        ks.p_value,
        if ks.rejects(0.001) {
            "different"
        } else {
            "compatible"
        },
        wasserstein_distance(&ra, &rb)
    );
    Ok(())
}

/// `gadget report <show|compare> <files...> [--flags...]`.
///
/// Positional arguments (everything before the first `--flag`) are
/// hand-split because [`Flags::parse`] only accepts `--key value`
/// pairs.
fn cmd_report(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "usage: gadget report show <report.json>\n\
         \x20      gadget report compare <baseline.json> <candidate.json> [--tolerance <pct>] [--rate-tolerance <pct>] [--knee-tolerance <pct>] [--allow-topology-change] [--out <json>]\n\
         \x20      gadget report compare <candidate.json> --baseline <dir> [--tolerance <pct>] [--rate-tolerance <pct>] [--knee-tolerance <pct>] [--allow-topology-change] [--out <json>]";
    let Some(action) = args.first() else {
        return Err(USAGE.to_string());
    };
    // `--allow-topology-change` is the one valueless flag in the CLI
    // (a policy switch, not a parameter), so it is peeled off before
    // the strict `--key value` parser sees the rest.
    let mut rest: Vec<String> = args[1..].to_vec();
    let allow_topology_change = match rest.iter().position(|a| a == "--allow-topology-change") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let split = rest
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(rest.len());
    let (positional, flag_args) = rest.split_at(split);
    let flags = Flags::parse(flag_args)?;
    match action.as_str() {
        "show" => {
            let [path] = positional else {
                return Err(USAGE.to_string());
            };
            match load_any_report(path)? {
                AnyReport::Run(report) => print_run_report_summary(path, &report),
                AnyReport::Sweep(sweep) => print_sweep_summary(path, &sweep),
            }
            Ok(())
        }
        "compare" => {
            let mut tolerance = match flags.optional_parse::<f64>("tolerance")? {
                Some(pct) if pct > 0.0 => gadget_report::Tolerance::from_pct(pct),
                Some(_) => return Err("--tolerance must be positive".to_string()),
                None => gadget_report::Tolerance::default(),
            };
            tolerance.allow_topology_change = allow_topology_change;
            if let Some(pct) = flags.optional_parse::<f64>("knee-tolerance")? {
                if pct <= 0.0 {
                    return Err("--knee-tolerance must be positive".to_string());
                }
                tolerance.knee_pct = pct;
            }
            // Open-loop sweeps pace their offered rate, so achieved
            // rate is far more reproducible than latency — a split
            // tolerance keeps the rate gate meaningful even when the
            // latency tolerance must absorb cross-machine noise.
            if let Some(pct) = flags.optional_parse::<f64>("rate-tolerance")? {
                if pct <= 0.0 {
                    return Err("--rate-tolerance must be positive".to_string());
                }
                tolerance.throughput_pct = pct;
            }
            let (baseline_label, baseline, candidate_label, candidate) = match positional {
                [a, b] => (
                    a.clone(),
                    load_any_report(a)?,
                    b.clone(),
                    load_any_report(b)?,
                ),
                [cand] => {
                    let candidate = load_any_report(cand)?;
                    let dir = std::path::Path::new(flags.required("baseline")?);
                    let (path, baseline) = match &candidate {
                        AnyReport::Run(c) => {
                            let (p, b) = gadget_report::find_baseline(dir, &c.store, &c.workload)?;
                            (p, AnyReport::Run(Box::new(b)))
                        }
                        AnyReport::Sweep(c) => {
                            let (p, b) =
                                gadget_report::find_sweep_baseline(dir, &c.store, &c.workload)?;
                            (p, AnyReport::Sweep(Box::new(b)))
                        }
                    };
                    (
                        path.display().to_string(),
                        baseline,
                        cand.clone(),
                        candidate,
                    )
                }
                _ => return Err(USAGE.to_string()),
            };
            let comparison = match (&baseline, &candidate) {
                (AnyReport::Run(b), AnyReport::Run(c)) => gadget_report::compare_reports(
                    b,
                    c,
                    &baseline_label,
                    &candidate_label,
                    &tolerance,
                ),
                (AnyReport::Sweep(b), AnyReport::Sweep(c)) => gadget_report::compare_sweeps(
                    b,
                    c,
                    &baseline_label,
                    &candidate_label,
                    &tolerance,
                ),
                _ => {
                    return Err(format!(
                        "cannot compare a run report with a sweep report \
                         ({baseline_label} vs {candidate_label})"
                    ))
                }
            };
            // Verdict table on stderr so stdout stays machine-friendly
            // (and the table survives output redirection in CI logs).
            eprint!("{}", comparison.to_table());
            if let Some(out) = flags.optional("out") {
                let mut text =
                    serde_json::to_string_pretty(&comparison).map_err(|e| e.to_string())?;
                text.push('\n');
                std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
            }
            println!("verdict: {}", comparison.status.label());
            if comparison.regressed() {
                let failed: Vec<&str> = comparison
                    .metrics
                    .iter()
                    .filter(|m| m.status == gadget_report::Status::Regressed)
                    .map(|m| m.metric.as_str())
                    .collect();
                return Err(format!("comparison REGRESSED: {}", failed.join(", ")));
            }
            Ok(())
        }
        other => Err(format!("unknown report action {other}\n{USAGE}")),
    }
}

/// `gadget trace merge`: join a client and a server span timeline into
/// one clock-aligned Perfetto file. Positional dispatch, like `report`.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    const USAGE: &str =
        "usage: gadget trace merge <client.json> <server.json> [--out <merged.json>] [--check]";
    let Some(action) = args.first() else {
        return Err(USAGE.to_string());
    };
    if action != "merge" {
        return Err(format!("unknown trace action {action}\n{USAGE}"));
    }
    // `--check` is valueless (a gate switch), peeled off before the
    // strict `--key value` parser sees the rest.
    let mut rest: Vec<String> = args[1..].to_vec();
    let check = match rest.iter().position(|a| a == "--check") {
        Some(i) => {
            rest.remove(i);
            true
        }
        None => false,
    };
    let split = rest
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(rest.len());
    let (positional, flag_args) = rest.split_at(split);
    let flags = Flags::parse(flag_args)?;
    let [client_path, server_path] = positional else {
        return Err(USAGE.to_string());
    };
    let client = std::fs::read_to_string(client_path)
        .map_err(|e| format!("cannot read {client_path}: {e}"))?;
    let server = std::fs::read_to_string(server_path)
        .map_err(|e| format!("cannot read {server_path}: {e}"))?;
    let outcome = gadget_obs::trace::merge_traces(&client, &server)?;
    if let Some(out) = flags.optional("out") {
        std::fs::write(out, &outcome.merged_json)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote merged timeline to {out}; load it at https://ui.perfetto.dev");
    }
    print!("{}", outcome.summary());
    if check {
        // CI gate: every matched server span must nest inside its
        // client op after the offset shift, and the four decomposition
        // segments must telescope back to the end-to-end time.
        if outcome.matched == 0 {
            return Err("trace check FAILED: no requests matched across the two traces".into());
        }
        // 99%, not 100%: the offset estimate carries up to ~RTT/2 of
        // error, and a request whose wire legs are shorter than that
        // error cannot nest no matter how good the alignment is.
        if (outcome.nested as f64) < 0.99 * outcome.matched as f64 {
            return Err(format!(
                "trace check FAILED: only {}/{} server request spans nest inside \
                 their client op after offset correction (>= 99% required)",
                outcome.nested, outcome.matched
            ));
        }
        if outcome.max_sum_dev_frac > 0.05 {
            return Err(format!(
                "trace check FAILED: worst segment-sum deviation {:.2}% exceeds 5%",
                outcome.max_sum_dev_frac * 100.0
            ));
        }
        println!("trace check passed");
    }
    Ok(())
}

/// A report file of either kind: one measured run, or a whole
/// latency–throughput sweep. Boxed: both payloads are hundreds of
/// bytes and only ever live briefly on the compare path.
enum AnyReport {
    Run(Box<gadget_report::RunReport>),
    Sweep(Box<gadget_report::SweepReport>),
}

/// Loads a report file, sniffing its kind. Sweep reports carry fields
/// (`steps`, `knee`) that the strict run-report parser rejects and vice
/// versa, so exactly one parse can succeed; when neither does, the
/// run-report error is the one shown (the common case).
fn load_any_report(path: &str) -> Result<AnyReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if let Ok(sweep) = gadget_report::SweepReport::from_json(&text) {
        return Ok(AnyReport::Sweep(Box::new(sweep)));
    }
    gadget_report::RunReport::from_json(&text)
        .map(|report| AnyReport::Run(Box::new(report)))
        .map_err(|e| format!("{path}: {e}"))
}

/// Human summary of one sweep report (`gadget report show`): the
/// latency–throughput curve as an aligned table, knee marked.
fn print_sweep_summary(path: &str, sweep: &gadget_report::SweepReport) {
    println!("sweep:      {path} (schema v{})", sweep.version);
    println!(
        "run:        {} / {} ({} arrivals, seed {})",
        sweep.store, sweep.workload, sweep.arrival, sweep.seed
    );
    let m = &sweep.meta;
    println!("revision:   {} ({})", m.git_describe, m.git_sha);
    print_topology_meta(m);
    println!(
        "criteria:   achieved >= {:.0}% of offered{}",
        sweep.sustainable_fraction * 100.0,
        if sweep.p99_bound_ns > 0 {
            format!(", p99 <= {}ms", sweep.p99_bound_ns / 1_000_000)
        } else {
            String::new()
        }
    );
    println!(
        "{:>12} {:>12} {:>6} {:>12} {:>12}",
        "offered", "achieved", "sust", "p50(ns)", "p99(ns)"
    );
    let knee_index = sweep.knee.as_ref().map(|k| k.step_index);
    for (i, step) in sweep.steps.iter().enumerate() {
        println!(
            "{:>12.0} {:>12.0} {:>6} {:>12} {:>12}{}",
            step.offered_rate,
            step.achieved_rate,
            if step.sustainable { "yes" } else { "NO" },
            step.report.latency.percentile(50.0),
            step.report.latency.percentile(99.0),
            if knee_index == Some(i as u64) {
                "   <- knee"
            } else {
                ""
            }
        );
    }
    match &sweep.knee {
        Some(k) => println!(
            "knee:       {:.0} ops/s offered ({:.0} achieved, p99 {}ns)",
            k.offered_rate, k.achieved_rate, k.p99_ns
        ),
        None => println!("knee:       none — no offered rate was sustainable"),
    }
}

/// Human summary of one run report (`gadget report show`).
fn print_run_report_summary(path: &str, report: &gadget_report::RunReport) {
    println!("report:     {path} (schema v{})", report.version);
    println!("run:        {} / {}", report.store, report.workload);
    let m = &report.meta;
    println!("revision:   {} ({})", m.git_describe, m.git_sha);
    println!(
        "config:     digest={} threads={} shards={} batch={} cpus={}",
        m.config_digest, m.threads, m.shards, m.batch_size, m.cpu_count
    );
    println!(
        "measured:   {} ops in {:.3}s -> {:.0} ops/s ({} hits, {} misses)",
        report.operations, report.seconds, report.throughput, report.hits, report.misses
    );
    let h = &report.latency;
    if h.count() > 0 {
        println!(
            "latency ns: mean={:.0} p50={} p99={} p99.9={} max={}",
            h.mean(),
            h.percentile(50.0),
            h.percentile(99.0),
            h.percentile(99.9),
            h.max()
        );
    }
    for (op, hist) in &report.per_op {
        println!(
            "  {op:>6}: n={} mean={:.0}ns p99.9={}",
            hist.count(),
            hist.mean(),
            hist.percentile(99.9)
        );
    }
    print_decomposition(&report.decomposition);
    print_topology_meta(m);
    if let Some(r) = &report.recovery {
        println!(
            "recovery:   {} us from {} ({} WAL bytes replayed)",
            r.recovery_us,
            if r.checkpoint_restored {
                "checkpoint"
            } else {
                "WAL"
            },
            r.replayed_wal_bytes
        );
        println!(
            "  crash:    killed @op {} ({} acked, {} cycle{}), torn tail {}; \
             loss window {} acknowledged write{}",
            r.kill_at_op,
            r.acked_ops,
            r.crashes,
            if r.crashes == 1 { "" } else { "s" },
            r.torn_tail,
            r.loss_window,
            if r.loss_window == 1 { "" } else { "s" }
        );
    }
    println!(
        "metrics:    {} counters, {} gauges, {} histograms{}",
        report.metrics.counters.len(),
        report.metrics.gauges.len(),
        report.metrics.histograms.len(),
        if report.attribution.is_some() {
            "; tail attribution attached"
        } else {
            ""
        }
    );
}

/// Renders a report's partition topology (`gadget report show`): the
/// partition-map digest and, one line each, every live reshard the run
/// absorbed. Silent for static-topology reports with no recorded map.
fn print_topology_meta(m: &gadget_report::RunMeta) {
    if m.partition_digest != "unknown" || !m.reshard_events.is_empty() {
        println!(
            "topology:   partition map {} ({} reshard event{})",
            m.partition_digest,
            m.reshard_events.len(),
            if m.reshard_events.len() == 1 { "" } else { "s" }
        );
    }
    for e in &m.reshard_events {
        println!(
            "  reshard @op {}: shard {} -> {}, {} slots, {} keys, \
             pause {}us, copy {}us (map v{})",
            e.at_op, e.from, e.to, e.slots, e.keys, e.pause_us, e.copy_us, e.map_version
        );
    }
}

fn cmd_concurrent(flags: &Flags) -> Result<(), String> {
    let traces_arg = flags.required("traces")?;
    let label = flags.required("store")?;
    let mut traces = Vec::new();
    for path in traces_arg.split(',') {
        let trace = Trace::load(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        traces.push((path.to_string(), trace));
    }
    if traces.is_empty() {
        return Err("--traces requires at least one path".to_string());
    }
    let store = open_store_sharded(label, flags.optional("dir"), shard_count(flags)?)?;
    // Concurrent runs have no sampling emitter; the live endpoint
    // serves the (shared) store's current internal metrics directly.
    let endpoint = match flags.optional("metrics-addr") {
        Some(addr) => Some(start_metrics_endpoint(
            addr,
            SharedSnapshot::new(),
            store.clone(),
        )?),
        None => None,
    };
    let outcome = gadget_replay::run_concurrent(traces, store.clone(), replay_options(flags)?);
    if let Some(endpoint) = endpoint {
        endpoint.stop();
    }
    match outcome {
        Ok(reports) => {
            for report in &reports {
                print_report(report);
                println!();
            }
            if let Some(path) = flags.optional("report-out") {
                for (i, report) in reports.iter().enumerate() {
                    let out = indexed_path(path, i);
                    write_run_report(
                        &out,
                        flags,
                        report,
                        store.metrics(),
                        None,
                        transport_for_label(label),
                        None,
                    )?;
                }
            }
            Ok(())
        }
        Err(err) => {
            // Surviving runs are joined and measured even when a peer
            // fails; print their reports before surfacing the error.
            for report in &err.completed {
                print_report(report);
                println!();
            }
            Err(err.to_string())
        }
    }
}

fn cmd_tune_cache(flags: &Flags) -> Result<(), String> {
    let trace_path = flags.required("trace")?;
    let target: f64 = flags.optional_parse("hit-rate")?.unwrap_or(0.9);
    if !(0.0..1.0).contains(&target) {
        return Err("--hit-rate must be in [0, 1)".to_string());
    }
    let trace = Trace::load(trace_path).map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let keys = key_sequence(&trace);
    let summary = stack_distances(&keys, None);
    match gadget_analysis::recommend_capacity(&summary, target) {
        Some(capacity) => println!(
            "smallest LRU capacity for a {:.0}% hit rate: {capacity} keys              (miss ratio there: {:.4})",
            target * 100.0,
            summary.miss_ratio(capacity)
        ),
        None => println!(
            "unreachable: cold misses alone exceed {:.0}% of accesses",
            (1.0 - target) * 100.0
        ),
    }
    for capacity in [16u64, 256, 4_096, 65_536] {
        println!(
            "  miss ratio @ {capacity:>6} keys: {:.4}",
            summary.miss_ratio(capacity)
        );
    }
    Ok(())
}

fn cmd_ycsb(flags: &Flags) -> Result<(), String> {
    let workload = match flags.required("workload")? {
        "A" | "a" => CoreWorkload::A,
        "B" | "b" => CoreWorkload::B,
        "C" | "c" => CoreWorkload::C,
        "D" | "d" => CoreWorkload::D,
        "F" | "f" => CoreWorkload::F,
        other => return Err(format!("unknown YCSB workload {other} (A, B, C, D, F)")),
    };
    let records: u64 = flags.optional_parse("records")?.unwrap_or(1_000);
    let ops: u64 = flags.optional_parse("ops")?.unwrap_or(100_000);
    let out = flags.required("out")?;
    let trace = YcsbConfig::core(workload, records, ops).generate();
    trace
        .save(out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("wrote {} YCSB accesses to {out}", trace.len());
    Ok(())
}

fn cmd_dataset(flags: &Flags) -> Result<(), String> {
    let name = flags.required("name")?;
    let events: u64 = flags.optional_parse("events")?.unwrap_or(100_000);
    let seed: u64 = flags.optional_parse("seed")?.unwrap_or(42);
    let out = flags.required("out")?;
    let spec = gadget_datasets::DatasetSpec { events, seed };
    let dataset = gadget_datasets::by_name(name, spec)
        .ok_or_else(|| format!("unknown dataset {name} (borg, taxi, azure)"))?;
    gadget_datasets::save_events_csv(&dataset, out)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} {} events ({} distinct keys, {:.1} ev/s) to {out}",
        dataset.events.len(),
        dataset.name,
        dataset.distinct_keys,
        dataset.arrival_rate()
    );
    Ok(())
}

/// Friendly backend aliases for `serve`: the class labels are a
/// mouthful when all you want is "an LSM".
fn backend_label(raw: &str) -> &str {
    match raw {
        "lsm" => "rocksdb-class",
        "hashlog" => "faster-class",
        "btree" => "berkeleydb-class",
        other => other,
    }
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let raw = flags
        .optional("backend")
        .or_else(|| flags.optional("store"))
        .ok_or("missing required flag --backend (or --store)")?;
    let label = backend_label(raw).to_string();
    let addr = flags.optional("addr").unwrap_or("127.0.0.1:4547");
    let (store, sharded) =
        open_store_maybe_sharded(&label, flags.optional("dir"), shard_count(flags)?)?;
    let mut config = gadget_server::ServerConfig::default();
    if let Some(depth) = flags.optional_parse::<usize>("queue-depth")? {
        if depth == 0 {
            return Err("--queue-depth must be at least 1".to_string());
        }
        config.queue_depth = depth;
    }
    let queue_depth = config.queue_depth;
    // Server-side tracing: the session must be live *before* worker
    // threads spawn so their per-thread rings register with it. The
    // timeline is written once the server drains.
    let trace_out = flags.optional("trace-out");
    let session = trace_out.map(|_| gadget_obs::trace::start_session());
    // A sharded store is served through the reshard-aware front so wire
    // `reshard`/`topology` control frames reach it.
    let server = match &sharded {
        Some(sharded) => gadget_server::Server::start_sharded(addr, sharded.clone(), config),
        None => gadget_server::Server::start(addr, store, config),
    }
    .map_err(|e| e.to_string())?;
    // Exact line first so scripts can scrape the resolved port.
    println!("gadget-server listening on {}", server.local_addr());
    println!("serving {label} (queue depth {queue_depth})");
    if let Some(sharded) = &sharded {
        println!(
            "sharded across {} shards (partition map {}); live `gadget reshard` enabled",
            sharded.shard_count(),
            sharded.partition_digest()
        );
    }
    let metrics = match flags.optional("metrics-addr") {
        Some(maddr) => {
            let endpoint = gadget_server::MetricsServer::start(maddr, server.snapshot_source())
                .map_err(|e| format!("cannot bind metrics endpoint {maddr}: {e}"))?;
            println!("metrics endpoint on http://{}", endpoint.local_addr());
            Some(endpoint)
        }
        None => None,
    };
    if let Some(out) = trace_out {
        println!("server tracing on; will write spans to {out} on drain");
    }
    println!("send `gadget stop --addr <addr>` to drain and exit");
    // Blocks until a wire Shutdown frame triggers the drain.
    server.join().map_err(|e| e.to_string())?;
    if let Some(endpoint) = metrics {
        endpoint.stop();
    }
    if let Some(out) = trace_out {
        let log = session
            .expect("session exists when --trace-out set")
            .finish();
        export_trace(out, &log, None)?;
    }
    println!("gadget-server drained and stopped");
    Ok(())
}

fn cmd_drive(flags: &Flags) -> Result<(), String> {
    let addr = flags.required("addr")?;
    let trace_path = flags.required("trace")?;
    let connections = match flags.optional_parse::<usize>("connections")? {
        Some(0) => return Err("--connections must be at least 1".to_string()),
        Some(n) => n,
        None => 8,
    };
    let churn: f64 = flags.optional_parse("churn")?.unwrap_or(0.0);
    if !(0.0..=1.0).contains(&churn) {
        return Err("--churn must be a probability in [0, 1]".to_string());
    }
    let trace = Trace::load(trace_path).map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    // `--reshard-at frac:from:to` fires a live reshard on the *server*
    // (over a dedicated control connection) once the fleet has issued
    // that fraction of the total ops.
    let reshard_at = match flags.optional("reshard-at") {
        Some(spec) => {
            let parts: Vec<&str> = spec.split(':').collect();
            let [frac, from, to] = parts.as_slice() else {
                return Err(format!(
                    "--reshard-at '{spec}' is not of the form <op-frac>:<from>:<to>"
                ));
            };
            let frac: f64 = frac
                .parse()
                .map_err(|_| format!("--reshard-at op fraction '{frac}' is not a number"))?;
            if !(0.0..=1.0).contains(&frac) {
                return Err(format!("--reshard-at op fraction {frac} outside 0.0..=1.0"));
            }
            let from: u32 = from
                .parse()
                .map_err(|_| format!("--reshard-at source shard '{from}' is not an index"))?;
            let to: u32 = to
                .parse()
                .map_err(|_| format!("--reshard-at target shard '{to}' is not an index"))?;
            Some(gadget_server::ReshardTrigger { frac, from, to })
        }
        None => None,
    };
    // `--trace-out` implies client tracing: every request carries a
    // wire-v3 trace context, replies echo server timestamps, and the
    // latency decomposition lands in the run report.
    let trace_out = flags.optional("trace-out");
    let session = trace_out.map(|_| gadget_obs::trace::start_session());
    let options = gadget_server::DriveOptions {
        connections,
        churn,
        segment_ops: flags.optional_parse("segment-ops")?.unwrap_or(1_000),
        replay: replay_options(flags)?,
        seed: flags.optional_parse("seed")?.unwrap_or(0x9ad9e),
        reshard_at,
        client_trace: trace_out.is_some(),
    };
    let summary =
        gadget_server::drive(addr, &trace, trace_path, &options).map_err(|e| e.to_string())?;
    let attribution = match trace_out {
        Some(out) => {
            let log = session
                .expect("session exists when --trace-out set")
                .finish();
            Some(export_trace(out, &log, None)?)
        }
        None => None,
    };
    println!(
        "drove {} ops over {} connections ({} reconnects, {} B out, {} B in)",
        summary.report.operations,
        summary.connections,
        summary.reconnects,
        summary.bytes_out,
        summary.bytes_in
    );
    if let Some(event) = &summary.reshard {
        println!(
            "reshard at op {}: shard {} -> {}, {} slots, {} keys, \
             pause {}us, copy {}us (map v{})",
            event.at_op,
            event.from,
            event.to,
            event.slots,
            event.keys,
            event.pause_us,
            event.copy_us,
            event.map_version
        );
    }
    if !summary.clock_offsets_ns.is_empty() {
        let offsets: Vec<String> = summary
            .clock_offsets_ns
            .iter()
            .map(|(conn, off)| format!("c{conn}:{off}"))
            .collect();
        println!(
            "clock offsets (server - client, ns, min-RTT estimate): {}",
            offsets.join(" ")
        );
    }
    if let Some(path) = flags.optional("report-out") {
        let topology = summary.topology.as_ref().map(TopologyStamp::of_topology);
        write_run_report(
            path,
            flags,
            &summary.report,
            None,
            attribution.as_ref(),
            "tcp",
            topology,
        )?;
    }
    print_report(&summary.report);
    Ok(())
}

/// `gadget reshard`: fire one live shard split / slot migration on a
/// running server, over the wire. Blocks until the migration completes
/// and prints what it did — the manual (and CI) counterpart of `drive
/// --reshard-at`.
fn cmd_reshard(flags: &Flags) -> Result<(), String> {
    let addr = flags.required("addr")?;
    let from: u32 = flags
        .optional_parse("from")?
        .ok_or("missing required flag --from")?;
    let to: u32 = flags
        .optional_parse("to")?
        .ok_or("missing required flag --to")?;
    let at_op: u64 = flags.optional_parse("at-op")?.unwrap_or(0);
    let client = gadget_server::NetStore::connect(addr)
        .map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    let event = client
        .reshard(from, to, at_op)
        .map_err(|e| format!("reshard on {addr} failed: {e}"))?;
    println!(
        "reshard done: shard {} -> {}, {} slots, {} keys, pause {}us, copy {}us (map v{})",
        event.from,
        event.to,
        event.slots,
        event.keys,
        event.pause_us,
        event.copy_us,
        event.map_version
    );
    let topology = client
        .topology()
        .map_err(|e| format!("topology query on {addr} failed: {e}"))?;
    println!(
        "topology: {} shards, partition map {} (v{}), {} reshard event(s)",
        topology.shards,
        topology.digest_hex(),
        topology.map_version,
        topology.events.len()
    );
    Ok(())
}

fn cmd_stop(flags: &Flags) -> Result<(), String> {
    let addr = flags.required("addr")?;
    let client = gadget_server::NetStore::connect(addr)
        .map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    client
        .shutdown_server()
        .map_err(|e| format!("shutdown handshake with {addr} failed: {e}"))?;
    println!("server at {addr} acknowledged shutdown and is draining");
    Ok(())
}

/// `gadget checkpoint`: ask a running server to checkpoint its store.
/// The directory is server-local; only the manifest summary crosses the
/// wire, never the table bytes.
fn cmd_checkpoint(flags: &Flags) -> Result<(), String> {
    let addr = flags.required("addr")?;
    let dir = flags.required("out")?;
    let client = gadget_server::NetStore::connect(addr)
        .map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    let summary = client
        .checkpoint_server(dir)
        .map_err(|e| format!("checkpoint on {addr} failed: {e}"))?;
    println!(
        "server checkpointed into {dir}: {} file(s), {} bytes, {} reused from prior checkpoints",
        summary.files, summary.total_bytes, summary.reused
    );
    Ok(())
}

/// `gadget restore`: ask a running server to replace its store's state
/// with a server-local checkpoint taken earlier.
fn cmd_restore(flags: &Flags) -> Result<(), String> {
    let addr = flags.required("addr")?;
    let dir = flags.required("from")?;
    let client = gadget_server::NetStore::connect(addr)
        .map_err(|e| format!("cannot reach server at {addr}: {e}"))?;
    client
        .restore_server(dir)
        .map_err(|e| format!("restore on {addr} failed: {e}"))?;
    println!("server at {addr} restored from {dir}");
    Ok(())
}

// ---------------------------------------------------------------------------
// Crash-recovery harness (`gadget crash` / hidden `crash-child`).
// ---------------------------------------------------------------------------

/// Store aliases for crash mode. `lsm` maps to the shrunk sync-WAL
/// config rather than the paper-scale one so WAL activity (group
/// commit, rotation, flush) actually fires within a few thousand ops;
/// the other aliases match `serve`.
fn crash_label(raw: &str) -> &str {
    match raw {
        "lsm" => "rocksdb-small",
        other => backend_label(other),
    }
}

/// Deterministic splitmix64 step, for seeded kill-point jitter across
/// repeated crash cycles.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The newest WAL segment (`wal_<gen>.log`, highest generation) in
/// `dir`, if any — the file a torn write would land in.
fn newest_wal(dir: &std::path::Path) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let Some(gen) = name
            .strip_prefix("wal_")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|g| g.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| gen > *b) {
            best = Some((gen, entry.path()));
        }
    }
    best.map(|(_, p)| p)
}

/// Total size of WAL segments under `dir`, recursing one level into
/// `shard-<i>` subdirectories — the bytes recovery will have to replay.
fn wal_bytes_under(dir: &std::path::Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += wal_bytes_under(&path);
        } else if entry
            .file_name()
            .to_string_lossy()
            .strip_prefix("wal_")
            .is_some_and(|rest| rest.ends_with(".log"))
        {
            total += entry.metadata().map(|m| m.len()).unwrap_or(0);
        }
    }
    total
}

/// Applies one batch to the store, then journals the index of the last
/// acknowledged op to the unbuffered ack log. The journal write happens
/// *after* the store acknowledges, so a crash between the two
/// under-reports acknowledged ops but never over-reports them — the
/// loss-window measurement errs toward missing real loss windows of
/// size zero, never toward inventing loss that did not happen.
fn crash_child_flush(
    store: &dyn gadget_kv::StateStore,
    pending: &mut Vec<gadget_types::Op>,
    applied: &mut u64,
    acks: &mut std::fs::File,
) -> Result<(), String> {
    use std::io::Write;
    if pending.is_empty() {
        return Ok(());
    }
    store
        .apply_batch(pending)
        .map_err(|e| format!("apply_batch at op {}: {e}", *applied))?;
    *applied += pending.len() as u64;
    pending.clear();
    acks.write_all(&(*applied - 1).to_le_bytes())
        .map_err(|e| format!("ack journal: {e}"))?;
    Ok(())
}

/// The re-exec'd half of `gadget crash` (hidden from usage): replays a
/// trace against a real store, journaling every acknowledged op index,
/// optionally checkpoints mid-stream, and `abort()`s at the kill point
/// — no destructors, no flushes. The parent runs this as a separate OS
/// process so the crash kills real process state: user-space buffers
/// die, whatever reached the kernel survives, exactly as in a
/// production crash.
///
/// Failures are reported by writing the error to the `--error-marker`
/// file (and exiting nonzero): the parent cannot distinguish exit codes
/// portably, but "marker file exists" is unambiguous.
fn cmd_crash_child(flags: &Flags) -> Result<(), String> {
    let marker = flags.required("error-marker")?.to_string();
    let result = run_crash_child(flags);
    if let Err(e) = &result {
        let _ = std::fs::write(&marker, e);
    }
    result
}

fn run_crash_child(flags: &Flags) -> Result<(), String> {
    let trace_path = flags.required("trace")?;
    let trace = Trace::load(trace_path).map_err(|e| format!("cannot read {trace_path}: {e}"))?;
    let label = crash_label(flags.required("store")?);
    let dir = flags.required("dir")?;
    let kill_at: u64 = flags
        .optional_parse("kill-at")?
        .ok_or("missing required flag --kill-at")?;
    let batch: usize = flags.optional_parse("batch-size")?.unwrap_or(1).max(1);
    let checkpoint_at: Option<u64> = flags.optional_parse("checkpoint-at")?;
    let acks_path = flags.required("acks")?;
    let (store, _) = open_store_maybe_sharded(label, Some(dir), shard_count(flags)?)?;
    let replayer = TraceReplayer::new(ReplayOptions::default());
    let mut acks =
        std::fs::File::create(acks_path).map_err(|e| format!("cannot create {acks_path}: {e}"))?;
    let mut pending: Vec<gadget_types::Op> = Vec::new();
    let mut applied: u64 = 0;
    for (i, access) in trace.iter().enumerate() {
        let i = i as u64;
        if checkpoint_at == Some(i) {
            crash_child_flush(store.as_ref(), &mut pending, &mut applied, &mut acks)?;
            let ckpt = flags.required("checkpoint-dir")?;
            store
                .checkpoint(std::path::Path::new(ckpt))
                .map_err(|e| format!("checkpoint at op {i}: {e}"))?;
        }
        if i == kill_at {
            crash_child_flush(store.as_ref(), &mut pending, &mut applied, &mut acks)?;
            // The crash itself. Everything acknowledged up to here is
            // in the ack journal; nothing past it was issued.
            std::process::abort();
        }
        pending.push(replayer.materialize(access));
        if pending.len() >= batch {
            crash_child_flush(store.as_ref(), &mut pending, &mut applied, &mut acks)?;
        }
    }
    Err(format!(
        "kill point {kill_at} was never reached ({applied} ops replayed)"
    ))
}

/// Finds the longest prefix of the materialized op sequence whose state
/// the recovered store matches, using the reference [`MemStore`] as the
/// state model (the same oracle the equivalence proptests trust; merge
/// is append-concatenation in every backend). Returns `(prefix_len,
/// loss_window)` where the loss window counts *acknowledged writes*
/// past the matched prefix — every one of them is data the store
/// confirmed and then lost. Unacknowledged-but-persisted writes are
/// fine (the prefix may extend past the ack horizon); a recovered state
/// matching *no* prefix is a consistency violation, not loss, and is a
/// hard error.
fn verify_recovered_prefix(
    ops: &[gadget_types::Op],
    recovered: &dyn gadget_kv::StateStore,
    acked_ops: u64,
) -> Result<(u64, u64), String> {
    use std::collections::{HashMap, HashSet};
    // Snapshot the recovered value of every key the trace touches; keys
    // outside the trace cannot differ in any prefix state.
    let mut recovered_vals: HashMap<Vec<u8>, Option<bytes::Bytes>> = HashMap::new();
    for op in ops {
        if !recovered_vals.contains_key(op.key()) {
            let v = recovered
                .get(op.key())
                .map_err(|e| format!("recovered get: {e}"))?;
            recovered_vals.insert(op.key().to_vec(), v);
        }
    }
    // `mismatched` tracks keys whose model value currently differs from
    // the recovered value; prefix j matches exactly when it is empty,
    // so each op costs O(1) instead of a full-state comparison.
    let model = gadget_kv::MemStore::new();
    let mut mismatched: HashSet<Vec<u8>> = recovered_vals
        .iter()
        .filter(|(_, v)| v.is_some())
        .map(|(k, _)| k.clone())
        .collect();
    let mut matched_prefix: Option<u64> = if mismatched.is_empty() { Some(0) } else { None };
    for (i, op) in ops.iter().enumerate() {
        match op {
            gadget_types::Op::Get { .. } => continue,
            gadget_types::Op::Put { key, value } => model
                .put(key, value)
                .map_err(|e| format!("model put: {e}"))?,
            gadget_types::Op::Merge { key, operand } => model
                .merge(key, operand)
                .map_err(|e| format!("model merge: {e}"))?,
            gadget_types::Op::Delete { key } => model
                .delete(key)
                .map_err(|e| format!("model delete: {e}"))?,
        }
        let key = op.key();
        let now = model.get(key).map_err(|e| format!("model get: {e}"))?;
        if &now == recovered_vals.get(key).expect("key snapshotted above") {
            mismatched.remove(key);
        } else {
            mismatched.insert(key.to_vec());
        }
        if mismatched.is_empty() {
            matched_prefix = Some(i as u64 + 1);
        }
    }
    let Some(prefix) = matched_prefix else {
        return Err(
            "recovered state matches no prefix of the issued ops — consistency violation, \
             not a loss window"
                .to_string(),
        );
    };
    let loss = ops[prefix as usize..]
        .iter()
        .take(acked_ops.saturating_sub(prefix) as usize)
        .filter(|op| op.is_write())
        .count() as u64;
    Ok((prefix, loss))
}

/// `gadget crash`: the crash-recovery harness.
///
/// Re-execs the replay as a child process (the hidden `crash-child`
/// subcommand), lets it `abort()` at a seeded kill point, then recovers
/// — reopening the store in place so its WAL replays, or (with
/// `--checkpoint-at-frac`) restoring the mid-run checkpoint into a
/// fresh directory — and measures what the durability contract actually
/// delivered: recovery time, WAL bytes replayed, and the *loss window*,
/// the number of acknowledged writes missing from the recovered state.
/// A sync-WAL store must report a loss window of zero; snapshot-only
/// stores honestly report everything since the last checkpoint.
fn cmd_crash(flags: &Flags) -> Result<(), String> {
    let raw_label = flags.required("store")?;
    let label = crash_label(raw_label).to_string();
    let seed: u64 = flags.optional_parse("seed")?.unwrap_or(42);
    let crashes: u64 = flags.optional_parse("crashes")?.unwrap_or(1).max(1);
    let batch: usize = flags.optional_parse("batch-size")?.unwrap_or(1).max(1);
    let shards = shard_count(flags)?;
    let torn_tail = match flags.optional("torn-tail") {
        None => None,
        Some("truncate") => Some(gadget_lsm::TearMode::Truncate),
        Some("garble") => Some(gadget_lsm::TearMode::Garble),
        Some(other) => {
            return Err(format!(
                "--torn-tail must be truncate or garble, got {other}"
            ))
        }
    };
    let kill_frac: Option<f64> = flags.optional_parse("kill-at-frac")?;
    if let Some(f) = kill_frac {
        if !(0.0..=1.0).contains(&f) {
            return Err("--kill-at-frac must be in [0, 1]".to_string());
        }
    }
    let checkpoint_frac: Option<f64> = flags.optional_parse("checkpoint-at-frac")?;
    if let Some(f) = checkpoint_frac {
        if !(0.0..=1.0).contains(&f) {
            return Err("--checkpoint-at-frac must be in [0, 1]".to_string());
        }
    }
    // The B+Tree persists through its page file with no WAL: reopening
    // a torn page file is undefined, so crash runs must recover from a
    // checkpoint. (hashlog and mem reopen empty — a legal, honestly
    // huge loss window — so they are allowed without one.)
    if label == "berkeleydb-class" && checkpoint_frac.is_none() {
        return Err(
            "btree has no WAL; crash recovery needs --checkpoint-at-frac to recover from"
                .to_string(),
        );
    }
    let workdir = store_dir(flags.optional("dir"));
    std::fs::create_dir_all(&workdir).map_err(|e| e.to_string())?;

    // The trace: user-provided or a generated update-heavy YCSB A.
    // Either way the exact op list replayed is saved to the workdir so
    // child and verifier agree byte-for-byte.
    let ops_limit: Option<u64> = flags.optional_parse("ops")?;
    let mut trace = match flags.optional("trace") {
        Some(path) => Trace::load(path).map_err(|e| format!("cannot read {path}: {e}"))?,
        None => {
            let ops = ops_limit.unwrap_or(4_000);
            YcsbConfig::core(CoreWorkload::A, (ops / 10).max(16), ops).generate()
        }
    };
    if let Some(n) = ops_limit {
        trace.accesses.truncate(n as usize);
    }
    let total = trace.len() as u64;
    if total < 4 {
        return Err("crash harness needs a trace of at least 4 ops".to_string());
    }
    let trace_path = workdir.join("crash-trace.gdt");
    trace
        .save(&trace_path)
        .map_err(|e| format!("cannot write {}: {e}", trace_path.display()))?;
    // Materialize once: the child derives the identical sequence from
    // the same trace file (TraceReplayer::materialize is deterministic).
    let replayer = TraceReplayer::new(ReplayOptions::default());
    let ops: Vec<gadget_types::Op> = trace.iter().map(|a| replayer.materialize(a)).collect();

    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut rng = seed;
    let mut last_recovery: Option<gadget_report::RecoveryReport> = None;
    let mut last_store_name = "unknown";
    let mut last_metrics = None;
    let mut child_secs = 0.0;
    for cycle in 0..crashes {
        // Cycle 0 honors --kill-at-frac exactly; later cycles (and
        // cycle 0 without the flag) draw a seeded point in [0.1, 0.9].
        let frac = match (cycle, kill_frac) {
            (0, Some(f)) => f,
            _ => 0.1 + 0.8 * (splitmix64(&mut rng) as f64 / u64::MAX as f64),
        };
        let kill_at = ((total as f64 * frac) as u64).clamp(1, total - 1);
        let checkpoint_at = checkpoint_frac.map(|f| ((total as f64 * f) as u64).min(kill_at - 1));
        let cycle_dir = workdir.join(format!("cycle-{cycle}"));
        let _ = std::fs::remove_dir_all(&cycle_dir);
        let db_dir = cycle_dir.join("db");
        let ckpt_dir = cycle_dir.join("ckpt");
        let acks_path = cycle_dir.join("acks.log");
        let marker_path = cycle_dir.join("child-error");
        std::fs::create_dir_all(&db_dir).map_err(|e| e.to_string())?;

        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("crash-child")
            .arg("--trace")
            .arg(&trace_path)
            .arg("--store")
            .arg(raw_label)
            .arg("--dir")
            .arg(&db_dir)
            .arg("--kill-at")
            .arg(kill_at.to_string())
            .arg("--batch-size")
            .arg(batch.to_string())
            .arg("--shards")
            .arg(shards.to_string())
            .arg("--acks")
            .arg(&acks_path)
            .arg("--error-marker")
            .arg(&marker_path);
        if let Some(at) = checkpoint_at {
            cmd.arg("--checkpoint-at").arg(at.to_string());
            cmd.arg("--checkpoint-dir").arg(&ckpt_dir);
        }
        let started = std::time::Instant::now();
        let out = cmd
            .output()
            .map_err(|e| format!("cannot spawn crash child: {e}"))?;
        child_secs = started.elapsed().as_secs_f64();
        if marker_path.exists() || out.status.success() {
            let detail = std::fs::read_to_string(&marker_path).unwrap_or_default();
            return Err(format!(
                "crash child did not crash (status {}): {}{}",
                out.status,
                detail.trim(),
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }

        // The last complete 8-byte record is the index of the last op
        // the store acknowledged before the abort.
        let ack_bytes = std::fs::read(&acks_path).unwrap_or_default();
        let whole = ack_bytes.len() / 8;
        let acked_ops = if whole == 0 {
            0
        } else {
            let rec: [u8; 8] = ack_bytes[(whole - 1) * 8..whole * 8].try_into().unwrap();
            u64::from_le_bytes(rec) + 1
        };

        // Optional torn-write injection on the newest WAL segment —
        // recovery must tolerate it (CRC-bounded replay), possibly at
        // the cost of the final acknowledged batch.
        let mut torn = "none";
        if let Some(mode) = torn_tail {
            let wal_dir = if shards > 1 {
                db_dir.join("shard-0")
            } else {
                db_dir.clone()
            };
            match newest_wal(&wal_dir) {
                Some(path) => {
                    gadget_lsm::tear_tail(&path, mode)
                        .map_err(|e| format!("torn-tail injection: {e}"))?;
                    torn = match mode {
                        gadget_lsm::TearMode::Truncate => "truncate",
                        gadget_lsm::TearMode::Garble => "garble",
                    };
                }
                None => println!(
                    "cycle {cycle}: no WAL segment under {} to tear (skipping injection)",
                    wal_dir.display()
                ),
            }
        }

        // Recovery: reopen in place (WAL replay) or restore the mid-run
        // checkpoint into a fresh directory.
        let checkpoint_restored = checkpoint_at.is_some();
        let (recover_dir, replayed_wal_bytes) = if checkpoint_restored {
            (cycle_dir.join("restore"), wal_bytes_under(&ckpt_dir))
        } else {
            (db_dir.clone(), wal_bytes_under(&db_dir))
        };
        let recover_str = recover_dir
            .to_str()
            .ok_or("non-UTF-8 working directory")?
            .to_string();
        let started = std::time::Instant::now();
        let (recovered, _) = open_store_maybe_sharded(&label, Some(&recover_str), shards)?;
        if checkpoint_restored {
            recovered
                .restore(&ckpt_dir)
                .map_err(|e| format!("restore from {}: {e}", ckpt_dir.display()))?;
        }
        let recovery_us = started.elapsed().as_micros() as u64;

        let (prefix, loss_window) = verify_recovered_prefix(&ops, recovered.as_ref(), acked_ops)?;
        println!(
            "cycle {cycle}: killed @op {kill_at} ({acked_ops} acked), recovered in \
             {recovery_us} us ({replayed_wal_bytes} WAL bytes, state = prefix of {prefix} \
             ops), loss window {loss_window} acknowledged write(s){}",
            if torn == "none" {
                String::new()
            } else {
                format!(", torn tail: {torn}")
            }
        );
        last_store_name = recovered.name();
        last_metrics = recovered.metrics();
        last_recovery = Some(gadget_report::RecoveryReport {
            recovery_us,
            replayed_wal_bytes,
            loss_window,
            acked_ops,
            kill_at_op: kill_at,
            checkpoint_restored,
            torn_tail: torn.to_string(),
            crashes,
        });
    }

    let recovery = last_recovery.expect("at least one crash cycle ran");
    let loss = recovery.loss_window;
    if let Some(path) = flags.optional("report-out") {
        let mut meta = gadget_report::capture(&flags.canonical());
        meta.threads = 1;
        meta.shards = shards as u64;
        meta.batch_size = batch as u64;
        let report = gadget_report::RunReport {
            version: gadget_report::SCHEMA_VERSION,
            store: last_store_name.to_string(),
            workload: "crash".to_string(),
            meta,
            operations: recovery.acked_ops,
            seconds: child_secs,
            throughput: if child_secs > 0.0 {
                recovery.acked_ops as f64 / child_secs
            } else {
                0.0
            },
            hits: 0,
            misses: 0,
            latency: gadget_obs::LogHistogram::new(),
            per_op: Vec::new(),
            lag: gadget_obs::LogHistogram::new(),
            metrics: last_metrics.unwrap_or_default(),
            attribution: None,
            recovery: Some(recovery),
            decomposition: Vec::new(),
        };
        report
            .save(std::path::Path::new(path))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote crash report to {path}");
    }
    println!(
        "crash harness: {crashes} cycle(s) complete; final loss window {loss} \
         acknowledged write(s)"
    );
    Ok(())
}

fn cmd_stores() -> Result<(), String> {
    println!("available store labels:");
    println!("  rocksdb-class     LSM tree with lazy merge operator (gadget-lsm)");
    println!("  lethe-class       LSM tree with delete-aware compaction (gadget-lsm)");
    println!("  faster-class      hash index over a record log (gadget-hashlog)");
    println!("  berkeleydb-class  page-cached B+Tree (gadget-btree)");
    println!(
        "  rocksdb-small     shrunk LSM (tiny memtable/cache, sync WAL) for traced smoke runs"
    );
    println!("  mem               reference in-memory hash map (gadget-kv)");
    println!("  remote-<label>    any of the above behind a synthetic datacenter network");
    println!("  net:<host:port>   a running `gadget serve` instance, over real TCP");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    /// Tests that measure latency (report compare's KS gate) and tests
    /// that saturate cores (the loopback drive) perturb each other when
    /// the harness runs them in parallel; both kinds take this lock.
    fn timing_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn flags_parse_pairs() {
        let f = Flags::parse(&strs(&["--a", "1", "--b", "x"])).unwrap();
        assert_eq!(f.required("a").unwrap(), "1");
        assert_eq!(f.optional("b"), Some("x"));
        assert_eq!(f.optional("c"), None);
        assert_eq!(f.optional_parse::<u64>("a").unwrap(), Some(1));
        assert!(f.required("zz").is_err());
        assert!(f.optional_parse::<u64>("b").is_err());
    }

    #[test]
    fn flags_reject_bad_shapes() {
        assert!(Flags::parse(&strs(&["positional"])).is_err());
        assert!(Flags::parse(&strs(&["--dangling"])).is_err());
    }

    #[test]
    fn dispatch_rejects_unknown() {
        assert!(dispatch(&strs(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn end_to_end_generate_analyze_replay() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg_path = dir.join("cfg.json");
        let trace_path = dir.join("trace.gdt");
        let cfg = gadget_core::GadgetConfig::synthetic(
            gadget_core::OperatorKind::TumblingIncr,
            gadget_core::GeneratorConfig {
                events: 2_000,
                ..gadget_core::GeneratorConfig::default()
            },
        );
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();

        dispatch(&strs(&[
            "generate",
            "--config",
            cfg_path.to_str().unwrap(),
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        dispatch(&strs(&["analyze", "--trace", trace_path.to_str().unwrap()])).unwrap();
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--store",
            "mem",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observe_sweeps_every_store_into_one_series() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg_path = dir.join("cfg.json");
        let metrics_path = dir.join("metrics.json");
        let cfg = gadget_core::GadgetConfig::synthetic(
            gadget_core::OperatorKind::TumblingIncr,
            gadget_core::GeneratorConfig {
                events: 2_000,
                ..gadget_core::GeneratorConfig::default()
            },
        );
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
        // Bare-flags invocation (no subcommand), as in the quickstart.
        dispatch(&strs(&[
            "--config",
            cfg_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--stores",
            "mem,faster-class",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let series: MetricsSeries = serde_json::from_str(&text).unwrap();
        assert!(series.points.len() >= 4, "{} points", series.points.len());
        for label in ["mem", "faster-class"] {
            let last = series
                .points
                .iter()
                .rev()
                .find(|p| p.registry(&format!("{label}.store")).is_some())
                .unwrap();
            let snap = last.registry(&format!("{label}.store")).unwrap();
            assert!(snap.counter("puts").unwrap() > 0, "{label} puts");
            assert!(
                last.registry(&format!("{label}.replayer"))
                    .unwrap()
                    .counter("ops")
                    .unwrap()
                    > 0
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_with_metrics_writes_series() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-rm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.gdt");
        let metrics_path = dir.join("metrics.json");
        let cfg = gadget_core::GadgetConfig::synthetic(
            gadget_core::OperatorKind::Aggregation,
            gadget_core::GeneratorConfig {
                events: 1_000,
                ..gadget_core::GeneratorConfig::default()
            },
        );
        cfg.run().save(&trace_path).unwrap();
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--store",
            "mem",
            "--metrics",
            metrics_path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let series: MetricsSeries = serde_json::from_str(&text).unwrap();
        assert!(series.points.len() >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Minimal Chrome trace-event schema check: every event must be an
    /// object with string `ph` ∈ {X, M}, numeric pid/tid, and complete
    /// events additionally need name, numeric ts and dur.
    fn validate_chrome_schema(doc: &serde::Value) -> Vec<&serde::Value> {
        use serde::Value;
        let events = match doc.get("traceEvents") {
            Some(Value::Array(events)) => events,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        for event in events {
            assert!(event.as_object().is_some(), "event not an object");
            let ph = event.get("ph").and_then(Value::as_str).expect("ph");
            assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
            assert!(event.get("pid").and_then(Value::as_u64).is_some(), "pid");
            assert!(event.get("tid").and_then(Value::as_u64).is_some(), "tid");
            if ph == "X" {
                assert!(event.get("name").and_then(Value::as_str).is_some());
                assert!(event.get("ts").and_then(Value::as_f64).is_some());
                assert!(event.get("dur").and_then(Value::as_f64).is_some());
            }
        }
        events.iter().collect()
    }

    #[test]
    fn traced_replay_emits_valid_chrome_trace_with_background_categories() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("ycsb.gdt");
        let chrome_path = dir.join("spans.json");
        let metrics_path = dir.join("metrics.json");
        // Update-heavy YCSB A with a value size large enough to roll
        // the rocksdb-small memtable many times: flush, compaction,
        // wal_fsync, and cache_fill all fire.
        gadget_ycsb::YcsbConfig::core(gadget_ycsb::CoreWorkload::A, 400, 6_000)
            .generate()
            .save(&trace_path)
            .unwrap();
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--store",
            "rocksdb-small",
            "--dir",
            dir.join("db").to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--trace-out",
            chrome_path.to_str().unwrap(),
        ]))
        .unwrap();

        let text = std::fs::read_to_string(&chrome_path).unwrap();
        let doc: serde::Value = serde_json::from_str(&text).unwrap();
        let events = validate_chrome_schema(&doc);
        let mut seen: Vec<&str> = Vec::new();
        for event in &events {
            if event.get("cat").and_then(serde::Value::as_str) == Some("background") {
                let name = event.get("name").and_then(serde::Value::as_str).unwrap();
                if !seen.contains(&name) {
                    seen.push(name);
                }
            }
        }
        for required in ["flush", "compaction", "wal_fsync", "cache_fill"] {
            assert!(
                seen.contains(&required),
                "background category {required} missing; saw {seen:?}"
            );
        }
        // Sampled foreground op spans and the replay phase frame exist.
        assert!(events
            .iter()
            .any(|e| e.get("cat").and_then(serde::Value::as_str) == Some("op")));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(serde::Value::as_str) == Some("replay")));

        // The attribution report rode into the metrics series.
        let series: MetricsSeries =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let last = series.points.last().unwrap();
        let attribution = last
            .registry("trace_attribution")
            .expect("attribution embedded in final point");
        assert!(attribution.counter("total_ops").unwrap() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn observe_sweep_with_failing_store_exits_nonzero_but_writes_series() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-obsfail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cfg_path = dir.join("cfg.json");
        let metrics_path = dir.join("metrics.json");
        let cfg = gadget_core::GadgetConfig::synthetic(
            gadget_core::OperatorKind::TumblingIncr,
            gadget_core::GeneratorConfig {
                events: 500,
                ..gadget_core::GeneratorConfig::default()
            },
        );
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
        let err = dispatch(&strs(&[
            "--config",
            cfg_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
            "--stores",
            "mem,no-such-store",
        ]))
        .unwrap_err();
        assert!(
            err.contains("no-such-store"),
            "error names the store: {err}"
        );
        // The healthy store's series was still written.
        let series: MetricsSeries =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        assert!(
            series
                .points
                .iter()
                .any(|p| p.registry("mem.store").is_some()),
            "partial series retains the healthy store"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_subcommand_runs() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-cmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pa = dir.join("a.gdt");
        let pb = dir.join("b.gdt");
        let cfg = gadget_core::GadgetConfig::synthetic(
            gadget_core::OperatorKind::Aggregation,
            gadget_core::GeneratorConfig {
                events: 500,
                ..gadget_core::GeneratorConfig::default()
            },
        );
        cfg.run().save(&pa).unwrap();
        gadget_ycsb::YcsbConfig::core(gadget_ycsb::CoreWorkload::A, 100, 1_000)
            .generate()
            .save(&pb)
            .unwrap();
        dispatch(&strs(&[
            "compare",
            "--a",
            pa.to_str().unwrap(),
            "--b",
            pb.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_and_tune_cache_subcommands() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-cc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("w.gdt");
        let cfg = gadget_core::GadgetConfig::synthetic(
            gadget_core::OperatorKind::SlidingIncr,
            gadget_core::GeneratorConfig {
                events: 1_000,
                ..gadget_core::GeneratorConfig::default()
            },
        );
        cfg.run().save(&trace_path).unwrap();
        let tp = trace_path.to_str().unwrap().to_string();
        dispatch(&strs(&[
            "concurrent",
            "--traces",
            &format!("{tp},{tp}"),
            "--store",
            "mem",
        ]))
        .unwrap();
        dispatch(&strs(&["tune-cache", "--trace", &tp, "--hit-rate", "0.9"])).unwrap();
        assert!(dispatch(&strs(&["tune-cache", "--trace", &tp, "--hit-rate", "2.0"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_replay_group_commits_on_sync_lsm() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("w.gdt");
        let metrics_path = dir.join("metrics.json");
        gadget_ycsb::YcsbConfig::core(gadget_ycsb::CoreWorkload::A, 200, 3_000)
            .generate()
            .save(&trace_path)
            .unwrap();
        // rocksdb-small runs with wal_sync=true: batching must reach the
        // LSM's native apply_batch through ArcStore + ObservedStore so
        // fsyncs are amortized over whole batches.
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--store",
            "rocksdb-small",
            "--dir",
            dir.join("db").to_str().unwrap(),
            "--batch-size",
            "64",
            "--metrics",
            metrics_path.to_str().unwrap(),
        ]))
        .unwrap();
        let series: MetricsSeries =
            serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
        let store_snap = series.points.last().unwrap().registry("store").unwrap();
        let appends = store_snap.counter("wal_appends").unwrap();
        let fsyncs = store_snap.counter("wal_fsyncs").unwrap();
        assert!(fsyncs > 0, "sync WAL must fsync");
        assert!(
            fsyncs < appends / 8,
            "group commit should amortize: {fsyncs} fsyncs for {appends} appends"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn online_accepts_batch_size() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-obatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg_path = dir.join("cfg.json");
        let cfg = gadget_core::GadgetConfig::synthetic(
            gadget_core::OperatorKind::Aggregation,
            gadget_core::GeneratorConfig {
                events: 500,
                ..gadget_core::GeneratorConfig::default()
            },
        );
        std::fs::write(&cfg_path, serde_json::to_string(&cfg).unwrap()).unwrap();
        dispatch(&strs(&[
            "online",
            "--config",
            cfg_path.to_str().unwrap(),
            "--store",
            "mem",
            "--batch-size",
            "32",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ycsb_subcommand_writes_trace() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-ycsb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("ycsb.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "A",
            "--records",
            "100",
            "--ops",
            "1000",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let trace = Trace::load(&out).unwrap();
        assert_eq!(trace.stats().total, 1_000);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Replays `trace` on `mem` and writes a run report to `out`.
    fn replay_with_report(trace: &std::path::Path, out: &std::path::Path) {
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace.to_str().unwrap(),
            "--store",
            "mem",
            "--report-out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
    }

    #[test]
    fn report_out_compare_passes_then_regresses_on_perturbation() {
        let _serial = timing_lock();
        let dir = std::env::temp_dir().join(format!("gadget-cli-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "A",
            "--records",
            "200",
            "--ops",
            "5000",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let (a, b) = (dir.join("a.json"), dir.join("b.json"));
        replay_with_report(&trace_path, &a);
        replay_with_report(&trace_path, &b);

        // Reports parse back with provenance recorded.
        let parsed = gadget_report::RunReport::load(&a).unwrap();
        assert_eq!(parsed.store, "mem");
        assert_eq!(parsed.operations, 5_000);
        assert_eq!(parsed.latency.count(), 5_000);
        assert!(parsed.meta.cpu_count >= 1);
        assert_ne!(parsed.meta.config_digest, "unknown");

        // Same seed, same machine, generous tolerance: PASS.
        let cmp_out = dir.join("cmp.json");
        dispatch(&strs(&[
            "report",
            "compare",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--tolerance",
            "50",
            "--out",
            cmp_out.to_str().unwrap(),
        ]))
        .unwrap();
        let cmp_text = std::fs::read_to_string(&cmp_out).unwrap();
        assert!(cmp_text.contains("\"status\""), "machine output written");
        assert!(cmp_text.contains("\"ks_p\""), "KS statistics recorded");

        // 4x latency + quartered throughput: REGRESSED, non-zero exit
        // (dispatch Err is what the binary maps to exit code 1).
        let mut slow = gadget_report::RunReport::load(&b).unwrap();
        let mut hist = gadget_obs::LogHistogram::new();
        for (floor, count) in slow.latency.buckets() {
            for _ in 0..count {
                hist.record(floor.saturating_mul(4).max(4));
            }
        }
        slow.latency = hist;
        slow.throughput /= 4.0;
        let c = dir.join("c.json");
        slow.save(&c).unwrap();
        let err = dispatch(&strs(&[
            "report",
            "compare",
            a.to_str().unwrap(),
            c.to_str().unwrap(),
            "--tolerance",
            "50",
        ]))
        .unwrap_err();
        assert!(err.contains("REGRESSED"), "got: {err}");
        assert!(err.contains("latency"), "latency named as regressed: {err}");

        // `report show` summarizes without error.
        dispatch(&strs(&["report", "show", a.to_str().unwrap()])).unwrap();

        // Baseline-directory form: picks the matching report from a dir.
        let bl_dir = dir.join("baselines");
        std::fs::create_dir_all(&bl_dir).unwrap();
        std::fs::copy(&a, bl_dir.join("baseline.json")).unwrap();
        dispatch(&strs(&[
            "report",
            "compare",
            b.to_str().unwrap(),
            "--baseline",
            bl_dir.to_str().unwrap(),
            "--tolerance",
            "50",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_compare_rejects_malformed_and_missing_inputs() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-repbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        let err = dispatch(&strs(&[
            "report",
            "compare",
            missing.to_str().unwrap(),
            missing.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("nope.json"), "got: {err}");

        let malformed = dir.join("bad.json");
        std::fs::write(&malformed, "{\"not\": \"a report\"}").unwrap();
        let err = dispatch(&strs(&[
            "report",
            "compare",
            malformed.to_str().unwrap(),
            malformed.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("bad.json"), "got: {err}");

        // Baseline directory with no matching report.
        let sample = crate::tests::sample_saved_report(&dir);
        let empty = dir.join("empty-baselines");
        std::fs::create_dir_all(&empty).unwrap();
        let err = dispatch(&strs(&[
            "report",
            "compare",
            sample.to_str().unwrap(),
            "--baseline",
            empty.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("no baseline report"), "got: {err}");

        // Bad shapes: no args, unknown action, `show` without a file.
        assert!(dispatch(&strs(&["report"])).is_err());
        assert!(dispatch(&strs(&["report", "frob"])).is_err());
        assert!(dispatch(&strs(&["report", "show"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_drive_stop_round_trip_over_loopback() {
        let _serial = timing_lock();
        let dir = std::env::temp_dir().join(format!("gadget-cli-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("ycsb.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "A",
            "--records",
            "200",
            "--ops",
            "3000",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();

        // Spawn the server directly (cmd_serve blocks on join).
        let server = gadget_server::Server::start(
            "127.0.0.1:0",
            std::sync::Arc::new(gadget_kv::MemStore::new()),
            gadget_server::ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        // Drive with churn and a report; the report must carry the
        // tcp transport and the connection count.
        let report_path = dir.join("drive-report.json");
        dispatch(&strs(&[
            "drive",
            "--addr",
            &addr,
            "--trace",
            trace_path.to_str().unwrap(),
            "--connections",
            "8",
            "--churn",
            "0.2",
            "--segment-ops",
            "50",
            "--report-out",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        let report = gadget_report::RunReport::load(&report_path).unwrap();
        assert_eq!(report.meta.transport, "tcp");
        assert_eq!(report.meta.threads, 8);
        assert_eq!(report.store, "net");
        assert_eq!(report.operations, 3000);

        // The replayer also works against the server via the net: label.
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--store",
            &format!("net:{addr}"),
            "--ops",
            "500",
        ]))
        .unwrap();

        // Stop drains the server and unblocks join().
        dispatch(&strs(&["stop", "--addr", &addr])).unwrap();
        server.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn traced_drive_decomposes_latency_and_merges_timelines() {
        let _serial = timing_lock();
        let dir = std::env::temp_dir().join(format!("gadget-cli-trc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("ycsb.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "B",
            "--records",
            "100",
            "--ops",
            "2000",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let server = gadget_server::Server::start(
            "127.0.0.1:0",
            std::sync::Arc::new(gadget_kv::MemStore::new()),
            gadget_server::ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();

        let combined_path = dir.join("combined.json");
        let report_path = dir.join("report.json");
        dispatch(&strs(&[
            "drive",
            "--addr",
            &addr,
            "--trace",
            trace_path.to_str().unwrap(),
            "--connections",
            "4",
            "--trace-out",
            combined_path.to_str().unwrap(),
            "--report-out",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();

        // The run report carries the wire-latency decomposition: all
        // five segments, equally populated, end_to_end last.
        let report = gadget_report::RunReport::load(&report_path).unwrap();
        let names: Vec<&str> = report
            .decomposition
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "client_queue",
                "outbound",
                "service",
                "return_path",
                "end_to_end"
            ]
        );
        let counts: Vec<u64> = report
            .decomposition
            .iter()
            .map(|(_, h)| h.count())
            .collect();
        assert!(counts[0] > 0, "traced requests were sampled");
        assert!(
            counts.iter().all(|&c| c == counts[0]),
            "segments sample the same requests: {counts:?}"
        );
        assert!(report.attribution.is_some(), "trace attribution attached");

        // In-process, client and server share one ring session, so the
        // exported file holds both sides of the wire; `trace merge`
        // accepts it as either side and joins requests by sequence.
        let merged_path = dir.join("merged.json");
        dispatch(&strs(&[
            "trace",
            "merge",
            combined_path.to_str().unwrap(),
            combined_path.to_str().unwrap(),
            "--out",
            merged_path.to_str().unwrap(),
        ]))
        .unwrap();
        let merged = std::fs::read_to_string(&merged_path).unwrap();
        assert!(merged.contains("net_op"), "client spans in merged file");
        assert!(merged.contains("net_request"), "server spans too");

        dispatch(&strs(&["stop", "--addr", &addr])).unwrap();
        server.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_subcommand_rejects_bad_shapes() {
        assert!(dispatch(&strs(&["trace"])).is_err());
        assert!(dispatch(&strs(&["trace", "explode"])).is_err());
        // merge needs exactly two positional files
        assert!(dispatch(&strs(&["trace", "merge"])).is_err());
        assert!(dispatch(&strs(&["trace", "merge", "only-one.json"])).is_err());
        // unreadable inputs fail loudly
        let err = dispatch(&strs(&[
            "trace",
            "merge",
            "/nonexistent/c.json",
            "/nonexistent/s.json",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot read"), "got: {err}");
    }

    #[test]
    fn drive_against_unreachable_address_errors() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-unreach-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "C",
            "--records",
            "10",
            "--ops",
            "100",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let err = dispatch(&strs(&[
            "drive",
            "--addr",
            "127.0.0.1:1",
            "--trace",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("i/o error"), "got: {err}");
        // `stop` against nothing also fails loudly.
        assert!(dispatch(&strs(&["stop", "--addr", "127.0.0.1:1"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drive_rejects_bad_flag_values() {
        assert!(dispatch(&strs(&[
            "drive",
            "--addr",
            "x",
            "--trace",
            "y",
            "--connections",
            "0"
        ]))
        .is_err());
        assert!(dispatch(&strs(&[
            "drive", "--addr", "x", "--trace", "y", "--churn", "1.5"
        ]))
        .is_err());
    }

    #[test]
    fn open_loop_arrival_flags_are_validated() {
        // Open-loop schedules need a rate to schedule against.
        let err = dispatch(&strs(&[
            "replay",
            "--trace",
            "x.gdt",
            "--store",
            "mem",
            "--arrival",
            "poisson",
        ]))
        .unwrap_err();
        assert!(err.contains("requires --rate"), "got: {err}");
        // Unknown arrival modes are rejected by the parser.
        assert!(dispatch(&strs(&[
            "replay",
            "--trace",
            "x.gdt",
            "--store",
            "mem",
            "--arrival",
            "bursty",
        ]))
        .is_err());
        // A sweep cannot run closed-loop: that is the trap it exists to avoid.
        let err = dispatch(&strs(&[
            "sweep",
            "--backend",
            "mem",
            "--arrival",
            "closed",
            "--rates",
            "1000",
        ]))
        .unwrap_err();
        assert!(err.contains("open-loop"), "got: {err}");
    }

    #[test]
    fn sweep_emits_reproducible_curve_and_compare_gates_it() {
        let _serial = timing_lock();
        let dir = std::env::temp_dir().join(format!("gadget-cli-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let (a, b) = (dir.join("sweep-a.json"), dir.join("sweep-b.json"));
        // Loose sustainability criteria: the test harness runs many
        // tests in parallel, so wall-clock lag is noisy here. The knee
        // logic itself is exercised with tight criteria in
        // gadget-replay's sweep tests and in the CI sweep-smoke job.
        let run = |out: &std::path::Path| {
            dispatch(&strs(&[
                "sweep",
                "--backend",
                "mem",
                "--arrival",
                "poisson",
                "--seed",
                "42",
                "--rates",
                "4000,8000",
                "--ops-per-step",
                "1500",
                "--sustainable-fraction",
                "0.2",
                "--p99-bound-ms",
                "0",
                "--report-out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
        };
        run(&a);
        run(&b);

        let sweep = gadget_report::SweepReport::load(&a).unwrap();
        assert_eq!(sweep.store, "mem");
        assert_eq!(sweep.arrival, "poisson");
        assert_eq!(sweep.seed, 42);
        assert_eq!(sweep.steps.len(), 2);
        for step in &sweep.steps {
            assert_eq!(step.report.operations, 1_500);
            assert_eq!(step.report.meta.arrival, "poisson");
            assert_eq!(step.report.meta.offered_rate, step.offered_rate);
            assert!(step.report.lag.count() > 0, "open-loop lag recorded");
        }
        // mem sustains both rungs comfortably: the knee is the top rung,
        // and the same seed finds the same knee on the second run.
        let knee = sweep.knee.as_ref().expect("mem sustains the ladder");
        assert_eq!(knee.offered_rate, 8_000.0);
        let again = gadget_report::SweepReport::load(&b).unwrap();
        assert_eq!(
            again.knee.as_ref().map(|k| k.offered_rate),
            Some(knee.offered_rate),
            "same seed must reproduce the knee"
        );

        // `report show` renders the curve, and curve-compare passes
        // against an identical curve (run-to-run latency noise under
        // the parallel test harness is gated in CI, where the sweep
        // runs alone).
        dispatch(&strs(&["report", "show", a.to_str().unwrap()])).unwrap();
        let a_copy = dir.join("sweep-a-copy.json");
        std::fs::copy(&a, &a_copy).unwrap();
        dispatch(&strs(&[
            "report",
            "compare",
            a.to_str().unwrap(),
            a_copy.to_str().unwrap(),
            "--tolerance",
            "50",
        ]))
        .unwrap();

        // A knee collapse regresses with a non-zero exit.
        let mut broken = gadget_report::SweepReport::load(&b).unwrap();
        broken.knee = None;
        for step in &mut broken.steps {
            step.sustainable = false;
            step.achieved_rate /= 4.0;
        }
        let c = dir.join("sweep-c.json");
        broken.save(&c).unwrap();
        let err = dispatch(&strs(&[
            "report",
            "compare",
            a.to_str().unwrap(),
            c.to_str().unwrap(),
            "--tolerance",
            "50",
        ]))
        .unwrap_err();
        assert!(err.contains("REGRESSED"), "got: {err}");
        assert!(err.contains("knee"), "knee named: {err}");

        // Mixed kinds are refused, not silently compared.
        let run_report = sample_saved_report(&dir);
        let err = dispatch(&strs(&[
            "report",
            "compare",
            a.to_str().unwrap(),
            run_report.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("sweep"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_metrics_addr_serves_live_openmetrics() {
        let _serial = timing_lock();
        let dir = std::env::temp_dir().join(format!("gadget-cli-maddr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "A",
            "--records",
            "100",
            "--ops",
            "2000",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        // The endpoint outlives this scope check: we only verify the
        // command accepts the flag, binds an ephemeral port, runs
        // paced + open-loop, and still writes its report.
        let report_path = dir.join("r.json");
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--store",
            "mem",
            "--rate",
            "20000",
            "--arrival",
            "constant",
            "--metrics-addr",
            "127.0.0.1:0",
            "--report-out",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        let report = gadget_report::RunReport::load(&report_path).unwrap();
        assert_eq!(report.meta.arrival, "constant");
        assert_eq!(report.meta.offered_rate, 20_000.0);
        assert!(report.lag.count() > 0, "scheduler lag in the report");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reshard_at_splits_and_stamps_the_report() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-reshard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "A",
            "--records",
            "150",
            "--ops",
            "3000",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let report_path = dir.join("resharded.json");
        dispatch(&strs(&[
            "replay",
            "--trace",
            trace_path.to_str().unwrap(),
            "--store",
            "mem",
            "--shards",
            "2",
            "--reshard-at",
            "0.3:0:2",
            "--report-out",
            report_path.to_str().unwrap(),
        ]))
        .unwrap();
        let report = gadget_report::RunReport::load(&report_path).unwrap();
        assert_ne!(report.meta.partition_digest, "unknown");
        assert_eq!(report.meta.reshard_events.len(), 1, "one split recorded");
        let e = &report.meta.reshard_events[0];
        assert_eq!((e.from, e.to), (0, 2), "split 0 into brand-new shard 2");
        assert!(e.slots > 0 && e.map_version == 2);
        assert_eq!(report.meta.shards, 3, "final shard count after the split");
        // `report show` renders the event without erroring.
        dispatch(&strs(&["report", "show", report_path.to_str().unwrap()])).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reshard_at_rejects_unsharded_and_malformed_specs() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-rsbad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.gdt");
        dispatch(&strs(&[
            "ycsb",
            "--workload",
            "C",
            "--records",
            "50",
            "--ops",
            "200",
            "--out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let base = strs(&["replay", "--trace", trace_path.to_str().unwrap()]);
        let run = |extra: &[&str]| {
            let mut args = base.clone();
            args.extend(strs(extra));
            dispatch(&args)
        };
        let err = run(&["--store", "mem", "--reshard-at", "0.5:0:1"]).unwrap_err();
        assert!(err.contains("sharded"), "got: {err}");
        let err = run(&["--store", "mem", "--shards", "2", "--reshard-at", "0.5:0"]).unwrap_err();
        assert!(err.contains("op-frac"), "got: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_compare_gates_topology_change_behind_flag() {
        let dir = std::env::temp_dir().join(format!("gadget-cli-topo-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mk = |name: &str, digest: &str| {
            let mut m = gadget_replay::Measured::new();
            for i in 0..200 {
                m.overall.record(500 + i % 40);
                m.per_op[0].record(500 + i % 40);
            }
            m.executed = 200;
            let run = m.to_report("mem", "unit", 0.01);
            let meta = gadget_report::RunMeta {
                partition_digest: digest.to_string(),
                ..Default::default()
            };
            let report = gadget_report::RunReport::from_run(&run, meta);
            let path = dir.join(name);
            report.save(&path).unwrap();
            path.to_str().unwrap().to_string()
        };
        let a = mk("a.json", "aaaaaaaaaaaaaaaa");
        let b = mk("b.json", "bbbbbbbbbbbbbbbb");
        let err = dispatch(&strs(&["report", "compare", &a, &b])).unwrap_err();
        assert!(err.contains("topology"), "got: {err}");
        dispatch(&strs(&[
            "report",
            "compare",
            &a,
            &b,
            "--allow-topology-change",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Writes a minimal valid report for tests that only need identity.
    fn sample_saved_report(dir: &std::path::Path) -> std::path::PathBuf {
        let mut m = gadget_replay::Measured::new();
        for i in 0..100 {
            m.overall.record(500 + i);
            m.per_op[0].record(500 + i);
        }
        m.executed = 100;
        let run = m.to_report("mem", "unit", 0.01);
        let report = gadget_report::RunReport::from_run(&run, gadget_report::RunMeta::default());
        let path = dir.join("sample.json");
        report.save(&path).unwrap();
        path
    }
}
