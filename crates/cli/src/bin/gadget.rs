//! The `gadget` binary: see [`gadget_cli::usage`] or run `gadget help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = gadget_cli::dispatch(&args) {
        eprintln!("{message}");
        std::process::exit(1);
    }
}
