//! End-to-end crash-recovery harness tests, driving the real `gadget`
//! binary. The harness re-execs itself (`crash` spawns `crash-child`),
//! so it cannot run inside a unit test — the current executable there
//! is the libtest runner, which rejects the child's flags.

use std::path::{Path, PathBuf};
use std::process::Command;

use gadget_report::RunReport;

fn gadget() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gadget"))
}

fn tmp(name: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    let dir = std::env::temp_dir().join(format!(
        "gadget-crash-{name}-{}-{nanos}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_crash(dir: &Path, extra: &[&str]) -> RunReport {
    let report_path = dir.join("report.json");
    let mut cmd = gadget();
    cmd.args([
        "crash",
        "--ops",
        "600",
        "--seed",
        "42",
        "--dir",
        dir.to_str().unwrap(),
        "--report-out",
        report_path.to_str().unwrap(),
    ]);
    cmd.args(extra);
    let out = cmd.output().expect("spawn gadget");
    assert!(
        out.status.success(),
        "gadget crash failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    RunReport::load(&report_path).expect("crash report parses")
}

#[test]
fn sync_wal_lsm_recovers_with_zero_acknowledged_loss() {
    let dir = tmp("wal");
    let report = run_crash(&dir, &["--store", "lsm", "--kill-at-frac", "0.5"]);
    let r = report
        .recovery
        .expect("crash report has a recovery section");
    assert_eq!(
        r.loss_window, 0,
        "sync-WAL store lost acknowledged writes: {r:?}"
    );
    assert_eq!(r.kill_at_op, 300);
    assert!(r.acked_ops > 0, "child acknowledged nothing");
    assert!(r.recovery_us > 0);
    assert!(r.replayed_wal_bytes > 0, "WAL recovery replayed no bytes");
    assert!(!r.checkpoint_restored);
    assert_eq!(r.torn_tail, "none");
    assert_eq!(report.workload, "crash");
    assert_eq!(report.operations, r.acked_ops);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_tolerated() {
    // Damaging the newest WAL segment's tail must not prevent recovery;
    // at worst the final acknowledged batch is lost (CRC-bounded
    // replay stops at the tear).
    let dir = tmp("torn");
    let report = run_crash(
        &dir,
        &[
            "--store",
            "lsm",
            "--kill-at-frac",
            "0.5",
            "--torn-tail",
            "garble",
        ],
    );
    let r = report.recovery.expect("recovery section");
    assert_eq!(r.torn_tail, "garble");
    assert!(
        r.loss_window <= 1,
        "a garbled tail can cost at most the final unsynced record, lost {}",
        r.loss_window
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_restore_recovers_prefix_up_to_checkpoint() {
    let dir = tmp("ckpt");
    let report = run_crash(
        &dir,
        &[
            "--store",
            "lsm",
            "--kill-at-frac",
            "0.8",
            "--checkpoint-at-frac",
            "0.4",
        ],
    );
    let r = report.recovery.expect("recovery section");
    assert!(r.checkpoint_restored);
    // Recovering from the checkpoint alone abandons the WAL suffix:
    // the loss window is real and must be reported, not hidden.
    assert!(
        r.loss_window > 0,
        "checkpoint-only recovery cannot cover post-checkpoint writes"
    );
    assert!(r.loss_window < r.acked_ops);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_sync_wal_recovers_with_zero_loss() {
    let dir = tmp("sharded");
    let report = run_crash(
        &dir,
        &[
            "--store",
            "lsm",
            "--kill-at-frac",
            "0.5",
            "--shards",
            "4",
            "--batch-size",
            "16",
        ],
    );
    let r = report.recovery.expect("recovery section");
    assert_eq!(r.loss_window, 0, "sharded sync-WAL lost writes: {r:?}");
    assert_eq!(report.meta.shards, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn btree_without_checkpoint_is_rejected() {
    let dir = tmp("btree-reject");
    let out = gadget()
        .args([
            "crash",
            "--store",
            "btree",
            "--kill-at-frac",
            "0.5",
            "--ops",
            "600",
            "--dir",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn gadget");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("checkpoint-at-frac"),
        "unhelpful error: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
