//! Random distributions and arrival processes used by Gadget's generators.
//!
//! The event generator (paper §5.1) lets users configure the key
//! distribution, value-size distribution, and arrival-rate process of the
//! input stream. This crate provides:
//!
//! * [`KeyDistribution`] with the same family of built-in generators as
//!   YCSB — uniform, zipfian, scrambled-zipfian, hotspot, sequential,
//!   exponential, latest — plus empirical CDFs ([`key::Ecdf`]).
//! * [`ArrivalProcess`] implementations — Poisson (exponential
//!   inter-arrivals), constant rate, and bursty on/off.
//! * [`ValueSizeDistribution`] — constant, uniform, and log-normal sizes.
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible bit-for-bit.

pub mod arrival;
pub mod key;
pub mod value;

pub use arrival::{ArrivalProcess, BurstyArrivals, ConstantArrivals, PoissonArrivals};
pub use key::{
    seeded_rng, ConstantKey, Ecdf, ExponentialKeys, HotspotKeys, KeyDistribution, LatestKeys,
    ScrambledZipfian, SequentialKeys, UniformKeys, ZipfianKeys,
};
pub use value::{ConstantSize, LogNormalSize, UniformSize, ValueSizeDistribution};

use serde::{Deserialize, Serialize};

/// Serializable description of a key distribution, used in config files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum KeyDistributionConfig {
    /// Uniform over `[0, n)`.
    Uniform {
        /// Number of distinct keys.
        n: u64,
    },
    /// Zipfian over `[0, n)` with the given skew parameter.
    Zipfian {
        /// Number of distinct keys.
        n: u64,
        /// Skew `theta` (YCSB default 0.99).
        theta: f64,
    },
    /// Zipfian popularity with hashed (scattered) key identities.
    ScrambledZipfian {
        /// Number of distinct keys.
        n: u64,
        /// Skew `theta`.
        theta: f64,
    },
    /// A hot set receiving a fixed fraction of accesses.
    Hotspot {
        /// Number of distinct keys.
        n: u64,
        /// Fraction of the keyspace that is hot.
        hot_set_fraction: f64,
        /// Fraction of operations that hit the hot set.
        hot_op_fraction: f64,
    },
    /// Keys issued in round-robin order `0, 1, …, n-1, 0, …`.
    Sequential {
        /// Number of distinct keys.
        n: u64,
    },
    /// Exponentially distributed keys (YCSB `exponential`).
    Exponential {
        /// Number of distinct keys.
        n: u64,
        /// Fraction of the keyspace covered by `percentile` of accesses.
        frac: f64,
        /// Percentile of accesses falling in the first `frac` of keys.
        percentile: f64,
    },
    /// Skewed towards the most recently inserted key (YCSB `latest`).
    Latest {
        /// Initial number of keys.
        n: u64,
        /// Skew `theta`.
        theta: f64,
    },
    /// Always the same key.
    Constant {
        /// The key.
        key: u64,
    },
    /// An empirical distribution from `(key, weight)` pairs — the paper's
    /// user-provided ECDF source (§5.1).
    Empirical {
        /// Keys and their relative weights (need not be normalized).
        weights: Vec<(u64, f64)>,
    },
}

impl KeyDistributionConfig {
    /// Instantiates the configured distribution.
    pub fn build(&self) -> Box<dyn KeyDistribution> {
        match *self {
            KeyDistributionConfig::Uniform { n } => Box::new(UniformKeys::new(n)),
            KeyDistributionConfig::Zipfian { n, theta } => Box::new(ZipfianKeys::new(n, theta)),
            KeyDistributionConfig::ScrambledZipfian { n, theta } => {
                Box::new(ScrambledZipfian::new(n, theta))
            }
            KeyDistributionConfig::Hotspot {
                n,
                hot_set_fraction,
                hot_op_fraction,
            } => Box::new(HotspotKeys::new(n, hot_set_fraction, hot_op_fraction)),
            KeyDistributionConfig::Sequential { n } => Box::new(SequentialKeys::new(n)),
            KeyDistributionConfig::Exponential {
                n,
                frac,
                percentile,
            } => Box::new(ExponentialKeys::new(n, frac, percentile)),
            KeyDistributionConfig::Latest { n, theta } => Box::new(LatestKeys::new(n, theta)),
            KeyDistributionConfig::Constant { key } => Box::new(ConstantKey::new(key)),
            KeyDistributionConfig::Empirical { ref weights } => Box::new(
                Ecdf::from_weights(weights)
                    .expect("empirical distribution needs at least one positive weight"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_config_builds_and_samples_support() {
        let cfg = KeyDistributionConfig::Empirical {
            weights: vec![(7, 3.0), (42, 1.0)],
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: KeyDistributionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        let mut d = cfg.build();
        let mut rng = seeded_rng(3);
        for _ in 0..50 {
            let k = d.next_key(&mut rng);
            assert!(k == 7 || k == 42);
        }
    }

    #[test]
    fn config_round_trips_through_json() {
        let cfg = KeyDistributionConfig::Zipfian {
            n: 100,
            theta: 0.99,
        };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: KeyDistributionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn every_config_builds_and_stays_in_range() {
        let configs = [
            KeyDistributionConfig::Uniform { n: 10 },
            KeyDistributionConfig::Zipfian { n: 10, theta: 0.9 },
            KeyDistributionConfig::ScrambledZipfian { n: 10, theta: 0.9 },
            KeyDistributionConfig::Hotspot {
                n: 10,
                hot_set_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            KeyDistributionConfig::Sequential { n: 10 },
            KeyDistributionConfig::Exponential {
                n: 10,
                frac: 0.8571,
                percentile: 95.0,
            },
            KeyDistributionConfig::Latest { n: 10, theta: 0.9 },
            KeyDistributionConfig::Constant { key: 3 },
        ];
        let mut rng = seeded_rng(7);
        for cfg in configs {
            let mut d = cfg.build();
            let k = d.next_key(&mut rng);
            assert!(k < 10, "{cfg:?} produced out-of-range key {k}");
        }
    }
}
