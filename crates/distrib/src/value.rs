//! Value-size distributions.
//!
//! The event generator lets users configure the distribution of event value
//! sizes (paper §5.1; in the paper's example the value size is constant at
//! 10 bytes).

use rand::rngs::StdRng;
use rand::Rng;

/// A source of value sizes, in bytes.
pub trait ValueSizeDistribution: Send {
    /// Draws the next value size.
    fn next_size(&mut self, rng: &mut StdRng) -> u32;

    /// Mean size, used for capacity planning in reports.
    fn mean(&self) -> f64;
}

/// Every value has the same size.
#[derive(Debug, Clone)]
pub struct ConstantSize {
    size: u32,
}

impl ConstantSize {
    /// Creates a constant size distribution.
    pub fn new(size: u32) -> Self {
        ConstantSize { size }
    }
}

impl ValueSizeDistribution for ConstantSize {
    fn next_size(&mut self, _rng: &mut StdRng) -> u32 {
        self.size
    }

    fn mean(&self) -> f64 {
        self.size as f64
    }
}

/// Sizes uniformly distributed over `[min, max]`.
#[derive(Debug, Clone)]
pub struct UniformSize {
    min: u32,
    max: u32,
}

impl UniformSize {
    /// Creates a uniform size distribution over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: u32, max: u32) -> Self {
        assert!(min <= max, "min must not exceed max");
        UniformSize { min, max }
    }
}

impl ValueSizeDistribution for UniformSize {
    fn next_size(&mut self, rng: &mut StdRng) -> u32 {
        rng.gen_range(self.min..=self.max)
    }

    fn mean(&self) -> f64 {
        (self.min as f64 + self.max as f64) / 2.0
    }
}

/// Log-normally distributed sizes, clamped to `[1, cap]`.
///
/// Real KV workloads show heavy-tailed value sizes (e.g. the Facebook
/// RocksDB study); a log-normal is the customary model.
#[derive(Debug, Clone)]
pub struct LogNormalSize {
    mu: f64,
    sigma: f64,
    cap: u32,
}

impl LogNormalSize {
    /// Creates a log-normal size distribution with median `median` bytes,
    /// shape `sigma`, clamped to at most `cap` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `median` is zero, `sigma` is negative, or `cap` is zero.
    pub fn new(median: u32, sigma: f64, cap: u32) -> Self {
        assert!(median > 0 && cap > 0, "sizes must be positive");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormalSize {
            mu: (median as f64).ln(),
            sigma,
            cap,
        }
    }

    /// Draws a standard normal variate via the Box–Muller transform.
    fn std_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl ValueSizeDistribution for LogNormalSize {
    fn next_size(&mut self, rng: &mut StdRng) -> u32 {
        let z = Self::std_normal(rng);
        let v = (self.mu + self.sigma * z).exp();
        (v.round() as u64).clamp(1, self.cap as u64) as u32
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::seeded_rng;

    #[test]
    fn constant_is_constant() {
        let mut d = ConstantSize::new(10);
        let mut rng = seeded_rng(1);
        for _ in 0..5 {
            assert_eq!(d.next_size(&mut rng), 10);
        }
        assert_eq!(d.mean(), 10.0);
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut d = UniformSize::new(8, 64);
        let mut rng = seeded_rng(2);
        for _ in 0..10_000 {
            let s = d.next_size(&mut rng);
            assert!((8..=64).contains(&s));
        }
        assert_eq!(d.mean(), 36.0);
    }

    #[test]
    fn lognormal_median_approximately_correct() {
        let mut d = LogNormalSize::new(100, 0.5, 10_000);
        let mut rng = seeded_rng(3);
        let mut samples: Vec<u32> = (0..10_001).map(|_| d.next_size(&mut rng)).collect();
        samples.sort_unstable();
        let median = samples[5_000];
        assert!(
            (80..=120).contains(&median),
            "median {median} far from configured 100"
        );
        assert!(*samples.last().unwrap() <= 10_000);
        assert!(*samples.first().unwrap() >= 1);
    }
}
