//! Key distributions.
//!
//! These mirror the request distributions available in YCSB (uniform,
//! zipfian, hotspot, sequential, exponential, latest) so that Gadget can
//! both drive its own event generator and reproduce YCSB workloads for the
//! paper's comparison experiments (§4). [`Ecdf`] additionally supports
//! user-provided empirical distributions (paper §5.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a deterministic RNG for the given seed.
///
/// All Gadget components derive their randomness from seeded [`StdRng`]s so
/// that every experiment is reproducible.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A source of event or request keys.
///
/// Implementations are stateful: `latest` depends on the number of inserted
/// keys, `sequential` cycles, and so on. Keys are dense integers in
/// `[0, n)`; callers map them to application identifiers.
pub trait KeyDistribution: Send {
    /// Draws the next key.
    fn next_key(&mut self, rng: &mut StdRng) -> u64;

    /// Informs the distribution that the keyspace has grown to `n` keys.
    ///
    /// Only `latest`-style distributions care; the default implementation
    /// ignores the notification.
    fn record_insert(&mut self, _n: u64) {}

    /// The current number of distinct keys this distribution can produce.
    fn keyspace(&self) -> u64;
}

/// Uniformly distributed keys over `[0, n)`.
#[derive(Debug, Clone)]
pub struct UniformKeys {
    n: u64,
}

impl UniformKeys {
    /// Creates a uniform distribution over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        UniformKeys { n }
    }
}

impl KeyDistribution for UniformKeys {
    fn next_key(&mut self, rng: &mut StdRng) -> u64 {
        rng.gen_range(0..self.n)
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// Zipfian-distributed keys over `[0, n)` using Gray's rejection-free
/// inversion method, as in YCSB's `ZipfianGenerator`.
///
/// Key `0` is the most popular, key `1` the second most popular, and so on.
#[derive(Debug, Clone)]
pub struct ZipfianKeys {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl ZipfianKeys {
    /// YCSB's default skew constant.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a zipfian distribution over `[0, n)` with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = zeta(n, theta);
        let zeta2theta = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        ZipfianKeys {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    /// Grows the keyspace to `n` keys, extending the zeta sum incrementally.
    fn grow(&mut self, n: u64) {
        if n <= self.n {
            return;
        }
        for i in self.n..n {
            self.zetan += 1.0 / ((i + 1) as f64).powf(self.theta);
        }
        self.n = n;
        self.eta =
            (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2theta / self.zetan);
    }
}

/// Computes the generalized harmonic number `H_{n,theta}`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 0..n {
        sum += 1.0 / ((i + 1) as f64).powf(theta);
    }
    sum
}

impl KeyDistribution for ZipfianKeys {
    fn next_key(&mut self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }

    fn record_insert(&mut self, n: u64) {
        self.grow(n);
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// Zipfian popularity with identities scattered across the keyspace by a
/// 64-bit mix hash (YCSB's `ScrambledZipfianGenerator`).
///
/// The *popularity* of ranks is zipfian but the popular keys are spread
/// uniformly over `[0, n)` rather than clustered at zero.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: ZipfianKeys,
    n: u64,
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian distribution over `[0, n)`.
    pub fn new(n: u64, theta: f64) -> Self {
        ScrambledZipfian {
            inner: ZipfianKeys::new(n, theta),
            n,
        }
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KeyDistribution for ScrambledZipfian {
    fn next_key(&mut self, rng: &mut StdRng) -> u64 {
        let rank = self.inner.next_key(rng);
        mix64(rank) % self.n
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// A hot set of keys receiving a disproportionate share of accesses
/// (YCSB's `HotspotIntegerGenerator`).
#[derive(Debug, Clone)]
pub struct HotspotKeys {
    n: u64,
    hot_keys: u64,
    hot_op_fraction: f64,
}

impl HotspotKeys {
    /// Creates a hotspot distribution: `hot_set_fraction` of the keyspace
    /// receives `hot_op_fraction` of the operations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or either fraction lies outside `[0, 1]`.
    pub fn new(n: u64, hot_set_fraction: f64, hot_op_fraction: f64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        assert!((0.0..=1.0).contains(&hot_set_fraction));
        assert!((0.0..=1.0).contains(&hot_op_fraction));
        let hot_keys = ((n as f64 * hot_set_fraction) as u64).max(1);
        HotspotKeys {
            n,
            hot_keys,
            hot_op_fraction,
        }
    }
}

impl KeyDistribution for HotspotKeys {
    fn next_key(&mut self, rng: &mut StdRng) -> u64 {
        if rng.gen::<f64>() < self.hot_op_fraction {
            rng.gen_range(0..self.hot_keys)
        } else if self.hot_keys < self.n {
            rng.gen_range(self.hot_keys..self.n)
        } else {
            rng.gen_range(0..self.n)
        }
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// Keys issued in strict round-robin order `0, 1, …, n-1, 0, 1, …`.
#[derive(Debug, Clone)]
pub struct SequentialKeys {
    n: u64,
    next: u64,
}

impl SequentialKeys {
    /// Creates a sequential distribution over `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        SequentialKeys { n, next: 0 }
    }
}

impl KeyDistribution for SequentialKeys {
    fn next_key(&mut self, _rng: &mut StdRng) -> u64 {
        let k = self.next;
        self.next = (self.next + 1) % self.n;
        k
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// Exponentially distributed keys (YCSB's `ExponentialGenerator`).
///
/// Parameterized like YCSB: `percentile` percent of accesses fall within the
/// first `frac` fraction of the keyspace.
#[derive(Debug, Clone)]
pub struct ExponentialKeys {
    n: u64,
    gamma: f64,
}

impl ExponentialKeys {
    /// Creates an exponential distribution over `[0, n)`.
    ///
    /// YCSB's defaults are `frac = 0.8571` and `percentile = 95`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, `frac` is not in `(0, 1]`, or `percentile` is
    /// not in `(0, 100)`.
    pub fn new(n: u64, frac: f64, percentile: f64) -> Self {
        assert!(n > 0, "keyspace must be non-empty");
        assert!(frac > 0.0 && frac <= 1.0);
        assert!(percentile > 0.0 && percentile < 100.0);
        let gamma = -(1.0 - percentile / 100.0).ln() / (n as f64 * frac);
        ExponentialKeys { n, gamma }
    }
}

impl KeyDistribution for ExponentialKeys {
    fn next_key(&mut self, rng: &mut StdRng) -> u64 {
        loop {
            let u: f64 = rng.gen();
            let k = (-u.ln() / self.gamma) as u64;
            if k < self.n {
                return k;
            }
        }
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// Keys skewed towards the most recently inserted one (YCSB's
/// `SkewedLatestGenerator`).
///
/// The distribution draws a zipfian *age* and subtracts it from the newest
/// key, so key `n-1` is the most popular. Calling
/// [`record_insert`](KeyDistribution::record_insert) shifts the hot spot to
/// the new maximum.
#[derive(Debug, Clone)]
pub struct LatestKeys {
    inner: ZipfianKeys,
    n: u64,
}

impl LatestKeys {
    /// Creates a latest distribution with an initial keyspace of `n` keys.
    pub fn new(n: u64, theta: f64) -> Self {
        LatestKeys {
            inner: ZipfianKeys::new(n, theta),
            n,
        }
    }
}

impl KeyDistribution for LatestKeys {
    fn next_key(&mut self, rng: &mut StdRng) -> u64 {
        let age = self.inner.next_key(rng);
        self.n - 1 - age.min(self.n - 1)
    }

    fn record_insert(&mut self, n: u64) {
        if n > self.n {
            self.n = n;
            self.inner.grow(n);
        }
    }

    fn keyspace(&self) -> u64 {
        self.n
    }
}

/// Always returns the same key.
#[derive(Debug, Clone)]
pub struct ConstantKey {
    key: u64,
}

impl ConstantKey {
    /// Creates a constant distribution.
    pub fn new(key: u64) -> Self {
        ConstantKey { key }
    }
}

impl KeyDistribution for ConstantKey {
    fn next_key(&mut self, _rng: &mut StdRng) -> u64 {
        self.key
    }

    fn keyspace(&self) -> u64 {
        1
    }
}

/// An empirical cumulative distribution function over keys.
///
/// Built from observed `(key, weight)` pairs — for instance the key
/// frequencies of a recorded production stream — and sampled by inverse
/// transform. This backs the paper's "the event generator can also work
/// with ECDFs provided by the user" feature (§5.1).
#[derive(Debug, Clone)]
pub struct Ecdf {
    keys: Vec<u64>,
    cumulative: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from `(key, weight)` pairs.
    ///
    /// Weights need not be normalized. Pairs with non-positive weight are
    /// ignored. Returns `None` if no pair has positive weight.
    pub fn from_weights(pairs: &[(u64, f64)]) -> Option<Self> {
        let total: f64 = pairs.iter().map(|(_, w)| w.max(0.0)).sum();
        if total <= 0.0 {
            return None;
        }
        let mut keys = Vec::with_capacity(pairs.len());
        let mut cumulative = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for &(k, w) in pairs {
            if w <= 0.0 {
                continue;
            }
            acc += w / total;
            keys.push(k);
            cumulative.push(acc);
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Some(Ecdf { keys, cumulative })
    }

    /// Builds an ECDF from a raw sequence of observed keys.
    ///
    /// Returns `None` if the sample is empty.
    pub fn from_samples(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut counts = std::collections::HashMap::new();
        for &k in samples {
            *counts.entry(k).or_insert(0.0f64) += 1.0;
        }
        let mut pairs: Vec<(u64, f64)> = counts.into_iter().collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        Ecdf::from_weights(&pairs)
    }
}

impl KeyDistribution for Ecdf {
    fn next_key(&mut self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cumulative.partition_point(|&c| c < u);
        self.keys[idx.min(self.keys.len() - 1)]
    }

    fn keyspace(&self) -> u64 {
        self.keys.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(d: &mut dyn KeyDistribution, draws: usize, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = seeded_rng(seed);
        let mut h = vec![0u64; n];
        for _ in 0..draws {
            h[d.next_key(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_covers_keyspace_evenly() {
        let mut d = UniformKeys::new(10);
        let h = histogram(&mut d, 100_000, 10, 1);
        for &c in &h {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "bucket count {c}");
        }
    }

    #[test]
    fn zipfian_rank_zero_is_most_popular() {
        let mut d = ZipfianKeys::new(1_000, 0.99);
        let h = histogram(&mut d, 100_000, 1_000, 2);
        assert!(h[0] > h[1]);
        assert!(h[1] > h[10]);
        assert!(h[0] as f64 > 0.05 * 100_000.0);
    }

    #[test]
    fn zipfian_grow_extends_range() {
        let mut d = ZipfianKeys::new(10, 0.9);
        d.record_insert(100);
        assert_eq!(d.keyspace(), 100);
        let mut rng = seeded_rng(3);
        let mut saw_big = false;
        for _ in 0..10_000 {
            if d.next_key(&mut rng) >= 10 {
                saw_big = true;
                break;
            }
        }
        assert!(saw_big, "grown zipfian never produced a new key");
    }

    #[test]
    fn scrambled_zipfian_spreads_popularity() {
        let mut d = ScrambledZipfian::new(1_000, 0.99);
        let h = histogram(&mut d, 100_000, 1_000, 4);
        // The most popular key should not be key 0 in general (scattered).
        let argmax = h.iter().enumerate().max_by_key(|(_, c)| **c).unwrap().0;
        assert_eq!(argmax as u64, mix64(0) % 1_000);
    }

    #[test]
    fn hotspot_respects_op_fraction() {
        let mut d = HotspotKeys::new(1_000, 0.1, 0.9);
        let h = histogram(&mut d, 100_000, 1_000, 5);
        let hot: u64 = h[..100].iter().sum();
        assert!((hot as f64 / 100_000.0 - 0.9).abs() < 0.02);
    }

    #[test]
    fn sequential_cycles_in_order() {
        let mut d = SequentialKeys::new(3);
        let mut rng = seeded_rng(6);
        let seq: Vec<u64> = (0..7).map(|_| d.next_key(&mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn exponential_concentrates_low_keys() {
        let mut d = ExponentialKeys::new(1_000, 0.8571, 95.0);
        let h = histogram(&mut d, 100_000, 1_000, 7);
        let low: u64 = h[..858].iter().sum();
        assert!(low as f64 / 100_000.0 > 0.9);
    }

    #[test]
    fn latest_prefers_newest_key() {
        let mut d = LatestKeys::new(100, 0.99);
        let h = histogram(&mut d, 50_000, 100, 8);
        assert!(h[99] > h[50]);
        d.record_insert(200);
        let h = histogram(&mut d, 50_000, 200, 9);
        assert!(h[199] > h[100]);
    }

    #[test]
    fn ecdf_matches_weights() {
        let mut d = Ecdf::from_weights(&[(5, 3.0), (9, 1.0)]).unwrap();
        let mut rng = seeded_rng(10);
        let mut five = 0;
        for _ in 0..10_000 {
            if d.next_key(&mut rng) == 5 {
                five += 1;
            }
        }
        assert!((five as f64 / 10_000.0 - 0.75).abs() < 0.03);
    }

    #[test]
    fn ecdf_from_samples_reproduces_support() {
        let samples = vec![1, 1, 1, 2, 3, 3];
        let mut d = Ecdf::from_samples(&samples).unwrap();
        let mut rng = seeded_rng(11);
        for _ in 0..100 {
            let k = d.next_key(&mut rng);
            assert!([1, 2, 3].contains(&k));
        }
        assert!(Ecdf::from_samples(&[]).is_none());
        assert!(Ecdf::from_weights(&[(1, 0.0)]).is_none());
    }

    #[test]
    fn distributions_are_deterministic_per_seed() {
        let mut a = ZipfianKeys::new(500, 0.99);
        let mut b = ZipfianKeys::new(500, 0.99);
        let mut ra = seeded_rng(42);
        let mut rb = seeded_rng(42);
        for _ in 0..1_000 {
            assert_eq!(a.next_key(&mut ra), b.next_key(&mut rb));
        }
    }
}
