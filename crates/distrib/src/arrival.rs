//! Arrival processes: how event timestamps advance.
//!
//! Gadget assigns 64-bit event-time timestamps to generated events
//! (paper §5.1). The arrival process determines the inter-arrival gaps. In
//! the paper's running example, "event timestamps follow a Poisson process
//! (exponential)".

use rand::rngs::StdRng;
use rand::Rng;

use gadget_types::Timestamp;

/// A process producing inter-arrival times, in milliseconds of event time.
pub trait ArrivalProcess: Send {
    /// Draws the gap between the previous event and the next one.
    fn next_gap(&mut self, rng: &mut StdRng) -> Timestamp;
}

/// A Poisson process: exponentially distributed inter-arrival gaps.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean events per second.
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with the given mean arrival rate
    /// (events per second of event time).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive.
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        PoissonArrivals { rate_per_sec }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut StdRng) -> Timestamp {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_ms = -u.ln() / self.rate_per_sec * 1_000.0;
        gap_ms.round() as Timestamp
    }
}

/// A constant-rate process: every gap is identical.
#[derive(Debug, Clone)]
pub struct ConstantArrivals {
    gap_ms: Timestamp,
}

impl ConstantArrivals {
    /// Creates a constant process with the given gap in milliseconds.
    pub fn new(gap_ms: Timestamp) -> Self {
        ConstantArrivals { gap_ms }
    }

    /// Creates a constant process from an events-per-second rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_sec` is not strictly positive.
    pub fn from_rate(rate_per_sec: f64) -> Self {
        assert!(rate_per_sec > 0.0, "arrival rate must be positive");
        ConstantArrivals {
            gap_ms: (1_000.0 / rate_per_sec).round().max(0.0) as Timestamp,
        }
    }
}

impl ArrivalProcess for ConstantArrivals {
    fn next_gap(&mut self, _rng: &mut StdRng) -> Timestamp {
        self.gap_ms
    }
}

/// A two-state on/off bursty process.
///
/// Alternates between a *burst* phase with high rate and an *idle* phase
/// with low rate; phase lengths are geometric in the number of events. This
/// models diurnal or batch-triggered streams such as cluster schedulers.
#[derive(Debug, Clone)]
pub struct BurstyArrivals {
    burst: PoissonArrivals,
    idle: PoissonArrivals,
    /// Probability of leaving the current phase after each event.
    switch_prob: f64,
    in_burst: bool,
}

impl BurstyArrivals {
    /// Creates a bursty process.
    ///
    /// `burst_rate` and `idle_rate` are events/second in the respective
    /// phases; `switch_prob` is the per-event probability of toggling
    /// phases.
    ///
    /// # Panics
    ///
    /// Panics if either rate is non-positive or `switch_prob` is outside
    /// `[0, 1]`.
    pub fn new(burst_rate: f64, idle_rate: f64, switch_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&switch_prob));
        BurstyArrivals {
            burst: PoissonArrivals::new(burst_rate),
            idle: PoissonArrivals::new(idle_rate),
            switch_prob,
            in_burst: true,
        }
    }
}

impl ArrivalProcess for BurstyArrivals {
    fn next_gap(&mut self, rng: &mut StdRng) -> Timestamp {
        if rng.gen::<f64>() < self.switch_prob {
            self.in_burst = !self.in_burst;
        }
        if self.in_burst {
            self.burst.next_gap(rng)
        } else {
            self.idle.next_gap(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::seeded_rng;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut p = PoissonArrivals::new(100.0); // 100 ev/s => mean gap 10ms.
        let mut rng = seeded_rng(1);
        let total: u64 = (0..100_000).map(|_| p.next_gap(&mut rng)).sum();
        let mean = total as f64 / 100_000.0;
        assert!((mean - 10.0).abs() < 0.5, "mean gap {mean}");
    }

    #[test]
    fn constant_gap_is_constant() {
        let mut c = ConstantArrivals::from_rate(50.0);
        let mut rng = seeded_rng(2);
        for _ in 0..10 {
            assert_eq!(c.next_gap(&mut rng), 20);
        }
    }

    #[test]
    fn bursty_mixes_two_rates() {
        let mut b = BurstyArrivals::new(1_000.0, 1.0, 0.01);
        let mut rng = seeded_rng(3);
        let gaps: Vec<u64> = (0..50_000).map(|_| b.next_gap(&mut rng)).collect();
        let small = gaps.iter().filter(|&&g| g < 10).count();
        let large = gaps.iter().filter(|&&g| g > 100).count();
        assert!(small > 1_000, "no burst phase observed");
        assert!(large > 1_000, "no idle phase observed");
    }
}
