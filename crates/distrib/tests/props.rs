//! Property-based tests for the distribution generators.

use proptest::prelude::*;

use gadget_distrib::{
    seeded_rng, ArrivalProcess, ConstantArrivals, Ecdf, ExponentialKeys, HotspotKeys,
    KeyDistribution, LatestKeys, PoissonArrivals, ScrambledZipfian, SequentialKeys, UniformKeys,
    ZipfianKeys,
};

proptest! {
    /// Every distribution stays within its keyspace for arbitrary sizes,
    /// skews, and seeds.
    #[test]
    fn all_key_distributions_stay_in_range(
        n in 1u64..5_000,
        theta in 0.01f64..0.999,
        seed in any::<u64>(),
    ) {
        let mut rng = seeded_rng(seed);
        let mut dists: Vec<Box<dyn KeyDistribution>> = vec![
            Box::new(UniformKeys::new(n)),
            Box::new(ZipfianKeys::new(n, theta)),
            Box::new(ScrambledZipfian::new(n, theta)),
            Box::new(HotspotKeys::new(n, 0.2, 0.8)),
            Box::new(SequentialKeys::new(n)),
            Box::new(ExponentialKeys::new(n, 0.8571, 95.0)),
            Box::new(LatestKeys::new(n, theta)),
        ];
        for d in &mut dists {
            for _ in 0..64 {
                let k = d.next_key(&mut rng);
                prop_assert!(k < n, "{k} >= {n}");
            }
            prop_assert!(d.keyspace() >= n);
        }
    }

    /// Growing the keyspace keeps `latest` within the new bound and keeps
    /// producing the newest key most often.
    #[test]
    fn latest_tracks_inserts(n in 2u64..500, grow_to in 501u64..2_000, seed in any::<u64>()) {
        let mut d = LatestKeys::new(n, 0.99);
        d.record_insert(grow_to);
        let mut rng = seeded_rng(seed);
        let mut newest_hits = 0;
        for _ in 0..200 {
            let k = d.next_key(&mut rng);
            prop_assert!(k < grow_to);
            if k == grow_to - 1 {
                newest_hits += 1;
            }
        }
        prop_assert!(newest_hits > 0, "newest key never drawn");
    }

    /// Arrival processes produce non-negative gaps and Poisson's mean is
    /// within 3x of its configured rate (loose statistical bound).
    #[test]
    fn arrival_gaps_are_sane(rate in 1.0f64..10_000.0, seed in any::<u64>()) {
        let mut rng = seeded_rng(seed);
        let mut poisson = PoissonArrivals::new(rate);
        let total: u64 = (0..2_000).map(|_| poisson.next_gap(&mut rng)).sum();
        let mean_ms = total as f64 / 2_000.0;
        let expected_ms = 1_000.0 / rate;
        prop_assert!(
            mean_ms < expected_ms * 3.0 + 2.0,
            "mean {mean_ms} vs expected {expected_ms}"
        );
        let mut constant = ConstantArrivals::from_rate(rate);
        let g1 = constant.next_gap(&mut rng);
        let g2 = constant.next_gap(&mut rng);
        prop_assert_eq!(g1, g2);
    }

    /// An ECDF never produces keys outside its support and respects
    /// zero-weight exclusion.
    #[test]
    fn ecdf_stays_on_support(
        pairs in proptest::collection::vec((any::<u64>(), 0.0f64..10.0), 1..40),
        seed in any::<u64>(),
    ) {
        let support: std::collections::HashSet<u64> = pairs
            .iter()
            .filter(|(_, w)| *w > 0.0)
            .map(|(k, _)| *k)
            .collect();
        match Ecdf::from_weights(&pairs) {
            Some(mut d) => {
                let mut rng = seeded_rng(seed);
                for _ in 0..100 {
                    prop_assert!(support.contains(&d.next_key(&mut rng)));
                }
            }
            None => prop_assert!(support.is_empty()),
        }
    }

    /// Sequential cycles exactly.
    #[test]
    fn sequential_is_a_cycle(n in 1u64..200, seed in any::<u64>()) {
        let mut d = SequentialKeys::new(n);
        let mut rng = seeded_rng(seed);
        for round in 0..2 {
            for expect in 0..n {
                prop_assert_eq!(d.next_key(&mut rng), expect, "round {}", round);
            }
        }
    }
}
