//! A YCSB-compatible workload generator.
//!
//! The paper's baseline (§4, §6.2, §6.3) tunes YCSB to approximate
//! streaming state workloads and shows where it falls short. This crate
//! reimplements YCSB's workload model:
//!
//! * `recordcount` keys are assumed preloaded; `operationcount` requests
//!   are drawn with configurable proportions of reads, updates, inserts,
//!   and read-modify-writes;
//! * request distributions: uniform, zipfian (scrambled over the
//!   keyspace), hotspot, sequential, exponential, and latest;
//! * inserts extend the keyspace but — exactly as the paper observes —
//!   newly inserted keys are *not* used by subsequent operations unless
//!   the distribution is `latest`;
//! * there are no deletes (YCSB does not support them), which is why YCSB
//!   working sets never shrink (§4, "Ephemerality").
//!
//! Output is a [`Trace`] in Gadget's native format, so the same analyses
//! and the same replayer run on YCSB and Gadget workloads
//! interchangeably.
//!
//! # Examples
//!
//! ```
//! use gadget_ycsb::{CoreWorkload, YcsbConfig};
//!
//! let trace = YcsbConfig::core(CoreWorkload::A, 1_000, 10_000).generate();
//! assert_eq!(trace.stats().total, 10_000);
//! assert_eq!(trace.stats().deletes, 0); // YCSB has no deletes.
//! ```

use rand::Rng;
use serde::{Deserialize, Serialize};

use gadget_distrib::{seeded_rng, KeyDistributionConfig};
use gadget_types::{StateAccess, StateKey, Trace};

/// YCSB request distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RequestDistribution {
    /// Uniform over the keyspace.
    Uniform,
    /// Zipfian popularity scattered over the keyspace (YCSB default).
    Zipfian,
    /// A hot set takes most operations.
    Hotspot,
    /// Round-robin key order.
    Sequential,
    /// Exponentially decaying popularity.
    Exponential,
    /// Skewed towards recently inserted keys.
    Latest,
}

impl RequestDistribution {
    /// All distributions, for sweep experiments.
    pub const ALL: [RequestDistribution; 6] = [
        RequestDistribution::Uniform,
        RequestDistribution::Zipfian,
        RequestDistribution::Hotspot,
        RequestDistribution::Sequential,
        RequestDistribution::Exponential,
        RequestDistribution::Latest,
    ];

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            RequestDistribution::Uniform => "uniform",
            RequestDistribution::Zipfian => "zipfian",
            RequestDistribution::Hotspot => "hotspot",
            RequestDistribution::Sequential => "sequential",
            RequestDistribution::Exponential => "exponential",
            RequestDistribution::Latest => "latest",
        }
    }

    fn config(self, n: u64) -> KeyDistributionConfig {
        match self {
            RequestDistribution::Uniform => KeyDistributionConfig::Uniform { n },
            RequestDistribution::Zipfian => {
                KeyDistributionConfig::ScrambledZipfian { n, theta: 0.99 }
            }
            RequestDistribution::Hotspot => KeyDistributionConfig::Hotspot {
                n,
                hot_set_fraction: 0.2,
                hot_op_fraction: 0.8,
            },
            RequestDistribution::Sequential => KeyDistributionConfig::Sequential { n },
            RequestDistribution::Exponential => KeyDistributionConfig::Exponential {
                n,
                frac: 0.8571,
                percentile: 95.0,
            },
            RequestDistribution::Latest => KeyDistributionConfig::Latest { n, theta: 0.99 },
        }
    }
}

/// YCSB's built-in core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreWorkload {
    /// 50% reads, 50% updates, zipfian ("update heavy").
    A,
    /// 95% reads, 5% updates, zipfian ("read mostly").
    B,
    /// 100% reads, zipfian ("read only").
    C,
    /// 95% reads, 5% inserts, latest ("read latest").
    D,
    /// 50% reads, 50% read-modify-writes, zipfian.
    F,
}

/// Operation mix and distribution of a YCSB run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YcsbConfig {
    /// Number of preloaded records.
    pub record_count: u64,
    /// Number of operations to generate.
    pub operation_count: u64,
    /// Proportion of reads, in `[0, 1]`.
    pub read_proportion: f64,
    /// Proportion of updates (blind writes).
    pub update_proportion: f64,
    /// Proportion of inserts (new keys).
    pub insert_proportion: f64,
    /// Proportion of read-modify-writes.
    pub rmw_proportion: f64,
    /// Request distribution.
    pub distribution: RequestDistribution,
    /// Value size in bytes (YCSB default: 10 fields × 100 bytes; the paper
    /// uses 256-byte values in §6.3).
    pub value_size: u32,
    /// RNG seed.
    pub seed: u64,
}

impl YcsbConfig {
    /// A core-workload preset with the paper's §6.3 sizing defaults.
    pub fn core(workload: CoreWorkload, record_count: u64, operation_count: u64) -> Self {
        let base = YcsbConfig {
            record_count,
            operation_count,
            read_proportion: 0.0,
            update_proportion: 0.0,
            insert_proportion: 0.0,
            rmw_proportion: 0.0,
            distribution: RequestDistribution::Zipfian,
            value_size: 256,
            seed: 42,
        };
        match workload {
            CoreWorkload::A => YcsbConfig {
                read_proportion: 0.5,
                update_proportion: 0.5,
                ..base
            },
            CoreWorkload::B => YcsbConfig {
                read_proportion: 0.95,
                update_proportion: 0.05,
                ..base
            },
            CoreWorkload::C => YcsbConfig {
                read_proportion: 1.0,
                ..base
            },
            CoreWorkload::D => YcsbConfig {
                read_proportion: 0.95,
                insert_proportion: 0.05,
                distribution: RequestDistribution::Latest,
                ..base
            },
            CoreWorkload::F => YcsbConfig {
                read_proportion: 0.5,
                rmw_proportion: 0.5,
                ..base
            },
        }
    }

    /// Generates the request trace.
    ///
    /// Timestamps are synthetic (one per operation) since YCSB has no
    /// event-time notion. Read-modify-writes expand to a `get` followed by
    /// a `put` on the same key, as YCSB executes them.
    pub fn generate(&self) -> Trace {
        let mut rng = seeded_rng(self.seed);
        let mut dist = self.distribution.config(self.record_count.max(1)).build();
        let mut next_insert_key = self.record_count;
        let mut trace = Trace::new();
        let total = self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion;
        assert!(total > 0.0, "operation proportions must not all be zero");

        for i in 0..self.operation_count {
            let ts = i;
            let r: f64 = rng.gen::<f64>() * total;
            if r < self.read_proportion {
                let k = StateKey::plain(dist.next_key(&mut rng));
                trace.push(StateAccess::get(k, ts));
            } else if r < self.read_proportion + self.update_proportion {
                let k = StateKey::plain(dist.next_key(&mut rng));
                trace.push(StateAccess::put(k, self.value_size, ts));
            } else if r < self.read_proportion + self.update_proportion + self.insert_proportion {
                let k = StateKey::plain(next_insert_key);
                next_insert_key += 1;
                dist.record_insert(next_insert_key);
                trace.push(StateAccess::put(k, self.value_size, ts));
            } else {
                let k = StateKey::plain(dist.next_key(&mut rng));
                trace.push(StateAccess::get(k, ts));
                trace.push(StateAccess::put(k, self.value_size, ts));
            }
        }
        trace.input_events = self.operation_count;
        trace.input_distinct_keys = next_insert_key;
        trace
    }

    /// The keys that must be preloaded before replaying this trace.
    pub fn preload_keys(&self) -> impl Iterator<Item = StateKey> {
        (0..self.record_count).map(StateKey::plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_types::OpType;

    #[test]
    fn workload_a_is_half_reads() {
        let t = YcsbConfig::core(CoreWorkload::A, 1_000, 20_000).generate();
        let s = t.stats();
        assert_eq!(s.total, 20_000);
        assert!((s.ratio(OpType::Get) - 0.5).abs() < 0.02);
        assert!((s.ratio(OpType::Put) - 0.5).abs() < 0.02);
        assert_eq!(s.deletes, 0, "YCSB never deletes");
    }

    #[test]
    fn workload_c_is_read_only() {
        let t = YcsbConfig::core(CoreWorkload::C, 1_000, 5_000).generate();
        assert_eq!(t.stats().gets, 5_000);
    }

    #[test]
    fn workload_f_expands_rmw() {
        let t = YcsbConfig::core(CoreWorkload::F, 1_000, 10_000).generate();
        let s = t.stats();
        // rmw ops add one extra access each: total in (10k, 15k).
        assert!(s.total > 10_000 && s.total < 15_500);
        assert!(s.gets > s.puts, "every rmw get is paired with a put");
        // Consecutive get/put pairs hit the same key for rmw.
        let mut pairs = 0;
        for w in t.accesses.windows(2) {
            if w[0].op == OpType::Get && w[1].op == OpType::Put && w[0].key == w[1].key {
                pairs += 1;
            }
        }
        assert!(pairs as u64 >= s.puts / 2);
    }

    #[test]
    fn workload_d_uses_inserted_keys() {
        let t = YcsbConfig::core(CoreWorkload::D, 1_000, 50_000).generate();
        // With `latest`, reads skew to recently inserted keys: some reads
        // must hit keys beyond the original recordcount.
        let new_key_reads = t
            .iter()
            .filter(|a| a.op == OpType::Get && a.key.group >= 1_000)
            .count();
        assert!(new_key_reads > 0, "latest must read inserted keys");
    }

    #[test]
    fn non_latest_never_touches_inserted_keys() {
        let mut cfg = YcsbConfig::core(CoreWorkload::A, 1_000, 20_000);
        cfg.insert_proportion = 0.1;
        let t = cfg.generate();
        // Reads/updates stay within the preloaded keyspace (the YCSB
        // behaviour the paper § 4 calls out).
        for a in t.iter() {
            if a.key.group >= 1_000 {
                assert_eq!(a.op, OpType::Put, "inserted key used by a non-insert op");
            }
        }
    }

    #[test]
    fn working_set_never_shrinks() {
        let t = YcsbConfig::core(CoreWorkload::A, 200, 20_000).generate();
        let keys: Vec<u128> = t.iter().map(|a| a.key.as_u128()).collect();
        let series = gadget_analysis::working_set_series(&keys, 1_000);
        // Zipfian touches nearly all keys early and never releases them;
        // apart from tail effects the series must not decrease.
        let peak = series.iter().map(|p| p.size).max().unwrap();
        let early_peak_idx = series.iter().position(|p| p.size == peak).unwrap();
        assert!(early_peak_idx < series.len() / 2, "keys must stay active");
    }

    #[test]
    fn deterministic() {
        let a = YcsbConfig::core(CoreWorkload::A, 100, 1_000).generate();
        let b = YcsbConfig::core(CoreWorkload::A, 100, 1_000).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn all_distributions_generate() {
        for dist in RequestDistribution::ALL {
            let cfg = YcsbConfig {
                distribution: dist,
                ..YcsbConfig::core(CoreWorkload::A, 500, 2_000)
            };
            let t = cfg.generate();
            assert_eq!(t.stats().total, 2_000, "{}", dist.name());
        }
    }
}
