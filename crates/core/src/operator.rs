//! The operator abstraction and the catalogue of predefined workloads.

use gadget_types::{Event, StateAccess, Timestamp};

use crate::operators::{
    aggregation::Aggregation,
    join::{ContinuousJoin, IntervalJoin, WindowJoin},
    session::SessionWindow,
    window::SlidingWindow,
};

/// A simulated streaming operator.
///
/// Implementations model operator logic as finite state machines (paper
/// §5.3): for every input event and watermark they emit the state-store
/// requests a real stream processor would issue, without materializing any
/// state values. Adding a new operator means implementing this trait —
/// the Rust analogue of the paper's `assignStateMachines` / `run` /
/// `terminate` extension API (§5.4).
pub trait Operator: Send {
    /// Short workload name used in reports (e.g. `"tumbling-incr"`).
    fn name(&self) -> &'static str;

    /// Processes one data event, appending generated requests to `out`.
    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>);

    /// Reacts to the watermark advancing to `wm`: fires expired windows,
    /// cleans up state, and appends the final get/delete requests to `out`.
    fn on_watermark(&mut self, wm: Timestamp, out: &mut Vec<StateAccess>);

    /// Flushes any state that would fire at end-of-stream.
    fn on_end(&mut self, out: &mut Vec<StateAccess>) {
        self.on_watermark(Timestamp::MAX, out);
    }
}

/// Aggregation mode of a window operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMode {
    /// Distributive/algebraic aggregate (sum, min, average): the window
    /// keeps one fixed-size accumulator, updated with get+put pairs.
    Incremental,
    /// Holistic aggregate (median, rank): the window collects its events
    /// in a bucket, appended to with lazy `merge` requests.
    Holistic,
}

/// Parameters shared by the predefined operators, with the paper's §3.1.2
/// defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatorParams {
    /// Window length in ms (default 5s).
    pub window_length: Timestamp,
    /// Window slide in ms (default 1s).
    pub window_slide: Timestamp,
    /// Session gap in ms (default 2min).
    pub session_gap: Timestamp,
    /// Interval join lower bound in ms (default 2min).
    pub interval_lower: Timestamp,
    /// Interval join upper bound in ms (default 3min).
    pub interval_upper: Timestamp,
    /// Size in bytes of an incremental accumulator value.
    pub accumulator_size: u32,
    /// Allowed lateness in ms (windows retain fired panes this long).
    pub allowed_lateness: Timestamp,
}

impl Default for OperatorParams {
    fn default() -> Self {
        OperatorParams {
            window_length: 5_000,
            window_slide: 1_000,
            session_gap: 2 * 60_000,
            interval_lower: 2 * 60_000,
            interval_upper: 3 * 60_000,
            accumulator_size: 8,
            allowed_lateness: 0,
        }
    }
}

/// The eleven predefined workloads (paper §6.1 / Figure 13): six windows,
/// four joins, and the rolling aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Tumbling window, incremental aggregate.
    TumblingIncr,
    /// Tumbling window, holistic aggregate.
    TumblingHol,
    /// Sliding window, incremental aggregate.
    SlidingIncr,
    /// Sliding window, holistic aggregate.
    SlidingHol,
    /// Session window, incremental aggregate.
    SessionIncr,
    /// Session window, holistic aggregate.
    SessionHol,
    /// Two-input tumbling window join.
    TumblingJoin,
    /// Two-input sliding window join.
    SlidingJoin,
    /// Two-input interval join.
    IntervalJoin,
    /// Two-input continuous join over event validity intervals.
    ContinuousJoin,
    /// Per-key rolling aggregation.
    Aggregation,
}

impl OperatorKind {
    /// All predefined workloads in report order.
    pub const ALL: [OperatorKind; 11] = [
        OperatorKind::TumblingIncr,
        OperatorKind::TumblingHol,
        OperatorKind::SlidingIncr,
        OperatorKind::SlidingHol,
        OperatorKind::SessionIncr,
        OperatorKind::SessionHol,
        OperatorKind::TumblingJoin,
        OperatorKind::SlidingJoin,
        OperatorKind::IntervalJoin,
        OperatorKind::ContinuousJoin,
        OperatorKind::Aggregation,
    ];

    /// The nine single-table operators of the characterization study
    /// (Table 1), excluding the window joins.
    pub const TABLE1: [OperatorKind; 9] = [
        OperatorKind::TumblingIncr,
        OperatorKind::SlidingIncr,
        OperatorKind::SessionIncr,
        OperatorKind::TumblingHol,
        OperatorKind::SlidingHol,
        OperatorKind::SessionHol,
        OperatorKind::ContinuousJoin,
        OperatorKind::IntervalJoin,
        OperatorKind::Aggregation,
    ];

    /// Stable workload name.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::TumblingIncr => "tumbling-incr",
            OperatorKind::TumblingHol => "tumbling-hol",
            OperatorKind::SlidingIncr => "sliding-incr",
            OperatorKind::SlidingHol => "sliding-hol",
            OperatorKind::SessionIncr => "session-incr",
            OperatorKind::SessionHol => "session-hol",
            OperatorKind::TumblingJoin => "tumbling-join",
            OperatorKind::SlidingJoin => "sliding-join",
            OperatorKind::IntervalJoin => "interval-join",
            OperatorKind::ContinuousJoin => "continuous-join",
            OperatorKind::Aggregation => "aggregation",
        }
    }

    /// Parses a workload name (the inverse of [`OperatorKind::name`]).
    pub fn parse(name: &str) -> Option<Self> {
        OperatorKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether the workload consumes two input streams.
    pub fn is_two_input(self) -> bool {
        matches!(
            self,
            OperatorKind::TumblingJoin
                | OperatorKind::SlidingJoin
                | OperatorKind::IntervalJoin
                | OperatorKind::ContinuousJoin
        )
    }

    /// Instantiates the operator's state machine.
    pub fn build(self, params: &OperatorParams) -> Box<dyn Operator> {
        match self {
            OperatorKind::TumblingIncr => Box::new(
                SlidingWindow::new(
                    "tumbling-incr",
                    params.window_length,
                    params.window_length,
                    WindowMode::Incremental,
                    params.accumulator_size,
                )
                .with_allowed_lateness(params.allowed_lateness),
            ),
            OperatorKind::TumblingHol => Box::new(
                SlidingWindow::new(
                    "tumbling-hol",
                    params.window_length,
                    params.window_length,
                    WindowMode::Holistic,
                    params.accumulator_size,
                )
                .with_allowed_lateness(params.allowed_lateness),
            ),
            OperatorKind::SlidingIncr => Box::new(
                SlidingWindow::new(
                    "sliding-incr",
                    params.window_length,
                    params.window_slide,
                    WindowMode::Incremental,
                    params.accumulator_size,
                )
                .with_allowed_lateness(params.allowed_lateness),
            ),
            OperatorKind::SlidingHol => Box::new(
                SlidingWindow::new(
                    "sliding-hol",
                    params.window_length,
                    params.window_slide,
                    WindowMode::Holistic,
                    params.accumulator_size,
                )
                .with_allowed_lateness(params.allowed_lateness),
            ),
            OperatorKind::SessionIncr => Box::new(SessionWindow::new(
                "session-incr",
                params.session_gap,
                WindowMode::Incremental,
                params.accumulator_size,
            )),
            OperatorKind::SessionHol => Box::new(SessionWindow::new(
                "session-hol",
                params.session_gap,
                WindowMode::Holistic,
                params.accumulator_size,
            )),
            OperatorKind::TumblingJoin => Box::new(WindowJoin::new(
                "tumbling-join",
                params.window_length,
                params.window_length,
            )),
            OperatorKind::SlidingJoin => Box::new(WindowJoin::new(
                "sliding-join",
                params.window_length,
                params.window_slide,
            )),
            OperatorKind::IntervalJoin => Box::new(IntervalJoin::new(
                params.interval_lower,
                params.interval_upper,
            )),
            OperatorKind::ContinuousJoin => Box::new(ContinuousJoin::new()),
            OperatorKind::Aggregation => Box::new(Aggregation::new(params.accumulator_size)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in OperatorKind::ALL {
            assert_eq!(OperatorKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(OperatorKind::parse("bogus"), None);
    }

    #[test]
    fn there_are_eleven_workloads() {
        assert_eq!(OperatorKind::ALL.len(), 11);
        let joins = OperatorKind::ALL
            .iter()
            .filter(|k| k.is_two_input())
            .count();
        assert_eq!(joins, 4);
    }

    #[test]
    fn every_kind_builds() {
        let params = OperatorParams::default();
        for kind in OperatorKind::ALL {
            let op = kind.build(&params);
            assert_eq!(op.name(), kind.name());
        }
    }
}
