//! Built-in operator state machines.
//!
//! Each submodule documents the exact request sequence its operator emits
//! per event and per watermark, and which Flink mechanism it models.

pub mod aggregation;
pub mod join;
pub mod session;
pub mod window;
