//! Session window state machine with window merging.
//!
//! Sessions group per-key activity separated by a gap of inactivity. A
//! session window's identity (its state-key namespace) is its **start
//! timestamp**, following Flink's merging-window semantics:
//!
//! * an event that opens a session: `get` (existence probe, a miss) +
//!   `put`/`merge` of the new pane;
//! * an event inside or extending a session: `get` + `put` (incremental)
//!   or a lone `merge` (holistic) on the session's pane;
//! * an out-of-order event that *bridges* sessions (or precedes the
//!   current start) triggers window merging: the absorbed pane is read
//!   (`get`), its contents are migrated with a `merge` onto the surviving
//!   pane, and the old pane is `delete`d;
//! * when the watermark passes `end`: final `get` (FGet) + `delete`.

use std::collections::{BTreeMap, HashMap};

use gadget_types::{Event, StateAccess, StateKey, Timestamp};

use crate::operator::{Operator, WindowMode};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Session {
    start: Timestamp,
    /// Exclusive end: last event timestamp + gap.
    end: Timestamp,
}

/// Event-time session window with merging.
pub struct SessionWindow {
    name: &'static str,
    gap: Timestamp,
    mode: WindowMode,
    accumulator_size: u32,
    /// Active sessions per key, sorted by start.
    sessions: HashMap<u64, Vec<Session>>,
    /// vIndex: candidate expiry time → (key, session start). Entries may be
    /// stale after extensions; they are validated at fire time.
    vindex: BTreeMap<Timestamp, Vec<(u64, Timestamp)>>,
}

impl SessionWindow {
    /// Creates a session window with the given inactivity gap.
    ///
    /// # Panics
    ///
    /// Panics if `gap` is zero.
    pub fn new(
        name: &'static str,
        gap: Timestamp,
        mode: WindowMode,
        accumulator_size: u32,
    ) -> Self {
        assert!(gap > 0, "session gap must be positive");
        SessionWindow {
            name,
            gap,
            mode,
            accumulator_size,
            sessions: HashMap::new(),
            vindex: BTreeMap::new(),
        }
    }

    /// Number of active sessions (diagnostics).
    pub fn active_sessions(&self) -> usize {
        self.sessions.values().map(|v| v.len()).sum()
    }
}

/// Emits the event's own contribution to a session pane.
fn emit_update(
    mode: WindowMode,
    accumulator_size: u32,
    key: StateKey,
    event: &Event,
    out: &mut Vec<StateAccess>,
) {
    match mode {
        WindowMode::Incremental => {
            out.push(StateAccess::get(key, event.timestamp));
            out.push(StateAccess::put(key, accumulator_size, event.timestamp));
        }
        WindowMode::Holistic => {
            out.push(StateAccess::merge(key, event.value_size, event.timestamp));
        }
    }
}

impl Operator for SessionWindow {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>) {
        let (ts, gap) = (event.timestamp, self.gap);
        let proto = Session {
            start: ts,
            end: ts + gap,
        };
        let sessions = self.sessions.entry(event.key).or_default();

        // Find all sessions the proto window overlaps: [start - gap, end).
        let overlapping: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| proto.start <= s.end && s.start <= proto.end)
            .map(|(i, _)| i)
            .collect();

        if overlapping.is_empty() {
            // New session: existence probe (miss) + initial pane write.
            let key = StateKey::windowed(event.key, proto.start);
            out.push(StateAccess::get(key, ts));
            match self.mode {
                WindowMode::Incremental => {
                    out.push(StateAccess::put(key, self.accumulator_size, ts))
                }
                WindowMode::Holistic => out.push(StateAccess::merge(key, event.value_size, ts)),
            }
            sessions.push(proto);
            self.vindex
                .entry(proto.end)
                .or_default()
                .push((event.key, proto.start));
            return;
        }

        // Merge the proto window with every overlapping session. The
        // surviving window's start is the minimum start.
        let mut merged = proto;
        for &i in &overlapping {
            merged.start = merged.start.min(sessions[i].start);
            merged.end = merged.end.max(sessions[i].end);
        }
        let surviving = StateKey::windowed(event.key, merged.start);

        // Migrate panes whose identity dies in the merge.
        for &i in &overlapping {
            let old = sessions[i];
            if old.start != merged.start {
                let old_key = StateKey::windowed(event.key, old.start);
                out.push(StateAccess::get(old_key, ts));
                out.push(StateAccess::merge(surviving, self.accumulator_size, ts));
                out.push(StateAccess::delete(old_key, ts));
            }
        }
        // The event's own contribution.
        emit_update(self.mode, self.accumulator_size, surviving, event, out);

        // Rewrite the session list: drop absorbed sessions, keep merged.
        let mut kept: Vec<Session> = sessions
            .iter()
            .enumerate()
            .filter(|(i, _)| !overlapping.contains(i))
            .map(|(_, s)| *s)
            .collect();
        kept.push(merged);
        kept.sort_by_key(|s| s.start);
        *sessions = kept;
        self.vindex
            .entry(merged.end)
            .or_default()
            .push((event.key, merged.start));
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Vec<StateAccess>) {
        let due: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&t, _)| t).collect();
        for t in due {
            let candidates = self.vindex.remove(&t).expect("listed above");
            for (key, start) in candidates {
                let Some(sessions) = self.sessions.get_mut(&key) else {
                    continue;
                };
                // Validate: the session must still exist with this identity
                // and must actually have expired (it may have been extended
                // or absorbed since this vIndex entry was written).
                let Some(idx) = sessions.iter().position(|s| s.start == start) else {
                    continue;
                };
                if sessions[idx].end > wm {
                    continue; // Extended; a fresher vIndex entry exists.
                }
                sessions.remove(idx);
                if sessions.is_empty() {
                    self.sessions.remove(&key);
                }
                let pane = StateKey::windowed(key, start);
                out.push(StateAccess::get(pane, wm)); // FGet.
                out.push(StateAccess::delete(pane, wm));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_types::OpType;

    fn incr() -> SessionWindow {
        SessionWindow::new("s", 1_000, WindowMode::Incremental, 8)
    }

    #[test]
    fn single_session_lifecycle() {
        let mut s = incr();
        let mut out = Vec::new();
        s.on_event(&Event::new(1, 100, 10), &mut out);
        s.on_event(&Event::new(1, 500, 10), &mut out); // Same session.
        assert_eq!(s.active_sessions(), 1);
        s.on_watermark(1_600, &mut out); // end = 500 + 1000 = 1500 <= wm.
        assert_eq!(s.active_sessions(), 0);
        let kinds: Vec<OpType> = out.iter().map(|a| a.op).collect();
        assert_eq!(
            kinds,
            vec![
                OpType::Get,
                OpType::Put, // open
                OpType::Get,
                OpType::Put, // in-session update
                OpType::Get,
                OpType::Delete, // fire
            ]
        );
        // Identity is the session start.
        assert!(out.iter().all(|a| a.key == StateKey::windowed(1, 100)));
    }

    #[test]
    fn gap_separates_sessions() {
        let mut s = incr();
        let mut out = Vec::new();
        s.on_event(&Event::new(1, 100, 10), &mut out);
        s.on_event(&Event::new(1, 5_000, 10), &mut out); // Past the gap.
        assert_eq!(s.active_sessions(), 2);
        let panes: std::collections::HashSet<u64> = out.iter().map(|a| a.key.ns).collect();
        assert_eq!(panes, [100u64, 5_000].into_iter().collect());
    }

    #[test]
    fn extension_keeps_identity_and_defers_firing() {
        let mut s = incr();
        let mut out = Vec::new();
        s.on_event(&Event::new(1, 100, 10), &mut out); // end 1100.
        s.on_event(&Event::new(1, 900, 10), &mut out); // extend to 1900.
        out.clear();
        s.on_watermark(1_200, &mut out); // Stale vIndex entry must not fire.
        assert!(out.is_empty());
        assert_eq!(s.active_sessions(), 1);
        s.on_watermark(2_000, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn bridging_event_merges_two_sessions() {
        let mut s = incr();
        let mut out = Vec::new();
        s.on_event(&Event::new(1, 1_000, 10), &mut out); // A: [1000, 2000).
        s.on_event(&Event::new(1, 2_600, 10), &mut out); // B: [2600, 3600).
        assert_eq!(s.active_sessions(), 2);
        out.clear();
        // Window [1950, 2950) touches both A and B: they merge into one
        // session with A's identity.
        s.on_event(&Event::new(1, 1_950, 10), &mut out);
        assert_eq!(s.active_sessions(), 1);
        // B's pane is migrated onto A's: get(B), merge(A), delete(B).
        let kinds: Vec<OpType> = out.iter().map(|a| a.op).collect();
        assert_eq!(
            kinds,
            vec![
                OpType::Get,
                OpType::Merge,
                OpType::Delete,
                OpType::Get,
                OpType::Put
            ]
        );
        assert_eq!(out[0].key, StateKey::windowed(1, 2_600)); // get(B)
        assert_eq!(out[1].key, StateKey::windowed(1, 1_000)); // merge(A)
        assert_eq!(out[2].key, StateKey::windowed(1, 2_600)); // delete(B)
    }

    #[test]
    fn out_of_order_event_before_start_changes_identity() {
        let mut s = incr();
        let mut out = Vec::new();
        s.on_event(&Event::new(1, 1_000, 10), &mut out);
        out.clear();
        s.on_event(&Event::new(1, 500, 10), &mut out); // Earlier start.
                                                       // Old pane (ns 1000) migrates to new identity (ns 500).
        assert!(out
            .iter()
            .any(|a| a.op == OpType::Delete && a.key == StateKey::windowed(1, 1_000)));
        assert!(out
            .iter()
            .any(|a| a.op == OpType::Merge && a.key == StateKey::windowed(1, 500)));
        assert_eq!(s.active_sessions(), 1);
    }

    #[test]
    fn holistic_mode_merges_events() {
        let mut s = SessionWindow::new("s", 1_000, WindowMode::Holistic, 8);
        let mut out = Vec::new();
        s.on_event(&Event::new(1, 100, 77), &mut out);
        s.on_event(&Event::new(1, 200, 77), &mut out);
        let merges = out.iter().filter(|a| a.op == OpType::Merge).count();
        assert_eq!(merges, 2);
        assert_eq!(out.last().unwrap().value_size, 77);
    }

    #[test]
    fn keys_are_isolated() {
        let mut s = incr();
        let mut out = Vec::new();
        s.on_event(&Event::new(1, 100, 10), &mut out);
        s.on_event(&Event::new(2, 150, 10), &mut out);
        assert_eq!(s.active_sessions(), 2);
        s.on_watermark(10_000, &mut out);
        assert_eq!(s.active_sessions(), 0);
    }
}
