//! Two-input join state machines: window join, interval join, and
//! continuous join.
//!
//! Join state keys encode the input side in the top bit of the key group,
//! so the left and right buffers of the same event key are distinct state
//! objects (as they are in Flink's two-input operators).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use gadget_types::time::{sliding_window_starts, window_start};
use gadget_types::{Event, StateAccess, StateKey, StreamId, Timestamp};

use crate::operator::Operator;

/// Packs an event key and input side into a state key group.
fn side_group(key: u64, side: StreamId) -> u64 {
    (key & !(1 << 63)) | ((side.0 as u64 & 1) << 63)
}

/// The opposite input side.
fn other(side: StreamId) -> StreamId {
    if side == StreamId::LEFT {
        StreamId::RIGHT
    } else {
        StreamId::LEFT
    }
}

/// Granularity at which interval-join cleanup timers are coalesced.
///
/// Flink coalesces per-record cleanup into timer buckets; we model one
/// delete per (key, 5s bucket), which yields the paper's observation that
/// interval-join deletes are a fraction of its puts (Table 1).
const CLEANUP_BUCKET_MS: Timestamp = 5_000;

/// Window join: both inputs are bucketed per (key, window) and joined when
/// the window fires.
///
/// Per event: one `merge` per assigned window pane (the event is appended
/// to its side's bucket). On firing: `get` + `delete` on every pane of the
/// window (both sides).
pub struct WindowJoin {
    name: &'static str,
    length: Timestamp,
    slide: Timestamp,
    vindex: BTreeMap<Timestamp, BTreeSet<StateKey>>,
}

impl WindowJoin {
    /// Creates a window join (tumbling when `slide == length`).
    ///
    /// # Panics
    ///
    /// Panics if `slide` is zero or larger than `length`.
    pub fn new(name: &'static str, length: Timestamp, slide: Timestamp) -> Self {
        assert!(slide > 0 && slide <= length, "invalid window geometry");
        WindowJoin {
            name,
            length,
            slide,
            vindex: BTreeMap::new(),
        }
    }
}

impl Operator for WindowJoin {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>) {
        let group = side_group(event.key, event.stream);
        for w in sliding_window_starts(event.timestamp, self.length, self.slide) {
            let key = StateKey::windowed(group, w);
            out.push(StateAccess::merge(key, event.value_size, event.timestamp));
            self.vindex.entry(w + self.length).or_default().insert(key);
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Vec<StateAccess>) {
        let due: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&t, _)| t).collect();
        for t in due {
            for key in self.vindex.remove(&t).expect("listed above") {
                out.push(StateAccess::get(key, wm));
                out.push(StateAccess::delete(key, wm));
            }
        }
    }
}

/// Interval join: an event matches other-side events within a relative
/// time interval `[ts - lower, ts + upper]`.
///
/// Per event: a `put` buffering the event in its side's map state (state
/// key namespace = event timestamp, as in Flink's per-timestamp map
/// entries) and one `get` probing the other side's buffer — the most
/// recently buffered matching entry, or a miss if none. Buffered state is
/// purged by coalesced cleanup timers (one `delete` per key and 5s
/// bucket) once no future event can match it.
pub struct IntervalJoin {
    lower: Timestamp,
    upper: Timestamp,
    /// Buffered entry timestamps per side-group (driver metadata only).
    buffers: HashMap<u64, BTreeMap<Timestamp, u32>>,
    /// Cleanup timers: due time → (group, bucket start).
    vindex: BTreeMap<Timestamp, HashSet<(u64, Timestamp)>>,
}

impl IntervalJoin {
    /// Creates an interval join with relative bounds `[-lower, +upper]`.
    pub fn new(lower: Timestamp, upper: Timestamp) -> Self {
        IntervalJoin {
            lower,
            upper,
            buffers: HashMap::new(),
            vindex: BTreeMap::new(),
        }
    }

    fn retention(&self) -> Timestamp {
        self.lower.max(self.upper)
    }
}

impl Operator for IntervalJoin {
    fn name(&self) -> &'static str {
        "interval-join"
    }

    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>) {
        let ts = event.timestamp;
        let own = side_group(event.key, event.stream);
        let opposite = side_group(event.key, other(event.stream));

        // Buffer the event in its side's map state.
        out.push(StateAccess::put(
            StateKey::windowed(own, ts),
            event.value_size,
            ts,
        ));
        *self.buffers.entry(own).or_default().entry(ts).or_insert(0) += 1;

        // Probe the other side: most recent buffered entry within bounds.
        let lo = ts.saturating_sub(self.lower);
        let hi = ts.saturating_add(self.upper);
        let probe_ns = self
            .buffers
            .get(&opposite)
            .and_then(|b| b.range(lo..=hi).next_back().map(|(&t, _)| t))
            .unwrap_or(ts); // Miss: probe at the event's own time.
        out.push(StateAccess::get(StateKey::windowed(opposite, probe_ns), ts));

        // Register the coalesced cleanup timer.
        let bucket = window_start(ts, CLEANUP_BUCKET_MS, 0);
        self.vindex
            .entry(ts + self.retention())
            .or_default()
            .insert((own, bucket));
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Vec<StateAccess>) {
        let due: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&t, _)| t).collect();
        let mut cleaned: HashSet<(u64, Timestamp)> = HashSet::new();
        for t in due {
            for (group, bucket) in self.vindex.remove(&t).expect("listed above") {
                if !cleaned.insert((group, bucket)) {
                    continue;
                }
                out.push(StateAccess::delete(StateKey::windowed(group, bucket), wm));
                // Drop the buffered metadata covered by this bucket.
                if let Some(buffer) = self.buffers.get_mut(&group) {
                    let next = bucket + CLEANUP_BUCKET_MS;
                    let expired: Vec<Timestamp> =
                        buffer.range(bucket..next).map(|(&k, _)| k).collect();
                    for k in expired {
                        buffer.remove(&k);
                    }
                    if buffer.is_empty() {
                        self.buffers.remove(&group);
                    }
                }
            }
        }
    }
}

/// Continuous join: the stream encodes each event's validity interval, as
/// in the paper's shared-taxi-ride example (§2.2).
///
/// Per event: a `get` probing the other side's per-key state, then a `put`
/// (first event for the key on this side) or a `merge` (appending to the
/// existing match list). A key-closing event (e.g. drop-off, job finished)
/// expires the validity: both sides' state for the key is `delete`d.
pub struct ContinuousJoin {
    live: HashSet<u64>,
}

impl ContinuousJoin {
    /// Creates a continuous join.
    pub fn new() -> Self {
        ContinuousJoin {
            live: HashSet::new(),
        }
    }
}

impl Default for ContinuousJoin {
    fn default() -> Self {
        ContinuousJoin::new()
    }
}

impl Operator for ContinuousJoin {
    fn name(&self) -> &'static str {
        "continuous-join"
    }

    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>) {
        let ts = event.timestamp;
        let own = side_group(event.key, event.stream);
        let opposite = side_group(event.key, other(event.stream));

        // Probe the other side for matches within the validity interval.
        out.push(StateAccess::get(StateKey::plain(opposite), ts));

        if event.closes_key {
            // Validity expired: purge both sides of the key's state.
            out.push(StateAccess::delete(StateKey::plain(own), ts));
            out.push(StateAccess::delete(StateKey::plain(opposite), ts));
            self.live.remove(&own);
            self.live.remove(&opposite);
            return;
        }

        if self.live.insert(own) {
            out.push(StateAccess::put(StateKey::plain(own), event.value_size, ts));
        } else {
            out.push(StateAccess::merge(
                StateKey::plain(own),
                event.value_size,
                ts,
            ));
        }
    }

    fn on_watermark(&mut self, _wm: Timestamp, _out: &mut Vec<StateAccess>) {
        // Expiration is driven by the events' own validity bounds.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_types::OpType;

    #[test]
    fn side_groups_are_distinct() {
        assert_ne!(
            side_group(5, StreamId::LEFT),
            side_group(5, StreamId::RIGHT)
        );
        assert_eq!(other(StreamId::LEFT), StreamId::RIGHT);
        assert_eq!(other(StreamId::RIGHT), StreamId::LEFT);
    }

    #[test]
    fn window_join_buffers_both_sides_and_fires_once() {
        let mut j = WindowJoin::new("tumbling-join", 5_000, 5_000);
        let mut out = Vec::new();
        j.on_event(&Event::new(1, 1_000, 10), &mut out);
        j.on_event(
            &Event::new(1, 2_000, 20).on_stream(StreamId::RIGHT),
            &mut out,
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|a| a.op == OpType::Merge));
        assert_ne!(out[0].key, out[1].key); // Different sides.
        out.clear();
        j.on_watermark(5_000, &mut out);
        // Two panes × (FGet + delete).
        assert_eq!(out.len(), 4);
        assert_eq!(out.iter().filter(|a| a.op == OpType::Delete).count(), 2);
    }

    #[test]
    fn interval_join_probes_matching_entries() {
        let mut j = IntervalJoin::new(2_000, 3_000);
        let mut out = Vec::new();
        j.on_event(&Event::new(1, 10_000, 10), &mut out); // Left buffer @10s.
        out.clear();
        j.on_event(
            &Event::new(1, 11_000, 10).on_stream(StreamId::RIGHT),
            &mut out,
        );
        // put(right buffer) + get(left entry at 10s: within [9s, 14s]).
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].op, OpType::Put);
        assert_eq!(out[1].op, OpType::Get);
        assert_eq!(out[1].key.ns, 10_000);
        assert_eq!(out[1].key.group, side_group(1, StreamId::LEFT));
    }

    #[test]
    fn interval_join_out_of_range_probe_misses() {
        let mut j = IntervalJoin::new(2_000, 3_000);
        let mut out = Vec::new();
        j.on_event(&Event::new(1, 10_000, 10), &mut out);
        out.clear();
        // 20s is outside [10s-2s, 10s+3s] of the buffered left event.
        j.on_event(
            &Event::new(1, 20_000, 10).on_stream(StreamId::RIGHT),
            &mut out,
        );
        assert_eq!(out[1].key.ns, 20_000); // Miss probes at own time.
    }

    #[test]
    fn interval_join_cleanup_is_coalesced() {
        let mut j = IntervalJoin::new(2_000, 3_000);
        let mut out = Vec::new();
        // Five events in one 5s bucket.
        for i in 0..5u64 {
            j.on_event(&Event::new(1, 10_000 + i * 100, 10), &mut out);
        }
        out.clear();
        j.on_watermark(100_000, &mut out);
        let deletes = out.iter().filter(|a| a.op == OpType::Delete).count();
        assert_eq!(deletes, 1, "cleanup must coalesce to one delete per bucket");
        // Buffered metadata is gone: a new probe misses.
        out.clear();
        j.on_event(
            &Event::new(1, 101_000, 10).on_stream(StreamId::RIGHT),
            &mut out,
        );
        assert_eq!(out[1].key.ns, 101_000);
    }

    #[test]
    fn continuous_join_put_then_merge_then_delete() {
        let mut j = ContinuousJoin::new();
        let mut out = Vec::new();
        j.on_event(&Event::new(1, 100, 10), &mut out); // get + put.
        j.on_event(&Event::new(1, 200, 10), &mut out); // get + merge.
        j.on_event(&Event::new(1, 300, 10).closing(), &mut out); // get + 2 deletes.
        let kinds: Vec<OpType> = out.iter().map(|a| a.op).collect();
        assert_eq!(
            kinds,
            vec![
                OpType::Get,
                OpType::Put,
                OpType::Get,
                OpType::Merge,
                OpType::Get,
                OpType::Delete,
                OpType::Delete,
            ]
        );
    }

    #[test]
    fn continuous_join_reopens_after_close() {
        let mut j = ContinuousJoin::new();
        let mut out = Vec::new();
        j.on_event(&Event::new(1, 100, 10), &mut out);
        j.on_event(&Event::new(1, 200, 10).closing(), &mut out);
        out.clear();
        j.on_event(&Event::new(1, 300, 10), &mut out); // New ride, same key.
        assert_eq!(out[1].op, OpType::Put, "fresh key state starts with a put");
    }

    #[test]
    fn continuous_join_sides_probe_each_other() {
        let mut j = ContinuousJoin::new();
        let mut out = Vec::new();
        j.on_event(&Event::new(1, 100, 10), &mut out);
        out.clear();
        j.on_event(&Event::new(1, 150, 10).on_stream(StreamId::RIGHT), &mut out);
        // The right event's get probes the LEFT state.
        assert_eq!(out[0].key.group, side_group(1, StreamId::LEFT));
    }
}
