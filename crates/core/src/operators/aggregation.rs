//! Continuous (rolling) per-key aggregation.
//!
//! The only operator that preserves the input stream's key distribution
//! (paper Table 2): every event triggers exactly one `get` and one `put`
//! on the state key derived directly from the event key. State grows with
//! the keyspace and is never deleted.

use gadget_types::{Event, StateAccess, StateKey, Timestamp};

use crate::operator::Operator;

/// Per-key rolling aggregate (sum, count, min, max, …).
pub struct Aggregation {
    accumulator_size: u32,
}

impl Aggregation {
    /// Creates a rolling aggregation with the given accumulator size.
    pub fn new(accumulator_size: u32) -> Self {
        Aggregation { accumulator_size }
    }
}

impl Operator for Aggregation {
    fn name(&self) -> &'static str {
        "aggregation"
    }

    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>) {
        let key = StateKey::plain(event.key);
        out.push(StateAccess::get(key, event.timestamp));
        out.push(StateAccess::put(
            key,
            self.accumulator_size,
            event.timestamp,
        ));
    }

    fn on_watermark(&mut self, _wm: Timestamp, _out: &mut Vec<StateAccess>) {
        // Rolling aggregates hold state forever: nothing fires or expires.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_types::OpType;

    #[test]
    fn one_get_one_put_per_event() {
        let mut a = Aggregation::new(8);
        let mut out = Vec::new();
        a.on_event(&Event::new(42, 10, 100), &mut out);
        a.on_event(&Event::new(42, 20, 100), &mut out);
        a.on_event(&Event::new(7, 30, 100), &mut out);
        assert_eq!(out.len(), 6);
        assert_eq!(out[0].op, OpType::Get);
        assert_eq!(out[1].op, OpType::Put);
        assert_eq!(out[0].key, StateKey::plain(42));
        assert_eq!(out[4].key, StateKey::plain(7));
    }

    #[test]
    fn watermarks_are_ignored() {
        let mut a = Aggregation::new(8);
        let mut out = Vec::new();
        a.on_watermark(1_000_000, &mut out);
        a.on_end(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn key_distribution_is_preserved() {
        // The sequence of accessed key groups equals the event key sequence.
        let mut a = Aggregation::new(8);
        let mut out = Vec::new();
        let keys = [5u64, 1, 5, 9, 1];
        for (i, &k) in keys.iter().enumerate() {
            a.on_event(&Event::new(k, i as u64, 10), &mut out);
        }
        let accessed: Vec<u64> = out.iter().step_by(2).map(|acc| acc.key.group).collect();
        assert_eq!(accessed, keys);
    }
}
