//! Tumbling and sliding window state machines (W-ID strategy).
//!
//! Windows are mapped to state with the W-ID strategy (paper §3.2.2,
//! following Li et al.): each window pane is one KV pair keyed by
//! `(event key, window start)`.
//!
//! Per event, for each of the `length/slide` windows it belongs to:
//!
//! * **incremental**: `get` the accumulator, `put` it back updated —
//!   the paper's `PutState`/`GetState` machine (Fig. 9);
//! * **holistic**: a single lazy `merge` appending the event to the
//!   window bucket.
//!
//! When the watermark passes a window's end: a final `get` (FGet) to
//! retrieve the contents, then a `delete` to purge the pane.
//!
//! With a non-zero **allowed lateness** the lifecycle follows Flink's
//! late-firing model: the pane fires (FGet) when the watermark passes its
//! end but is *kept* until `end + allowed_lateness`; every late event
//! that still lands in the pane triggers an immediate late firing
//! (update + FGet); the `delete` happens only when the lateness horizon
//! passes.

use std::collections::{BTreeMap, BTreeSet};

use gadget_types::time::sliding_window_starts;
use gadget_types::{Event, StateAccess, StateKey, Timestamp};

use crate::operator::{Operator, WindowMode};

/// Tumbling or sliding event-time window (tumbling = `slide == length`).
pub struct SlidingWindow {
    name: &'static str,
    length: Timestamp,
    slide: Timestamp,
    mode: WindowMode,
    accumulator_size: u32,
    /// Allowed lateness: panes are purged `allowed_lateness` after firing.
    allowed_lateness: Timestamp,
    /// vIndex: window end time → panes firing at that time.
    vindex: BTreeMap<Timestamp, BTreeSet<StateKey>>,
    /// Panes that have fired but are retained for late events, keyed by
    /// purge time (`end + allowed_lateness`). Unused when lateness is 0.
    retained: BTreeMap<Timestamp, BTreeSet<StateKey>>,
    /// Fired-but-not-purged panes, for late-firing detection.
    fired: BTreeSet<StateKey>,
}

impl SlidingWindow {
    /// Creates a window operator.
    ///
    /// # Panics
    ///
    /// Panics if `slide` is zero or larger than `length`.
    pub fn new(
        name: &'static str,
        length: Timestamp,
        slide: Timestamp,
        mode: WindowMode,
        accumulator_size: u32,
    ) -> Self {
        assert!(slide > 0 && slide <= length, "invalid window geometry");
        SlidingWindow {
            name,
            length,
            slide,
            mode,
            accumulator_size,
            allowed_lateness: 0,
            vindex: BTreeMap::new(),
            retained: BTreeMap::new(),
            fired: BTreeSet::new(),
        }
    }

    /// Enables Flink-style allowed lateness: fired panes are retained for
    /// `lateness` ms and late events trigger late firings.
    pub fn with_allowed_lateness(mut self, lateness: Timestamp) -> Self {
        self.allowed_lateness = lateness;
        self
    }

    /// Number of currently active panes, including fired-but-retained ones
    /// (diagnostics).
    pub fn active_panes(&self) -> usize {
        self.vindex.values().map(|s| s.len()).sum::<usize>()
            + self.retained.values().map(|s| s.len()).sum::<usize>()
    }
}

impl Operator for SlidingWindow {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_event(&mut self, event: &Event, out: &mut Vec<StateAccess>) {
        for w in sliding_window_starts(event.timestamp, self.length, self.slide) {
            let key = StateKey::windowed(event.key, w);
            match self.mode {
                WindowMode::Incremental => {
                    out.push(StateAccess::get(key, event.timestamp));
                    out.push(StateAccess::put(
                        key,
                        self.accumulator_size,
                        event.timestamp,
                    ));
                }
                WindowMode::Holistic => {
                    out.push(StateAccess::merge(key, event.value_size, event.timestamp));
                }
            }
            if self.fired.contains(&key) {
                // Late event into a fired pane: Flink fires again per late
                // element (an immediate FGet of the updated contents).
                out.push(StateAccess::get(key, event.timestamp));
            } else {
                self.vindex.entry(w + self.length).or_default().insert(key);
            }
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Vec<StateAccess>) {
        // Fire every pane whose window end has passed.
        let expired: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&end, _)| end).collect();
        for end in expired {
            let keys = self.vindex.remove(&end).expect("key listed above");
            for key in keys {
                out.push(StateAccess::get(key, wm)); // FGet: retrieve contents.
                if self.allowed_lateness == 0 {
                    out.push(StateAccess::delete(key, wm));
                } else {
                    // Retain the pane for late events.
                    self.fired.insert(key);
                    self.retained
                        .entry(end.saturating_add(self.allowed_lateness))
                        .or_default()
                        .insert(key);
                }
            }
        }
        // Purge panes whose lateness horizon has passed.
        let purgeable: Vec<Timestamp> = self.retained.range(..=wm).map(|(&t, _)| t).collect();
        for t in purgeable {
            for key in self.retained.remove(&t).expect("listed above") {
                self.fired.remove(&key);
                out.push(StateAccess::delete(key, wm));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_types::OpType;
    use std::collections::HashSet;

    fn ops(mode: WindowMode, events: &[(u64, Timestamp)], wm: Timestamp) -> Vec<StateAccess> {
        let mut w = SlidingWindow::new("w", 5_000, 5_000, mode, 8);
        let mut out = Vec::new();
        for &(k, ts) in events {
            w.on_event(&Event::new(k, ts, 100), &mut out);
        }
        w.on_watermark(wm, &mut out);
        out
    }

    #[test]
    fn incremental_tumbling_emits_get_put_then_fget_delete() {
        let out = ops(WindowMode::Incremental, &[(1, 1_000), (1, 2_000)], 5_000);
        let kinds: Vec<OpType> = out.iter().map(|a| a.op).collect();
        assert_eq!(
            kinds,
            vec![
                OpType::Get,
                OpType::Put,
                OpType::Get,
                OpType::Put,
                OpType::Get,
                OpType::Delete
            ]
        );
        // All six accesses hit the same pane (key 1, window [0, 5000)).
        assert!(out.iter().all(|a| a.key == StateKey::windowed(1, 0)));
    }

    #[test]
    fn holistic_tumbling_uses_merge() {
        let out = ops(WindowMode::Holistic, &[(1, 1_000), (1, 2_000)], 5_000);
        let kinds: Vec<OpType> = out.iter().map(|a| a.op).collect();
        assert_eq!(
            kinds,
            vec![OpType::Merge, OpType::Merge, OpType::Get, OpType::Delete]
        );
        assert_eq!(out[0].value_size, 100); // Merge carries the event payload.
    }

    #[test]
    fn sliding_assigns_length_over_slide_panes() {
        let mut w = SlidingWindow::new("w", 10_000, 2_000, WindowMode::Incremental, 8);
        let mut out = Vec::new();
        w.on_event(&Event::new(7, 20_000, 50), &mut out);
        // 10s/2s = 5 panes, two ops each.
        assert_eq!(out.len(), 10);
        let panes: HashSet<u64> = out.iter().map(|a| a.key.ns).collect();
        assert_eq!(panes.len(), 5);
    }

    #[test]
    fn watermark_fires_only_expired_windows() {
        let mut w = SlidingWindow::new("w", 5_000, 5_000, WindowMode::Incremental, 8);
        let mut out = Vec::new();
        w.on_event(&Event::new(1, 1_000, 10), &mut out); // Window [0, 5000).
        w.on_event(&Event::new(1, 7_000, 10), &mut out); // Window [5000, 10000).
        out.clear();
        w.on_watermark(5_000, &mut out);
        assert_eq!(out.len(), 2); // Only the first window fired.
        assert_eq!(out[0].key.ns, 0);
        assert_eq!(w.active_panes(), 1);
        out.clear();
        w.on_watermark(20_000, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(w.active_panes(), 0);
    }

    #[test]
    fn distinct_keys_get_distinct_panes() {
        let out = ops(WindowMode::Incremental, &[(1, 1_000), (2, 1_000)], 0);
        let panes: HashSet<u128> = out.iter().map(|a| a.key.as_u128()).collect();
        assert_eq!(panes.len(), 2);
    }

    #[test]
    fn allowed_lateness_defers_purging_and_fires_late() {
        let mut w = SlidingWindow::new("w", 5_000, 5_000, WindowMode::Incremental, 8)
            .with_allowed_lateness(2_000);
        let mut out = Vec::new();
        w.on_event(&Event::new(1, 1_000, 10), &mut out); // Window [0, 5000).
        out.clear();
        // Watermark passes the end: fire (FGet) but do NOT delete yet.
        w.on_watermark(5_500, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].op, OpType::Get);
        assert_eq!(w.active_panes(), 1, "pane must be retained");
        // A late event within the lateness horizon updates the pane and
        // triggers an immediate late firing.
        out.clear();
        w.on_event(&Event::new(1, 4_900, 10), &mut out);
        let kinds: Vec<OpType> = out.iter().map(|a| a.op).collect();
        assert_eq!(kinds, vec![OpType::Get, OpType::Put, OpType::Get]);
        // The purge happens once the lateness horizon passes.
        out.clear();
        w.on_watermark(7_100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].op, OpType::Delete);
        assert_eq!(w.active_panes(), 0);
    }

    #[test]
    fn zero_lateness_behaviour_is_unchanged() {
        // The default path must be byte-identical to the pre-lateness
        // implementation: fire = FGet + immediate delete.
        let out = ops(WindowMode::Incremental, &[(1, 1_000)], 5_000);
        let kinds: Vec<OpType> = out.iter().map(|a| a.op).collect();
        assert_eq!(
            kinds,
            vec![OpType::Get, OpType::Put, OpType::Get, OpType::Delete]
        );
    }

    #[test]
    fn on_end_flushes_everything() {
        let mut w = SlidingWindow::new("w", 5_000, 1_000, WindowMode::Holistic, 8);
        let mut out = Vec::new();
        w.on_event(&Event::new(1, 123_456, 10), &mut out);
        out.clear();
        w.on_end(&mut out);
        assert!(!out.is_empty());
        assert_eq!(w.active_panes(), 0);
    }
}
