//! The event generator and input replayer (paper §5.1).
//!
//! The generator synthesizes event streams with configurable arrival
//! rates, key/value distributions, watermark frequency, and an
//! out-of-order model: a fraction of events is delivered late, delayed by
//! a uniformly distributed amount up to the maximum lateness, while their
//! event timestamps stay untouched. Watermarks are punctuated: one every
//! `watermark_every` delivered events, carrying the maximum event time
//! seen so far.
//!
//! The *input replayer* ([`replay_dataset`]) feeds an existing
//! [`Dataset`]'s events through the same watermarking and lateness
//! machinery, which is how the characterization experiments (§3) run.

use rand::Rng;
use serde::{Deserialize, Serialize};

use gadget_datasets::Dataset;
use gadget_distrib::{
    seeded_rng, ArrivalProcess, ConstantArrivals, ConstantSize, KeyDistributionConfig,
    PoissonArrivals, UniformSize, ValueSizeDistribution,
};
use gadget_types::{Event, StreamElement, StreamId, Timestamp};

/// Arrival process configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ArrivalConfig {
    /// Poisson process with the given mean rate (events/second).
    Poisson {
        /// Mean events per second.
        rate_per_sec: f64,
    },
    /// Fixed inter-arrival gap.
    Constant {
        /// Gap between events in milliseconds.
        gap_ms: Timestamp,
    },
}

impl ArrivalConfig {
    fn build(&self) -> Box<dyn ArrivalProcess> {
        match *self {
            ArrivalConfig::Poisson { rate_per_sec } => Box::new(PoissonArrivals::new(rate_per_sec)),
            ArrivalConfig::Constant { gap_ms } => Box::new(ConstantArrivals::new(gap_ms)),
        }
    }
}

/// Value-size configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ValueSizeConfig {
    /// Every value has the same size.
    Constant {
        /// Size in bytes.
        bytes: u32,
    },
    /// Uniform over `[min, max]`.
    Uniform {
        /// Minimum size in bytes.
        min: u32,
        /// Maximum size in bytes.
        max: u32,
    },
}

impl ValueSizeConfig {
    fn build(&self) -> Box<dyn ValueSizeDistribution> {
        match *self {
            ValueSizeConfig::Constant { bytes } => Box::new(ConstantSize::new(bytes)),
            ValueSizeConfig::Uniform { min, max } => Box::new(UniformSize::new(min, max)),
        }
    }
}

/// Full event-generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of data events to generate.
    pub events: u64,
    /// Arrival process.
    pub arrivals: ArrivalConfig,
    /// Event-key distribution.
    pub keys: KeyDistributionConfig,
    /// Value-size distribution.
    pub value_sizes: ValueSizeConfig,
    /// Punctuated watermark frequency, in events (paper default: 100).
    pub watermark_every: u64,
    /// Fraction of events delivered out of order, in `[0, 1]`.
    pub out_of_order_fraction: f64,
    /// Maximum delivery delay of an out-of-order event, in ms.
    pub max_lateness: Timestamp,
    /// Fraction of events tagged onto the RIGHT stream (for joins); 0
    /// keeps the stream single-input.
    pub right_stream_fraction: f64,
    /// Fraction of events that close their key's validity (drives the
    /// continuous join's deletes; 0 disables closing events).
    #[serde(default)]
    pub closing_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            events: 100_000,
            arrivals: ArrivalConfig::Poisson {
                rate_per_sec: 1_000.0,
            },
            keys: KeyDistributionConfig::Zipfian {
                n: 1_000,
                theta: 0.99,
            },
            value_sizes: ValueSizeConfig::Constant { bytes: 256 },
            watermark_every: 100,
            out_of_order_fraction: 0.0,
            max_lateness: 3_000,
            right_stream_fraction: 0.0,
            closing_fraction: 0.0,
            seed: 42,
        }
    }
}

/// Generates synthetic event streams according to a [`GeneratorConfig`].
pub struct EventGenerator {
    config: GeneratorConfig,
}

impl EventGenerator {
    /// Creates a generator.
    pub fn new(config: GeneratorConfig) -> Self {
        EventGenerator { config }
    }

    /// Produces the full stream: events (possibly out of order) punctuated
    /// with watermarks.
    pub fn generate(&self) -> Vec<StreamElement> {
        let cfg = &self.config;
        let mut rng = seeded_rng(cfg.seed);
        let mut arrivals = cfg.arrivals.build();
        let mut keys = cfg.keys.build();
        let mut sizes = cfg.value_sizes.build();

        // Phase 1: generate events in event-time order with a delivery time.
        let mut timeline: Vec<(Timestamp, Event)> = Vec::with_capacity(cfg.events as usize);
        let mut now: Timestamp = 0;
        for _ in 0..cfg.events {
            now += arrivals.next_gap(&mut rng);
            let mut event = Event::new(keys.next_key(&mut rng), now, sizes.next_size(&mut rng));
            if cfg.right_stream_fraction > 0.0 && rng.gen::<f64>() < cfg.right_stream_fraction {
                event = event.on_stream(StreamId::RIGHT);
            }
            if cfg.closing_fraction > 0.0 && rng.gen::<f64>() < cfg.closing_fraction {
                event = event.closing().with_expiry(now);
            }
            let delivery = if cfg.out_of_order_fraction > 0.0
                && rng.gen::<f64>() < cfg.out_of_order_fraction
            {
                now + rng.gen_range(1..=cfg.max_lateness.max(1))
            } else {
                now
            };
            timeline.push((delivery, event));
        }

        // Phase 2: order by delivery time (stable, so in-order ties keep
        // their generation order).
        timeline.sort_by_key(|(d, _)| *d);

        // Phase 3: interleave punctuated watermarks.
        let mut out = Vec::with_capacity(
            timeline.len() + timeline.len() / cfg.watermark_every.max(1) as usize + 1,
        );
        let mut max_ts = 0;
        for (i, (_, event)) in timeline.into_iter().enumerate() {
            max_ts = max_ts.max(event.timestamp);
            out.push(StreamElement::Event(event));
            if cfg.watermark_every > 0 && (i as u64 + 1).is_multiple_of(cfg.watermark_every) {
                out.push(StreamElement::Watermark(max_ts));
            }
        }
        out
    }
}

/// The input replayer: converts a recorded [`Dataset`] into a stream with
/// punctuated watermarks every `watermark_every` events.
pub fn replay_dataset(dataset: &Dataset, watermark_every: u64) -> Vec<StreamElement> {
    replay_dataset_with_disorder(dataset, watermark_every, 0.0, 0, 0)
}

/// The input replayer with an out-of-order delivery model: a fraction of
/// events is delayed by up to `max_lateness` ms of delivery time while
/// keeping its event timestamp — the same disorder model the synthetic
/// generator uses. `fraction = 0` reduces to in-order replay.
pub fn replay_dataset_with_disorder(
    dataset: &Dataset,
    watermark_every: u64,
    fraction: f64,
    max_lateness: Timestamp,
    seed: u64,
) -> Vec<StreamElement> {
    let mut events: Vec<(Timestamp, Event)> =
        dataset.events.iter().map(|e| (e.timestamp, *e)).collect();
    if fraction > 0.0 && max_lateness > 0 {
        let mut rng = seeded_rng(seed ^ 0x00D3);
        for (delivery, event) in &mut events {
            if rng.gen::<f64>() < fraction {
                *delivery = event.timestamp + rng.gen_range(1..=max_lateness);
            }
        }
        events.sort_by_key(|(d, _)| *d);
    }
    let mut out =
        Vec::with_capacity(events.len() + events.len() / watermark_every.max(1) as usize + 1);
    let mut max_ts = 0;
    for (i, (_, event)) in events.into_iter().enumerate() {
        max_ts = max_ts.max(event.timestamp);
        out.push(StreamElement::Event(event));
        if watermark_every > 0 && (i as u64 + 1).is_multiple_of(watermark_every) {
            out.push(StreamElement::Watermark(max_ts));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_event_count() {
        let g = EventGenerator::new(GeneratorConfig {
            events: 1_000,
            ..GeneratorConfig::default()
        });
        let stream = g.generate();
        let events = stream.iter().filter(|e| !e.is_watermark()).count();
        let wms = stream.iter().filter(|e| e.is_watermark()).count();
        assert_eq!(events, 1_000);
        assert_eq!(wms, 10);
    }

    #[test]
    fn watermarks_carry_max_event_time() {
        let g = EventGenerator::new(GeneratorConfig {
            events: 500,
            out_of_order_fraction: 0.3,
            ..GeneratorConfig::default()
        });
        let mut max_seen = 0;
        for el in g.generate() {
            match el {
                StreamElement::Event(e) => max_seen = max_seen.max(e.timestamp),
                StreamElement::Watermark(w) => assert_eq!(w, max_seen),
            }
        }
    }

    #[test]
    fn out_of_order_fraction_delays_events() {
        let cfg = GeneratorConfig {
            events: 10_000,
            out_of_order_fraction: 0.2,
            max_lateness: 5_000,
            ..GeneratorConfig::default()
        };
        let stream = EventGenerator::new(cfg).generate();
        // Count inversions: events whose timestamp is below the running max.
        let mut max_ts = 0;
        let mut inversions = 0;
        for el in &stream {
            if let StreamElement::Event(e) = el {
                if e.timestamp < max_ts {
                    inversions += 1;
                }
                max_ts = max_ts.max(e.timestamp);
            }
        }
        let frac = inversions as f64 / 10_000.0;
        assert!(frac > 0.05 && frac < 0.35, "inversion fraction {frac}");
    }

    #[test]
    fn zero_ooo_is_fully_ordered() {
        let stream = EventGenerator::new(GeneratorConfig {
            events: 2_000,
            ..GeneratorConfig::default()
        })
        .generate();
        let mut prev = 0;
        for el in stream {
            assert!(el.timestamp() >= prev || el.is_watermark());
            if let StreamElement::Event(e) = el {
                prev = e.timestamp;
            }
        }
    }

    #[test]
    fn right_stream_fraction_tags_events() {
        let stream = EventGenerator::new(GeneratorConfig {
            events: 5_000,
            right_stream_fraction: 0.5,
            ..GeneratorConfig::default()
        })
        .generate();
        let right = stream
            .iter()
            .filter_map(|e| e.as_event())
            .filter(|e| e.stream == StreamId::RIGHT)
            .count();
        assert!((2_000..3_000).contains(&right), "right-side count {right}");
    }

    #[test]
    fn closing_fraction_produces_closing_events() {
        let stream = EventGenerator::new(GeneratorConfig {
            events: 5_000,
            closing_fraction: 0.1,
            ..GeneratorConfig::default()
        })
        .generate();
        let closing = stream
            .iter()
            .filter_map(|e| e.as_event())
            .filter(|e| e.closes_key)
            .count();
        assert!((300..800).contains(&closing), "closing count {closing}");
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = EventGenerator::new(cfg.clone()).generate();
        let b = EventGenerator::new(cfg).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn replayer_preserves_dataset_order() {
        let d = gadget_datasets::borg(gadget_datasets::DatasetSpec::small());
        let stream = replay_dataset(&d, 100);
        let events: Vec<_> = stream.iter().filter_map(|e| e.as_event()).collect();
        assert_eq!(events.len(), d.events.len());
        assert_eq!(*events[0], d.events[0]);
        let wms = stream.iter().filter(|e| e.is_watermark()).count();
        assert_eq!(wms, d.events.len() / 100);
    }

    #[test]
    fn config_serializes() {
        let cfg = GeneratorConfig::default();
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
