//! The Gadget benchmark harness core: event generation, the driver, and
//! the operator state machines that turn input streams into state-access
//! workloads.
//!
//! This crate is the paper's primary contribution (§5). The pipeline is:
//!
//! ```text
//! event generator ──► driver ──► operator state machines ──► state-access
//!  (or input replayer)  (watermarks, lateness)                  stream
//! ```
//!
//! * [`EventGenerator`] synthesizes event streams from configurable
//!   arrival processes, key/value distributions, watermark frequencies,
//!   and out-of-order models — or replays an existing
//!   [`Dataset`](gadget_datasets::Dataset) through the *input replayer*.
//! * [`Operator`] implementations simulate the state-access logic of the
//!   eleven predefined workloads (six windows, four joins, one rolling
//!   aggregation) using Flink's W-ID windowing strategy. Each operator is
//!   a finite state machine: it emits `get/put/merge/delete` requests but
//!   never materializes operator state, keeping the harness lightweight.
//! * [`Driver`] implements the paper's Algorithm 1: it feeds stream
//!   elements to the operator, tracks the watermark, discards events
//!   beyond the allowed lateness, and assembles the resulting
//!   [`Trace`](gadget_types::Trace).
//!
//! # Examples
//!
//! Generate the state-access workload of a 5s incremental tumbling window
//! over a synthetic zipfian stream:
//!
//! ```
//! use gadget_core::{Driver, EventGenerator, GeneratorConfig, OperatorKind, OperatorParams};
//!
//! let stream = EventGenerator::new(GeneratorConfig {
//!     events: 10_000,
//!     ..GeneratorConfig::default()
//! })
//! .generate();
//! let operator = OperatorKind::TumblingIncr.build(&OperatorParams::default());
//! let trace = Driver::new(operator).run(stream.into_iter());
//! assert!(trace.len() > 2 * 10_000); // Event amplification >= 2.
//! ```

pub mod config;
pub mod driver;
pub mod generator;
pub mod operator;
pub mod operators;

pub use config::{GadgetConfig, SourceConfig};
pub use driver::Driver;
pub use generator::{
    replay_dataset, replay_dataset_with_disorder, ArrivalConfig, EventGenerator, GeneratorConfig,
    ValueSizeConfig,
};
pub use operator::{Operator, OperatorKind, OperatorParams, WindowMode};
