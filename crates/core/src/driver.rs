//! The driver: Algorithm 1 of the paper.
//!
//! The driver pulls stream elements, routes data events to the operator's
//! state machines, tracks the watermark, discards events later than the
//! allowed lateness, and assembles the resulting state-access [`Trace`].

use std::collections::HashSet;

use gadget_obs::{MetricsSnapshot, SnapshotEmitter};
use gadget_types::{StateAccess, StreamElement, Timestamp, Trace};

use crate::operator::Operator;

/// Drives one operator over a stream of elements, producing its
/// state-access stream.
pub struct Driver {
    operator: Box<dyn Operator>,
    /// Allowed lateness: events with `ts <= watermark - allowed_lateness`
    /// are discarded (paper §2.1).
    allowed_lateness: Timestamp,
    watermark: Timestamp,
    dropped_late: u64,
    events_in: u64,
    accesses_out: u64,
}

impl Driver {
    /// Creates a driver with zero allowed lateness.
    pub fn new(operator: Box<dyn Operator>) -> Self {
        Driver {
            operator,
            allowed_lateness: 0,
            watermark: 0,
            dropped_late: 0,
            events_in: 0,
            accesses_out: 0,
        }
    }

    /// Sets the allowed lateness period.
    pub fn with_allowed_lateness(mut self, lateness: Timestamp) -> Self {
        self.allowed_lateness = lateness;
        self
    }

    /// Number of late events discarded so far.
    pub fn dropped_late(&self) -> u64 {
        self.dropped_late
    }

    /// The operator's workload name.
    pub fn operator_name(&self) -> &'static str {
        self.operator.name()
    }

    /// The driver's own instruments: progress counters plus the current
    /// watermark as a gauge.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("events_in", self.events_in);
        snap.push_counter("accesses_out", self.accesses_out);
        snap.push_counter("dropped_late", self.dropped_late);
        snap.push_gauge("watermark", self.watermark as i64);
        snap
    }

    /// Runs the full stream through the operator and returns the trace.
    ///
    /// At end-of-stream the operator flushes all remaining state (as if a
    /// final watermark arrived), so traces are self-contained.
    pub fn run<I>(&mut self, stream: I) -> Trace
    where
        I: Iterator<Item = StreamElement>,
    {
        self.run_inner(stream, 1, None)
    }

    /// Like [`run`](Driver::run), but pulls stream elements in
    /// micro-batches of `batch_size` before routing them, mirroring the
    /// batch-aware replay pipeline (`--batch-size`). Elements are still
    /// processed strictly in stream order, so the resulting trace is
    /// identical to an unbatched run; what changes is the pull loop's
    /// shape (one wakeup drains a whole micro-batch).
    pub fn run_batched<I>(&mut self, stream: I, batch_size: usize) -> Trace
    where
        I: Iterator<Item = StreamElement>,
    {
        self.run_inner(stream, batch_size, None)
    }

    /// Like [`run`](Driver::run), but also samples
    /// [`metrics_snapshot`](Driver::metrics_snapshot) into `emitter` on
    /// its op-count schedule (ops = state accesses emitted), plus one
    /// final sample.
    pub fn run_observed<I>(&mut self, stream: I, emitter: &mut SnapshotEmitter) -> Trace
    where
        I: Iterator<Item = StreamElement>,
    {
        self.run_inner(stream, 1, Some(emitter))
    }

    /// Routes one stream element to the operator (Algorithm 1 body).
    fn route(
        &mut self,
        element: StreamElement,
        accesses: &mut Vec<StateAccess>,
        input_events: &mut u64,
        input_keys: &mut HashSet<u64>,
    ) {
        match element {
            StreamElement::Event(event) => {
                if self.watermark > 0 && event.timestamp + self.allowed_lateness <= self.watermark {
                    self.dropped_late += 1;
                    return;
                }
                *input_events += 1;
                self.events_in += 1;
                input_keys.insert(event.key);
                self.operator.on_event(&event, accesses);
            }
            StreamElement::Watermark(ts) => {
                if ts > self.watermark {
                    self.watermark = ts;
                    self.operator.on_watermark(ts, accesses);
                }
            }
        }
    }

    fn run_inner<I>(
        &mut self,
        stream: I,
        batch_size: usize,
        mut emitter: Option<&mut SnapshotEmitter>,
    ) -> Trace
    where
        I: Iterator<Item = StreamElement>,
    {
        let batch_size = batch_size.max(1);
        let mut stream = stream;
        let mut accesses: Vec<StateAccess> = Vec::new();
        let mut input_events = 0u64;
        let mut input_keys: HashSet<u64> = HashSet::new();
        let mut pending: Vec<StreamElement> = Vec::with_capacity(batch_size);

        let _phase = gadget_obs::trace::span(
            gadget_obs::trace::Category::Phase,
            gadget_obs::trace::phase::DRIVE,
        );
        loop {
            pending.extend(stream.by_ref().take(batch_size));
            if pending.is_empty() {
                break;
            }
            for element in pending.drain(..) {
                self.route(element, &mut accesses, &mut input_events, &mut input_keys);
            }
            self.accesses_out = accesses.len() as u64;
            if let Some(em) = emitter.as_deref_mut() {
                let snap = || vec![("driver".to_string(), self.metrics_snapshot())];
                em.poll(accesses.len() as u64, snap);
            }
        }
        self.operator.on_end(&mut accesses);
        self.accesses_out = accesses.len() as u64;
        if let Some(em) = emitter {
            em.finish(
                accesses.len() as u64,
                vec![("driver".to_string(), self.metrics_snapshot())],
            );
        }

        Trace {
            accesses,
            input_events,
            input_distinct_keys: input_keys.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorKind, OperatorParams};
    use gadget_types::{Event, OpType};

    fn stream(events: Vec<StreamElement>) -> impl Iterator<Item = StreamElement> {
        events.into_iter()
    }

    #[test]
    fn drops_late_events_beyond_lateness() {
        let op = OperatorKind::Aggregation.build(&OperatorParams::default());
        let mut driver = Driver::new(op).with_allowed_lateness(1_000);
        let trace = driver.run(stream(vec![
            StreamElement::Event(Event::new(1, 10_000, 10)),
            StreamElement::Watermark(10_000),
            StreamElement::Event(Event::new(1, 9_500, 10)), // Late, allowed.
            StreamElement::Event(Event::new(1, 8_000, 10)), // Too late.
        ]));
        assert_eq!(driver.dropped_late(), 1);
        assert_eq!(trace.input_events, 2);
        assert_eq!(trace.len(), 4); // Two processed events × (get + put).
    }

    #[test]
    fn watermarks_never_regress() {
        let op = OperatorKind::TumblingIncr.build(&OperatorParams::default());
        let mut driver = Driver::new(op);
        let trace = driver.run(stream(vec![
            StreamElement::Event(Event::new(1, 1_000, 10)),
            StreamElement::Watermark(6_000), // Fires window [0, 5000).
            StreamElement::Watermark(3_000), // Regression: ignored.
            StreamElement::Event(Event::new(1, 7_000, 10)),
        ]));
        let deletes = trace.iter().filter(|a| a.op == OpType::Delete).count();
        assert_eq!(deletes, 2); // [0,5s) at the watermark + [5s,10s) at end.
    }

    #[test]
    fn trace_metadata_counts_inputs() {
        let op = OperatorKind::Aggregation.build(&OperatorParams::default());
        let mut driver = Driver::new(op);
        let trace = driver.run(stream(vec![
            StreamElement::Event(Event::new(1, 1, 10)),
            StreamElement::Event(Event::new(2, 2, 10)),
            StreamElement::Event(Event::new(1, 3, 10)),
        ]));
        assert_eq!(trace.input_events, 3);
        assert_eq!(trace.input_distinct_keys, 2);
        assert_eq!(trace.stats().event_amplification(), Some(2.0));
    }

    #[test]
    fn observed_run_samples_driver_metrics() {
        let op = OperatorKind::Aggregation.build(&OperatorParams::default());
        let mut driver = Driver::new(op).with_allowed_lateness(1_000);
        let mut emitter = SnapshotEmitter::every(2);
        let elements: Vec<StreamElement> = (0..10u64)
            .map(|i| StreamElement::Event(Event::new(i % 3, 1_000 * i, 10)))
            .chain([StreamElement::Watermark(10_000)])
            .collect();
        driver.run_observed(stream(elements), &mut emitter);
        let points = &emitter.series().points;
        assert!(points.len() >= 2);
        let last = points.last().unwrap();
        let driver_snap = last.registry("driver").unwrap();
        assert_eq!(driver_snap.counter("events_in"), Some(10));
        assert!(driver_snap.counter("accesses_out").unwrap() >= 20);
        assert_eq!(driver_snap.gauge("watermark"), Some(10_000));
    }

    #[test]
    fn batched_pull_produces_identical_traces() {
        let elements: Vec<StreamElement> = (0..500u64)
            .flat_map(|i| {
                let mut v = vec![StreamElement::Event(Event::new(i % 7, 100 * i, 10))];
                if i % 50 == 49 {
                    v.push(StreamElement::Watermark(100 * i));
                }
                v
            })
            .collect();
        let baseline = Driver::new(OperatorKind::TumblingIncr.build(&OperatorParams::default()))
            .with_allowed_lateness(1_000)
            .run(stream(elements.clone()));
        for batch_size in [2, 64, 1_000] {
            let mut driver =
                Driver::new(OperatorKind::TumblingIncr.build(&OperatorParams::default()))
                    .with_allowed_lateness(1_000);
            let trace = driver.run_batched(stream(elements.clone()), batch_size);
            assert_eq!(trace.accesses, baseline.accesses, "batch {batch_size}");
            assert_eq!(trace.input_events, baseline.input_events);
            assert_eq!(trace.input_distinct_keys, baseline.input_distinct_keys);
        }
    }

    #[test]
    fn end_of_stream_flushes_windows() {
        let op = OperatorKind::TumblingHol.build(&OperatorParams::default());
        let mut driver = Driver::new(op);
        let trace = driver.run(stream(vec![StreamElement::Event(Event::new(1, 1_000, 10))]));
        let kinds: Vec<OpType> = trace.iter().map(|a| a.op).collect();
        assert_eq!(kinds, vec![OpType::Merge, OpType::Get, OpType::Delete]);
    }
}
