//! Top-level harness configuration (the JSON config files of §A.4.1).

use serde::{Deserialize, Serialize};

use gadget_datasets::DatasetSpec;
use gadget_types::{StreamElement, Timestamp, Trace};

use crate::driver::Driver;
use crate::generator::{EventGenerator, GeneratorConfig};
use crate::operator::{OperatorKind, OperatorParams};

/// Where the input stream comes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SourceConfig {
    /// Synthesize events with the event generator.
    Synthetic(GeneratorConfig),
    /// Replay one of the built-in datasets.
    Dataset {
        /// Dataset name: `"borg"`, `"taxi"`, or `"azure"`.
        name: String,
        /// Number of events to generate.
        events: u64,
        /// Dataset seed.
        seed: u64,
        /// Punctuated watermark frequency in events.
        watermark_every: u64,
        /// Use the two-input variant (taxi trips + fares) when available.
        #[serde(default)]
        two_input: bool,
        /// Fraction of events delivered out of order (delayed by up to
        /// `max_lateness` ms), exercising session merging and late-event
        /// handling. Defaults to 0 (replay in event-time order).
        #[serde(default)]
        out_of_order_fraction: f64,
        /// Maximum delivery delay for out-of-order events, in ms.
        #[serde(default = "default_max_lateness")]
        max_lateness: Timestamp,
    },
}

fn default_max_lateness() -> Timestamp {
    3_000
}

/// A complete workload description: source + operator + driver settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GadgetConfig {
    /// Input stream source.
    pub source: SourceConfig,
    /// Which predefined workload to run.
    pub operator: String,
    /// Window length in ms.
    #[serde(default = "default_window_length")]
    pub window_length: Timestamp,
    /// Window slide in ms.
    #[serde(default = "default_window_slide")]
    pub window_slide: Timestamp,
    /// Session gap in ms.
    #[serde(default = "default_session_gap")]
    pub session_gap: Timestamp,
    /// Interval join lower bound in ms.
    #[serde(default = "default_interval_lower")]
    pub interval_lower: Timestamp,
    /// Interval join upper bound in ms.
    #[serde(default = "default_interval_upper")]
    pub interval_upper: Timestamp,
    /// Allowed lateness in ms.
    #[serde(default)]
    pub allowed_lateness: Timestamp,
}

fn default_window_length() -> Timestamp {
    5_000
}
fn default_window_slide() -> Timestamp {
    1_000
}
fn default_session_gap() -> Timestamp {
    120_000
}
fn default_interval_lower() -> Timestamp {
    120_000
}
fn default_interval_upper() -> Timestamp {
    180_000
}

impl GadgetConfig {
    /// A config replaying `dataset` through `operator` with paper defaults.
    pub fn dataset(operator: OperatorKind, dataset: &str, spec: DatasetSpec) -> Self {
        GadgetConfig {
            source: SourceConfig::Dataset {
                name: dataset.to_string(),
                events: spec.events,
                seed: spec.seed,
                watermark_every: 100,
                two_input: operator.is_two_input(),
                out_of_order_fraction: 0.0,
                max_lateness: default_max_lateness(),
            },
            operator: operator.name().to_string(),
            window_length: default_window_length(),
            window_slide: default_window_slide(),
            session_gap: default_session_gap(),
            interval_lower: default_interval_lower(),
            interval_upper: default_interval_upper(),
            allowed_lateness: 0,
        }
    }

    /// A config running `operator` over a synthetic stream.
    pub fn synthetic(operator: OperatorKind, generator: GeneratorConfig) -> Self {
        GadgetConfig {
            source: SourceConfig::Synthetic(generator),
            operator: operator.name().to_string(),
            window_length: default_window_length(),
            window_slide: default_window_slide(),
            session_gap: default_session_gap(),
            interval_lower: default_interval_lower(),
            interval_upper: default_interval_upper(),
            allowed_lateness: 0,
        }
    }

    /// The operator kind this config names.
    ///
    /// Returns `None` for unknown names (e.g. a typo in a config file).
    pub fn operator_kind(&self) -> Option<OperatorKind> {
        OperatorKind::parse(&self.operator)
    }

    /// The operator parameters this config describes.
    pub fn operator_params(&self) -> OperatorParams {
        OperatorParams {
            window_length: self.window_length,
            window_slide: self.window_slide,
            session_gap: self.session_gap,
            interval_lower: self.interval_lower,
            interval_upper: self.interval_upper,
            accumulator_size: 8,
            allowed_lateness: self.allowed_lateness,
        }
    }

    /// Materializes the input stream.
    pub fn build_stream(&self) -> Vec<StreamElement> {
        match &self.source {
            SourceConfig::Synthetic(cfg) => EventGenerator::new(cfg.clone()).generate(),
            SourceConfig::Dataset {
                name,
                events,
                seed,
                watermark_every,
                two_input,
                out_of_order_fraction,
                max_lateness,
            } => {
                let spec = DatasetSpec {
                    events: *events,
                    seed: *seed,
                };
                let dataset = if *two_input && name == "taxi" {
                    gadget_datasets::taxi_with_fares(spec)
                } else {
                    gadget_datasets::by_name(name, spec)
                        .unwrap_or_else(|| panic!("unknown dataset {name}"))
                };
                crate::generator::replay_dataset_with_disorder(
                    &dataset,
                    *watermark_every,
                    *out_of_order_fraction,
                    *max_lateness,
                    *seed,
                )
            }
        }
    }

    /// Runs the configured workload end to end, producing its trace.
    ///
    /// This is Gadget's *offline mode*: the trace can be saved and later
    /// replayed against any store by the performance evaluator.
    pub fn run(&self) -> Trace {
        let kind = self
            .operator_kind()
            .unwrap_or_else(|| panic!("unknown operator {}", self.operator));
        let operator = kind.build(&self.operator_params());
        let mut driver = Driver::new(operator).with_allowed_lateness(self.allowed_lateness);
        driver.run(self.build_stream().into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let cfg = GadgetConfig::dataset(OperatorKind::SlidingIncr, "borg", DatasetSpec::small());
        let json = serde_json::to_string_pretty(&cfg).unwrap();
        let back: GadgetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let json = r#"{
            "source": {"kind": "dataset", "name": "borg", "events": 1000,
                       "seed": 1, "watermark_every": 100},
            "operator": "tumbling-incr"
        }"#;
        let cfg: GadgetConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.window_length, 5_000);
        assert_eq!(cfg.session_gap, 120_000);
        assert_eq!(cfg.operator_kind(), Some(OperatorKind::TumblingIncr));
    }

    #[test]
    fn out_of_order_dataset_replay_exercises_session_merges() {
        let mut cfg = GadgetConfig::dataset(
            OperatorKind::SessionIncr,
            "borg",
            DatasetSpec::small().with_events(8_000),
        );
        if let SourceConfig::Dataset {
            out_of_order_fraction,
            ..
        } = &mut cfg.source
        {
            *out_of_order_fraction = 0.1;
        }
        cfg.allowed_lateness = 5_000;
        let stats = cfg.run().stats();
        // Out-of-order events bridge sessions, producing window-migration
        // merges that ordered replays never show (paper Table 1's
        // session-incr merge column).
        assert!(stats.merges > 0, "no session merges under disorder");
    }

    #[test]
    fn end_to_end_dataset_run() {
        let cfg = GadgetConfig::dataset(
            OperatorKind::TumblingIncr,
            "borg",
            DatasetSpec::small().with_events(2_000),
        );
        let trace = cfg.run();
        assert!(trace.len() as u64 >= 2 * trace.input_events);
        let stats = trace.stats();
        assert!(stats.deletes > 0, "windows must fire and clean up");
    }

    #[test]
    fn end_to_end_synthetic_run() {
        let cfg = GadgetConfig::synthetic(
            OperatorKind::Aggregation,
            GeneratorConfig {
                events: 1_000,
                ..GeneratorConfig::default()
            },
        );
        let trace = cfg.run();
        // Events sharing a millisecond with a prior watermark are late
        // (ts <= wm) and dropped, so slightly fewer than 1000 events pass.
        assert!(trace.input_events >= 950);
        assert_eq!(trace.len() as u64, 2 * trace.input_events);
        let stats = trace.stats();
        assert!((stats.ratio(gadget_types::OpType::Get) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unknown_operator_is_detected() {
        let mut cfg =
            GadgetConfig::synthetic(OperatorKind::Aggregation, GeneratorConfig::default());
        cfg.operator = "definitely-not-real".to_string();
        assert!(cfg.operator_kind().is_none());
    }
}
