//! Property-based invariants of the operator state machines.
//!
//! For arbitrary (possibly out-of-order) event sequences, the windowed
//! operators must uphold the lifecycle invariants that make their traces
//! replayable: every pane that is opened is eventually read back (FGet)
//! and deleted exactly once, deletes never precede the pane's first
//! write, and end-of-stream leaves no active state.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use gadget_core::{Driver, OperatorKind, OperatorParams};
use gadget_types::{Event, OpType, StateAccess, StreamElement};

/// Builds a stream of events with bounded keys/timestamps plus periodic
/// watermarks carrying the running max timestamp.
fn stream_strategy() -> impl Strategy<Value = Vec<StreamElement>> {
    proptest::collection::vec((0u64..8, 0u64..60_000, 1u32..64), 1..250).prop_map(|raw| {
        let mut out = Vec::with_capacity(raw.len() + raw.len() / 10);
        let mut max_ts = 0;
        for (i, (key, ts, size)) in raw.into_iter().enumerate() {
            max_ts = max_ts.max(ts);
            out.push(StreamElement::Event(Event::new(key, ts, size)));
            if (i + 1) % 10 == 0 {
                out.push(StreamElement::Watermark(max_ts));
            }
        }
        out
    })
}

/// Checks pane-lifecycle invariants on a windowed operator's trace.
fn check_window_invariants(kind: OperatorKind, accesses: &[StateAccess]) -> Result<(), String> {
    let mut opened: HashSet<u128> = HashSet::new();
    let mut deleted: HashMap<u128, u32> = HashMap::new();
    for (i, a) in accesses.iter().enumerate() {
        let k = a.key.as_u128();
        match a.op {
            OpType::Put | OpType::Merge => {
                opened.insert(k);
            }
            OpType::Delete => {
                if !opened.contains(&k) {
                    return Err(format!(
                        "{}: delete of never-written pane at #{i}",
                        kind.name()
                    ));
                }
                *deleted.entry(k).or_insert(0) += 1;
                // A read of the pane must shortly precede the delete: the
                // FGet on firing, or the migration read (get(old),
                // merge(surviving), delete(old)) on session merging.
                let recently_read = (1..=2).any(|back| {
                    i >= back
                        && accesses[i - back].op == OpType::Get
                        && accesses[i - back].key == a.key
                });
                if !recently_read {
                    return Err(format!(
                        "{}: delete at #{i} not preceded by a read of the pane",
                        kind.name()
                    ));
                }
            }
            OpType::Get => {}
        }
    }
    // Every opened pane is deleted exactly once (panes never re-open after
    // deletion in an ordered stream with monotone watermarks + on_end).
    for &pane in &opened {
        match deleted.get(&pane) {
            Some(1) => {}
            Some(n) => return Err(format!("{}: pane deleted {n} times", kind.name())),
            None => return Err(format!("{}: pane never deleted", kind.name())),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_panes_have_exact_lifecycles(
        stream in stream_strategy(),
        kind_idx in 0usize..6,
    ) {
        let kind = [
            OperatorKind::TumblingIncr,
            OperatorKind::TumblingHol,
            OperatorKind::SlidingIncr,
            OperatorKind::SlidingHol,
            OperatorKind::SessionIncr,
            OperatorKind::SessionHol,
        ][kind_idx];
        let params = OperatorParams {
            window_length: 5_000,
            window_slide: 1_000,
            session_gap: 2_000,
            ..OperatorParams::default()
        };
        let mut driver = Driver::new(kind.build(&params));
        let trace = driver.run(stream.into_iter());
        if let Err(msg) = check_window_invariants(kind, &trace.accesses) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn aggregation_never_deletes_and_alternates(stream in stream_strategy()) {
        let mut driver = Driver::new(
            OperatorKind::Aggregation.build(&OperatorParams::default()),
        );
        let trace = driver.run(stream.into_iter());
        prop_assert_eq!(trace.stats().deletes, 0);
        // Strict get/put alternation on the same key.
        for pair in trace.accesses.chunks(2) {
            prop_assert_eq!(pair[0].op, OpType::Get);
            prop_assert_eq!(pair[1].op, OpType::Put);
            prop_assert_eq!(pair[0].key, pair[1].key);
        }
    }

    #[test]
    fn event_amplification_at_least_two_for_incremental_windows(
        stream in stream_strategy(),
    ) {
        let mut driver = Driver::new(
            OperatorKind::TumblingIncr.build(&OperatorParams::default()),
        );
        let trace = driver.run(stream.into_iter());
        if trace.input_events > 0 {
            // get+put per event plus firing traffic.
            prop_assert!(trace.len() as u64 >= 2 * trace.input_events);
        }
    }

    #[test]
    fn traces_are_deterministic(stream in stream_strategy()) {
        let params = OperatorParams::default();
        let run = |s: Vec<StreamElement>| {
            Driver::new(OperatorKind::SlidingIncr.build(&params)).run(s.into_iter())
        };
        prop_assert_eq!(run(stream.clone()), run(stream));
    }
}
