//! Tail-latency attribution: which background work overlapped the
//! slowest sampled ops?
//!
//! The report takes every sampled foreground op span in a
//! [`TraceLog`], computes the p99 of their durations, and for each op
//! strictly slower than that ("tail op") checks which background span
//! categories were active at any point during the op. The output is,
//! per category, the count and fraction of tail ops it overlapped —
//! the benchmark-level answer to "was that p99.9 spike compaction,
//! fsync, or neither?". Fractions can sum past 1.0 because one slow op
//! can overlap several kinds of background work at once.

use crate::{Category, Span, TraceLog, NO_SHARD};

/// Per-category share of the tail.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryShare {
    /// Background category.
    pub category: Category,
    /// Tail ops that overlapped at least one span of this category.
    pub overlapping: usize,
    /// `overlapping / tail_ops` (0 when there are no tail ops).
    pub fraction: f64,
}

/// Per-shard share of the tail, for sharded stores.
///
/// Built from the shard tag op spans carry (see
/// [`shard_scope`](crate::shard_scope)): a shard that owns a
/// disproportionate slice of the tail is the hot shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardShare {
    /// Shard id the ops were routed to.
    pub shard: u64,
    /// Tail ops served by this shard.
    pub tail_ops: usize,
    /// `tail_ops / total tail ops` (0 when there are no tail ops).
    pub fraction: f64,
}

/// Tail-latency attribution over one trace log.
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Sampled op spans considered.
    pub total_ops: usize,
    /// Nearest-rank p99 of sampled op durations (ns).
    pub p99_ns: u64,
    /// Ops strictly slower than `p99_ns`.
    pub tail_ops: usize,
    /// One entry per background category, descending by count; only
    /// categories present in the log appear.
    pub shares: Vec<CategoryShare>,
    /// One entry per shard that served tail ops, descending by count.
    /// Empty unless op spans carry shard tags (i.e. a sharded store).
    pub shard_shares: Vec<ShardShare>,
    /// Tail ops that overlapped no background span at all.
    pub unattributed: usize,
}

impl AttributionReport {
    /// The share for `cat`, if any tail op overlapped it.
    pub fn share(&self, cat: Category) -> Option<&CategoryShare> {
        self.shares.iter().find(|s| s.category == cat)
    }

    /// Renders the report as the table printed by the CLI.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tail-latency attribution: {} sampled ops, p99 {:.3} us, {} tail ops\n",
            self.total_ops,
            self.p99_ns as f64 / 1_000.0,
            self.tail_ops
        ));
        out.push_str(&format!(
            "  {:<16} {:>8} {:>9}\n",
            "background", "tail ops", "fraction"
        ));
        for share in &self.shares {
            out.push_str(&format!(
                "  {:<16} {:>8} {:>8.1}%\n",
                share.category.name(),
                share.overlapping,
                share.fraction * 100.0
            ));
        }
        let unattributed_frac = if self.tail_ops == 0 {
            0.0
        } else {
            self.unattributed as f64 / self.tail_ops as f64
        };
        out.push_str(&format!(
            "  {:<16} {:>8} {:>8.1}%\n",
            "(none)",
            self.unattributed,
            unattributed_frac * 100.0
        ));
        if !self.shard_shares.is_empty() {
            out.push_str(&format!(
                "  {:<16} {:>8} {:>9}\n",
                "hot shards", "tail ops", "fraction"
            ));
            for share in &self.shard_shares {
                out.push_str(&format!(
                    "  {:<16} {:>8} {:>8.1}%\n",
                    format!("shard {}", share.shard),
                    share.tail_ops,
                    share.fraction * 100.0
                ));
            }
        }
        out
    }
}

/// Nearest-rank p99: smallest duration d such that at least 99% of
/// samples are <= d. Deterministic for any fixed input.
fn p99(mut durs: Vec<u64>) -> u64 {
    if durs.is_empty() {
        return 0;
    }
    durs.sort_unstable();
    let n = durs.len();
    let rank = (99 * n).div_ceil(100); // ceil(0.99 * n), 1-based
    durs[rank.min(n) - 1]
}

/// Builds the attribution report for `log`. See the module docs.
pub fn attribute(log: &TraceLog) -> AttributionReport {
    attribute_with(log, Category::is_op, Category::is_background)
}

/// Cross-process attribution for a *merged* client+server trace: the
/// "ops" are traced client requests ([`Category::NetOp`]) and the
/// causes are server background spans — compaction, WAL fsync, reshard
/// migration — after offset correction. [`Category::NetRequest`] is
/// excluded from the causes because a slow client op always overlaps
/// its own server-side request span; counting it would tell you
/// nothing ("your slow request overlapped itself").
pub fn attribute_net(log: &TraceLog) -> AttributionReport {
    attribute_with(
        log,
        |cat| cat == Category::NetOp,
        |cat| cat.is_background() && cat != Category::NetRequest,
    )
}

fn attribute_with(
    log: &TraceLog,
    op_cat: impl Fn(Category) -> bool,
    bg_cat: impl Fn(Category) -> bool,
) -> AttributionReport {
    let ops: Vec<&Span> = log.events.iter().filter(|e| op_cat(e.cat)).collect();
    let p99_ns = p99(ops.iter().map(|o| o.dur_ns).collect());
    let tail: Vec<&&Span> = ops.iter().filter(|o| o.dur_ns > p99_ns).collect();

    let background: Vec<&Span> = log.events.iter().filter(|e| bg_cat(e.cat)).collect();

    let mut shares: Vec<CategoryShare> = Vec::new();
    let mut unattributed = 0usize;
    for op in &tail {
        // Each (op, category) pair counts once, however many spans of
        // that category the op overlapped.
        let mut hit: Vec<Category> = Vec::new();
        for bg in &background {
            if op.overlaps(bg) && !hit.contains(&bg.cat) {
                hit.push(bg.cat);
            }
        }
        if hit.is_empty() {
            unattributed += 1;
        }
        for cat in hit {
            match shares.iter_mut().find(|s| s.category == cat) {
                Some(share) => share.overlapping += 1,
                None => shares.push(CategoryShare {
                    category: cat,
                    overlapping: 1,
                    fraction: 0.0,
                }),
            }
        }
    }

    let tail_ops = tail.len();
    for share in &mut shares {
        share.fraction = if tail_ops == 0 {
            0.0
        } else {
            share.overlapping as f64 / tail_ops as f64
        };
    }
    shares.sort_by(|a, b| {
        b.overlapping
            .cmp(&a.overlapping)
            .then(a.category.cmp(&b.category))
    });

    // Hot-shard breakdown: tail ops grouped by the shard that served
    // them (ops without a shard tag contribute nothing).
    let mut shard_shares: Vec<ShardShare> = Vec::new();
    for op in &tail {
        if op.shard == NO_SHARD {
            continue;
        }
        match shard_shares.iter_mut().find(|s| s.shard == op.shard) {
            Some(share) => share.tail_ops += 1,
            None => shard_shares.push(ShardShare {
                shard: op.shard,
                tail_ops: 1,
                fraction: 0.0,
            }),
        }
    }
    for share in &mut shard_shares {
        share.fraction = if tail_ops == 0 {
            0.0
        } else {
            share.tail_ops as f64 / tail_ops as f64
        };
    }
    shard_shares.sort_by(|a, b| b.tail_ops.cmp(&a.tail_ops).then(a.shard.cmp(&b.shard)));

    AttributionReport {
        total_ops: ops.len(),
        p99_ns,
        tail_ops,
        shares,
        shard_shares,
        unattributed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(start: u64, dur: u64) -> Span {
        Span {
            cat: Category::OpGet,
            arg: 0,
            arg2: 0,
            start_ns: start,
            dur_ns: dur,
            tid: 1,
            shard: NO_SHARD,
        }
    }

    fn sharded_op(start: u64, dur: u64, shard: u64) -> Span {
        Span {
            shard,
            ..op(start, dur)
        }
    }

    fn bg(cat: Category, start: u64, dur: u64) -> Span {
        Span {
            cat,
            arg: 0,
            arg2: 0,
            start_ns: start,
            dur_ns: dur,
            tid: 2,
            shard: NO_SHARD,
        }
    }

    fn log(events: Vec<Span>) -> TraceLog {
        TraceLog {
            events,
            threads: vec![],
            dropped: 0,
            session_start_ns: 0,
            session_end_ns: u64::MAX,
        }
    }

    /// The acceptance fixture: 199 fast ops, 2 slow ops, and one
    /// compaction span covering exactly the slow ops. With n = 201 the
    /// nearest-rank p99 lands on a fast op, so the tail is exactly the
    /// two slow ops, both under compaction ⇒ 100% attributed to it.
    #[test]
    fn all_tail_ops_under_compaction_attributes_100_percent() {
        let mut events: Vec<Span> = (0..199).map(|i| op(i * 10, 100)).collect();
        events.push(op(5_000, 10_000));
        events.push(op(6_000, 12_000));
        events.push(bg(Category::Compaction, 4_500, 20_000));
        // Background work elsewhere in time must not be credited.
        events.push(bg(Category::Flush, 200_000, 1_000));
        let report = attribute(&log(events));

        assert_eq!(report.total_ops, 201);
        assert_eq!(report.p99_ns, 100);
        assert_eq!(report.tail_ops, 2);
        let comp = report.share(Category::Compaction).unwrap();
        assert_eq!(comp.overlapping, 2);
        assert_eq!(comp.fraction, 1.0);
        assert!(report.share(Category::Flush).is_none());
        assert_eq!(report.unattributed, 0);
        let table = report.to_table();
        assert!(table.contains("compaction"));
        assert!(table.contains("100.0%"));
    }

    #[test]
    fn ops_outside_background_are_unattributed() {
        let mut events: Vec<Span> = (0..99).map(|i| op(i * 10, 100)).collect();
        events.push(op(50_000, 9_000));
        events.push(bg(Category::WalFsync, 100_000, 50));
        let report = attribute(&log(events));
        assert_eq!(report.tail_ops, 1);
        assert_eq!(report.unattributed, 1);
        assert!(report.shares.is_empty());
    }

    #[test]
    fn one_op_overlapping_two_categories_counts_in_both() {
        let mut events: Vec<Span> = (0..99).map(|i| op(i * 10, 100)).collect();
        events.push(op(50_000, 9_000));
        events.push(bg(Category::Compaction, 49_000, 5_000));
        events.push(bg(Category::CacheFill, 55_000, 1_000));
        let report = attribute(&log(events));
        assert_eq!(report.tail_ops, 1);
        assert_eq!(report.share(Category::Compaction).unwrap().overlapping, 1);
        assert_eq!(report.share(Category::CacheFill).unwrap().overlapping, 1);
        assert_eq!(report.unattributed, 0);
    }

    #[test]
    fn several_spans_of_one_category_count_once_per_op() {
        let mut events: Vec<Span> = (0..99).map(|i| op(i * 10, 100)).collect();
        events.push(op(50_000, 9_000));
        events.push(bg(Category::Flush, 50_500, 100));
        events.push(bg(Category::Flush, 52_000, 100));
        events.push(bg(Category::Flush, 54_000, 100));
        let report = attribute(&log(events));
        assert_eq!(report.tail_ops, 1);
        let flush = report.share(Category::Flush).unwrap();
        assert_eq!(flush.overlapping, 1);
        assert_eq!(flush.fraction, 1.0);
    }

    #[test]
    fn empty_log_yields_empty_report() {
        let report = attribute(&log(vec![]));
        assert_eq!(report.total_ops, 0);
        assert_eq!(report.tail_ops, 0);
        assert_eq!(report.p99_ns, 0);
        assert!(report.shares.is_empty());
        assert_eq!(report.unattributed, 0);
        // Table renders without dividing by zero.
        assert!(report.to_table().contains("0 tail ops"));
    }

    #[test]
    fn hot_shard_owns_its_share_of_the_tail() {
        // 297 fast ops spread over shards, then 3 slow ops: two on
        // shard 1, one on shard 0. With n = 300 the nearest-rank p99
        // lands on a fast op, so the tail is exactly the slow three.
        let mut events: Vec<Span> = (0..297).map(|i| sharded_op(i * 10, 100, i % 4)).collect();
        events.push(sharded_op(50_000, 9_000, 1));
        events.push(sharded_op(61_000, 9_500, 1));
        events.push(sharded_op(72_000, 8_000, 0));
        let report = attribute(&log(events));
        assert_eq!(report.tail_ops, 3);
        assert_eq!(report.shard_shares.len(), 2);
        assert_eq!(report.shard_shares[0].shard, 1, "hot shard sorts first");
        assert_eq!(report.shard_shares[0].tail_ops, 2);
        assert!((report.shard_shares[0].fraction - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.shard_shares[1].shard, 0);
        let table = report.to_table();
        assert!(table.contains("hot shards"));
        assert!(table.contains("shard 1"));
    }

    #[test]
    fn untagged_ops_produce_no_shard_section() {
        let mut events: Vec<Span> = (0..99).map(|i| op(i * 10, 100)).collect();
        events.push(op(50_000, 9_000));
        let report = attribute(&log(events));
        assert_eq!(report.tail_ops, 1);
        assert!(report.shard_shares.is_empty());
        assert!(!report.to_table().contains("hot shards"));
    }

    #[test]
    fn net_attribution_blames_server_background_not_the_request_itself() {
        // 99 fast traced requests, one slow one. The slow request
        // overlaps its own server-side net_request span AND an L0
        // compaction; only the compaction may be blamed.
        let net_op = |start: u64, dur: u64, seq: u64| Span {
            cat: Category::NetOp,
            arg: 1,
            arg2: seq,
            start_ns: start,
            dur_ns: dur,
            tid: 1,
            shard: NO_SHARD,
        };
        let mut events: Vec<Span> = (0..99).map(|i| net_op(i * 1_000, 100, i + 1)).collect();
        events.push(net_op(500_000, 9_000, 100));
        events.push(bg(Category::NetRequest, 500_100, 8_000));
        events.push(bg(Category::Compaction, 499_000, 20_000));
        // Plain store ops must not be counted as "ops" here.
        events.push(op(500_000, 50_000));
        let report = attribute_net(&log(events));
        assert_eq!(report.total_ops, 100);
        assert_eq!(report.tail_ops, 1);
        assert_eq!(report.share(Category::Compaction).unwrap().overlapping, 1);
        assert!(report.share(Category::NetRequest).is_none());
        assert_eq!(report.unattributed, 0);
        // The classic report still sees only store ops.
        assert_eq!(attribute(&log_for_classic()).total_ops, 1);
    }

    fn log_for_classic() -> TraceLog {
        log(vec![op(0, 100)])
    }

    #[test]
    fn identical_durations_have_empty_tail() {
        let events: Vec<Span> = (0..50).map(|i| op(i * 10, 100)).collect();
        let report = attribute(&log(events));
        assert_eq!(report.p99_ns, 100);
        assert_eq!(report.tail_ops, 0, "nothing is strictly above p99");
    }
}
