//! NTP-style clock-offset estimation between a client and a server
//! that each timestamp with their own monotonic clock.
//!
//! Every traced request carries four timestamps: the client stamps the
//! frame just before writing it (`t1`) and notes when the reply is
//! decoded (`t4`); the server echoes when it pulled the frame off the
//! socket (`t2`) and when it stamped the reply for the wire (`t3`).
//! With `theta = server_clock - client_clock`, the classic estimate is
//!
//! ```text
//! theta = ((t2 - t1) + (t3 - t4)) / 2
//! ```
//!
//! which is exact when the outbound and return wire delays are equal
//! and off by at most half the asymmetry otherwise. Queueing makes
//! individual samples noisy in one direction only (delays add, they
//! never subtract), so the estimator keeps the sample with the
//! *minimum* round-trip wire time — the exchange least polluted by
//! queueing — rather than averaging: this is the standard NTP/Cristian
//! refinement and is what makes the estimate robust under load.
//!
//! Offsets are per-connection (one TCP connection, one socket path),
//! and the merge layer medians across connections for a process-wide
//! shift.

/// One request/response timestamp exchange. All values are
/// monotonic-clock nanoseconds; `t1`/`t4` are on the client clock,
/// `t2`/`t3` on the server clock. The two clocks share no epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSample {
    /// Client: request frame stamped for the wire.
    pub t1: u64,
    /// Server: request frame decoded off the socket.
    pub t2: u64,
    /// Server: reply frame stamped for the wire.
    pub t3: u64,
    /// Client: reply frame decoded.
    pub t4: u64,
}

impl ClockSample {
    /// Round-trip wire time: total client wait minus server residence.
    /// Offset-free (both subtractions are within one clock), which is
    /// why samples can be ranked by it before any offset is known.
    pub fn rtt_ns(&self) -> u64 {
        let client_wait = self.t4.saturating_sub(self.t1);
        let residence = self.t3.saturating_sub(self.t2);
        client_wait.saturating_sub(residence)
    }

    /// This sample's offset estimate `theta = server - client`, i.e.
    /// `server_ts - theta` maps a server timestamp onto the client
    /// clock. Computed in `i128` so two unrelated monotonic epochs
    /// cannot overflow.
    pub fn offset_ns(&self) -> i64 {
        let outbound = self.t2 as i128 - self.t1 as i128;
        let inbound = self.t3 as i128 - self.t4 as i128;
        ((outbound + inbound) / 2) as i64
    }
}

/// Streaming minimum-RTT offset estimator for one connection.
#[derive(Debug, Clone, Default)]
pub struct OffsetEstimator {
    best: Option<ClockSample>,
    samples: usize,
}

impl OffsetEstimator {
    /// An estimator with no samples yet.
    pub fn new() -> OffsetEstimator {
        OffsetEstimator::default()
    }

    /// Feeds one exchange. Keeps it if its round-trip wire time is the
    /// smallest seen so far.
    pub fn record(&mut self, sample: ClockSample) {
        self.samples += 1;
        let better = match &self.best {
            None => true,
            Some(best) => sample.rtt_ns() < best.rtt_ns(),
        };
        if better {
            self.best = Some(sample);
        }
    }

    /// The offset at the minimum-RTT sample, or `None` before any
    /// sample arrives.
    pub fn offset_ns(&self) -> Option<i64> {
        self.best.map(|s| s.offset_ns())
    }

    /// The smallest round-trip wire time observed.
    pub fn min_rtt_ns(&self) -> Option<u64> {
        self.best.map(|s| s.rtt_ns())
    }

    /// How many exchanges have been fed in.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic two-clock fixture: the server clock runs a fixed
    /// `skew` nanoseconds ahead of the client clock, and each exchange
    /// sees asymmetric one-way delays (outbound != return, varying per
    /// sample). Generates the four timestamps the wire would carry.
    struct TwoClocks {
        skew: i64,
    }

    impl TwoClocks {
        fn exchange(
            &self,
            t1: u64,
            outbound_ns: u64,
            residence_ns: u64,
            return_ns: u64,
        ) -> ClockSample {
            let server = |client_ns: u64| (client_ns as i64 + self.skew) as u64;
            let t2 = server(t1 + outbound_ns);
            let t3 = t2 + residence_ns;
            let t4 = t1 + outbound_ns + residence_ns + return_ns;
            ClockSample { t1, t2, t3, t4 }
        }
    }

    #[test]
    fn symmetric_delays_recover_the_exact_skew() {
        let clocks = TwoClocks { skew: 5_000_000 };
        let mut est = OffsetEstimator::new();
        est.record(clocks.exchange(1_000, 40_000, 10_000, 40_000));
        assert_eq!(est.offset_ns(), Some(5_000_000));
        assert_eq!(est.min_rtt_ns(), Some(80_000));
    }

    #[test]
    fn negative_skew_and_large_epoch_gap_recover_too() {
        // Server's monotonic epoch is hours "behind" the client's.
        let clocks = TwoClocks {
            skew: -3_600_000_000_000,
        };
        let mut est = OffsetEstimator::new();
        est.record(clocks.exchange(7_200_000_000_000, 25_000, 5_000, 25_000));
        assert_eq!(est.offset_ns(), Some(-3_600_000_000_000));
    }

    /// The satellite fixture: known skew, asymmetric per-sample RTT
    /// jitter. Min-RTT selection must land within half the asymmetry
    /// of the *cleanest* sample, far better than a naive average.
    #[test]
    fn asymmetric_jitter_recovers_offset_within_tolerance() {
        let skew = 12_345_678;
        let clocks = TwoClocks { skew };
        let mut est = OffsetEstimator::new();
        // Deterministic "jitter": mostly queue-polluted exchanges with
        // wildly asymmetric delays, plus a handful of clean ones.
        let mut t1 = 1_000u64;
        for i in 0u64..200 {
            let (out, back) = match i % 7 {
                0 => (30_000, 31_000),    // near-clean, 1us asymmetry
                1 => (500_000, 40_000),   // outbound queueing
                2 => (35_000, 900_000),   // return queueing
                3 => (200_000, 200_000),  // loaded but symmetric
                4 => (32_000, 30_500),    // near-clean again
                5 => (1_500_000, 60_000), // badly polluted
                _ => (45_000, 650_000),   // badly polluted
            };
            est.record(clocks.exchange(t1, out, 8_000, back));
            t1 += 2_000_000;
        }
        assert_eq!(est.samples(), 200);
        let recovered = est.offset_ns().unwrap();
        // Cleanest sample has 1.5us asymmetry -> error bound 750ns.
        let err = (recovered - skew).abs();
        assert!(err <= 750, "offset error {err}ns exceeds tolerance");
        // And the winning RTT is one of the clean exchanges.
        assert!(est.min_rtt_ns().unwrap() <= 62_500);
    }

    /// After offset correction, each request's merged timeline must be
    /// monotonic: t1 <= t2' <= t3' <= t4 on the client clock.
    #[test]
    fn corrected_timestamps_are_monotonic_per_request() {
        let clocks = TwoClocks { skew: 987_654_321 };
        let mut est = OffsetEstimator::new();
        let mut samples = Vec::new();
        let mut t1 = 5_000u64;
        for i in 0u64..50 {
            let out = 20_000 + (i % 5) * 7_000;
            let back = 20_000 + ((i + 3) % 5) * 9_000;
            let s = clocks.exchange(t1, out, 4_000, back);
            est.record(s);
            samples.push(s);
            t1 += 500_000;
        }
        let theta = est.offset_ns().unwrap();
        for s in samples {
            let t2c = s.t2 as i128 - theta as i128;
            let t3c = s.t3 as i128 - theta as i128;
            assert!((s.t1 as i128) <= t2c, "send precedes server receive");
            assert!(t2c <= t3c, "server receive precedes server send");
            assert!(t3c <= s.t4 as i128, "server send precedes reply receipt");
        }
    }

    #[test]
    fn empty_estimator_has_no_opinion() {
        let est = OffsetEstimator::new();
        assert_eq!(est.offset_ns(), None);
        assert_eq!(est.min_rtt_ns(), None);
        assert_eq!(est.samples(), 0);
    }
}
