//! Low-overhead span tracing for the gadget harness.
//!
//! The metrics layer (`gadget-obs`) answers "how much"; this crate
//! answers "when, and overlapping what". Every participating thread
//! owns a fixed-size lock-free ring buffer of completed spans
//! (timestamp + duration + [`Category`] + one `u64` argument). Writers
//! record with a handful of relaxed atomic stores and never block;
//! when tracing is disabled the entire record path is a single relaxed
//! load of a global flag.
//!
//! Spans come in three flavours:
//!
//! * **Sampled foreground ops** — `get`/`put`/`merge`/`delete`/`scan`,
//!   recorded by the obs `Timer` for the same one-in-`2^shift` calls it
//!   already times, so the hot path pays nothing extra.
//! * **Always-on background work** — memtable flush, compaction, WAL
//!   fsync, block-cache fill, hash-log GC, B-tree page writeback.
//!   These are rare and long relative to ops, so they are recorded
//!   unconditionally while a session is active.
//! * **Phases** — coarse driver/replayer stages (preload, replay,
//!   online, drive) that frame the timeline.
//!
//! A [`TraceSession`] turns recording on, and [`TraceSession::finish`]
//! turns it off and drains every ring into a [`TraceLog`], which can be
//! exported as Chrome trace-event JSON ([`TraceLog::write_chrome`],
//! loadable in Perfetto / `chrome://tracing`) or reduced to a
//! tail-latency [`attribution`] report: for the sampled ops slower than
//! p99, which background work was running at the same time?

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

pub mod attribution;
pub mod chrome;
pub mod clock;
pub mod merge;

pub use attribution::AttributionReport;
pub use clock::{ClockSample, OffsetEstimator};
pub use merge::{merge_traces, MergeOutcome};

// ---------------------------------------------------------------------------
// Categories
// ---------------------------------------------------------------------------

/// What a span measured. Stored in the ring as a `u64` discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// Sampled foreground `get`.
    OpGet = 0,
    /// Sampled foreground `put`.
    OpPut = 1,
    /// Sampled foreground `merge`.
    OpMerge = 2,
    /// Sampled foreground `delete`.
    OpDelete = 3,
    /// Sampled foreground `scan`.
    OpScan = 4,
    /// LSM memtable flush to an L0 table (arg: entries flushed).
    Flush = 5,
    /// LSM compaction (arg: source level).
    Compaction = 6,
    /// WAL `sync_data` (arg: bytes appended since last sync).
    WalFsync = 7,
    /// Block-cache miss filled from disk (arg: block bytes).
    CacheFill = 8,
    /// Hash-log shard GC / region compaction (arg: dead bytes reclaimed).
    HashlogGc = 9,
    /// B-tree dirty page written back (arg: page number).
    PageWriteback = 10,
    /// Driver/replayer phase (arg: one of the [`phase`] constants).
    Phase = 11,
    /// `gadget-server` request handled over the wire (arg: connection
    /// id), recorded by the connection worker around each op batch so a
    /// timeline shows which connections were in flight when a client op
    /// went slow.
    NetRequest = 12,
    /// A whole live reshard: from trigger to post-flip cleanup (arg:
    /// slots moved). Background, so >p99 attribution can blame a
    /// migration for the tail it causes.
    Reshard = 13,
    /// One serialized slot-copy chunk inside a reshard's transfer
    /// window (arg: keys in the chunk). These are the spans that
    /// actually contend with foreground writes, so they — not the
    /// enclosing [`Category::Reshard`] — localize migration-induced
    /// stalls on the timeline.
    SlotMigration = 14,
    /// One traced client-side remote request, end to end: from call
    /// entry to reply decoded (arg: client connection number, arg2:
    /// wire trace sequence). The parent span the decomposition
    /// segments hang under on a merged timeline.
    NetOp = 15,
    /// Client-side request preparation: call entry to the moment the
    /// request frame is stamped for the wire (lock wait + encode).
    /// The `client_queue` decomposition segment (arg2: sequence).
    NetSend = 16,
    /// Client-side wire wait: request stamped to reply received — the
    /// round trip including server residence (arg2: sequence).
    NetWait = 17,
    /// Server-side queue wait for one traced request: frame decoded
    /// off the socket to dequeued by the connection worker (arg:
    /// server connection id, arg2: sequence).
    NetQueue = 18,
    /// Server-side store service for one traced request: the
    /// `apply_batch` call itself (arg: server connection id, arg2:
    /// sequence). The `service` decomposition segment.
    NetApply = 19,
    /// Server-side response write for one traced request: reply
    /// stamped to flushed into the kernel (arg: server connection id,
    /// arg2: sequence).
    NetWrite = 20,
}

/// All categories, in discriminant order.
pub const CATEGORIES: [Category; 21] = [
    Category::OpGet,
    Category::OpPut,
    Category::OpMerge,
    Category::OpDelete,
    Category::OpScan,
    Category::Flush,
    Category::Compaction,
    Category::WalFsync,
    Category::CacheFill,
    Category::HashlogGc,
    Category::PageWriteback,
    Category::Phase,
    Category::NetRequest,
    Category::Reshard,
    Category::SlotMigration,
    Category::NetOp,
    Category::NetSend,
    Category::NetWait,
    Category::NetQueue,
    Category::NetApply,
    Category::NetWrite,
];

impl Category {
    /// Stable snake-case name, used in trace exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            Category::OpGet => "get",
            Category::OpPut => "put",
            Category::OpMerge => "merge",
            Category::OpDelete => "delete",
            Category::OpScan => "scan",
            Category::Flush => "flush",
            Category::Compaction => "compaction",
            Category::WalFsync => "wal_fsync",
            Category::CacheFill => "cache_fill",
            Category::HashlogGc => "hashlog_gc",
            Category::PageWriteback => "page_writeback",
            Category::Phase => "phase",
            Category::NetRequest => "net_request",
            Category::Reshard => "reshard",
            Category::SlotMigration => "slot_migration",
            Category::NetOp => "net_op",
            Category::NetSend => "net_send",
            Category::NetWait => "net_wait",
            Category::NetQueue => "net_queue",
            Category::NetApply => "net_apply",
            Category::NetWrite => "net_write",
        }
    }

    /// Whether this is a sampled foreground state-op span.
    pub fn is_op(self) -> bool {
        matches!(
            self,
            Category::OpGet
                | Category::OpPut
                | Category::OpMerge
                | Category::OpDelete
                | Category::OpScan
        )
    }

    /// Whether this is a per-request network span (a traced client op
    /// or one of its decomposition segments). These are timeline
    /// detail, not background work: a slow op trivially overlaps its
    /// own segments, so attribution must never count them as causes.
    pub fn is_net(self) -> bool {
        matches!(
            self,
            Category::NetOp
                | Category::NetSend
                | Category::NetWait
                | Category::NetQueue
                | Category::NetApply
                | Category::NetWrite
        )
    }

    /// Whether this is an always-on background-work span.
    pub fn is_background(self) -> bool {
        !self.is_op() && !self.is_net() && self != Category::Phase
    }

    /// The category whose stable snake-case name is `name`, if any.
    /// Inverse of [`Category::name`]; what trace-file consumers (the
    /// merge subcommand) use to rebuild spans from exported JSON.
    pub fn from_name(name: &str) -> Option<Category> {
        CATEGORIES.into_iter().find(|c| c.name() == name)
    }

    fn from_u64(raw: u64) -> Option<Category> {
        CATEGORIES.get(raw as usize).copied()
    }
}

/// Arguments for [`Category::Phase`] spans.
pub mod phase {
    /// Store preload before a timed run.
    pub const PRELOAD: u64 = 0;
    /// Recorded-trace replay.
    pub const REPLAY: u64 = 1;
    /// Online (generate-and-apply) run.
    pub const ONLINE: u64 = 2;
    /// Core driver event loop.
    pub const DRIVE: u64 = 3;

    /// Display name for a phase argument.
    pub fn name(arg: u64) -> &'static str {
        match arg {
            PRELOAD => "preload",
            REPLAY => "replay",
            ONLINE => "online",
            DRIVE => "drive",
            _ => "phase",
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread rings
// ---------------------------------------------------------------------------

/// Completed spans each ring can hold before the oldest are overwritten.
pub const RING_CAPACITY: usize = 1 << 14;

struct Slot {
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    arg: AtomicU64,
    arg2: AtomicU64,
    cat: AtomicU64,
    shard: AtomicU64,
}

impl Slot {
    const fn empty() -> Slot {
        Slot {
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            arg2: AtomicU64::new(0),
            cat: AtomicU64::new(u64::MAX),
            shard: AtomicU64::new(NO_SHARD),
        }
    }
}

/// Single-producer ring of completed spans. The owning thread is the
/// only writer; [`TraceSession::finish`] is the only reader and runs
/// with recording disabled, so relaxed slot stores published by a
/// release head bump are enough.
struct Ring {
    slots: Box<[Slot]>,
    head: AtomicU64,
    /// Cumulative spans overwritten before a session drain could read
    /// them, across every session this ring participated in. Surfaced
    /// by [`ring_stats`] so span loss is visible on metrics endpoints.
    dropped: AtomicU64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            slots: (0..RING_CAPACITY).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    fn push(&self, cat: Category, arg: u64, arg2: u64, start_ns: u64, dur_ns: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head as usize) & (RING_CAPACITY - 1)];
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.dur_ns.store(dur_ns, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.arg2.store(arg2, Ordering::Relaxed);
        slot.shard.store(current_shard(), Ordering::Relaxed);
        slot.cat.store(cat as u64, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Reads the spans recorded in `[from_head, current head)`, oldest
    /// first, plus how many of them the ring had already overwritten.
    fn drain_since(&self, from_head: u64) -> (Vec<RawSpan>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let oldest = from_head.max(head.saturating_sub(RING_CAPACITY as u64));
        let dropped = oldest - from_head.min(oldest);
        self.dropped.fetch_add(dropped, Ordering::Relaxed);
        let mut out = Vec::with_capacity((head - oldest) as usize);
        for i in oldest..head {
            let slot = &self.slots[(i as usize) & (RING_CAPACITY - 1)];
            let Some(cat) = Category::from_u64(slot.cat.load(Ordering::Relaxed)) else {
                continue;
            };
            out.push(RawSpan {
                cat,
                arg: slot.arg.load(Ordering::Relaxed),
                arg2: slot.arg2.load(Ordering::Relaxed),
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                shard: slot.shard.load(Ordering::Relaxed),
            });
        }
        (out, dropped)
    }
}

struct RawSpan {
    cat: Category,
    arg: u64,
    arg2: u64,
    start_ns: u64,
    dur_ns: u64,
    shard: u64,
}

struct RingHandle {
    tid: u64,
    thread_name: String,
    ring: Arc<Ring>,
}

// ---------------------------------------------------------------------------
// Globals
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static REGISTRY: Mutex<Vec<RingHandle>> = Mutex::new(Vec::new());
static SESSION_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    static RING: Arc<Ring> = register_thread();
}

fn register_thread() -> Arc<Ring> {
    let ring = Arc::new(Ring::new());
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let thread_name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    lock(&REGISTRY).push(RingHandle {
        tid,
        thread_name,
        ring: ring.clone(),
    });
    ring
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether a trace session is currently recording. One relaxed load;
/// every record path checks this first, so a disabled tracer costs a
/// single branch.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Shard context
// ---------------------------------------------------------------------------

/// Shard value recorded for spans outside any shard context.
pub const NO_SHARD: u64 = u64::MAX;

thread_local! {
    static CURRENT_SHARD: Cell<u64> = const { Cell::new(NO_SHARD) };
}

/// The shard id spans recorded by this thread are tagged with
/// ([`NO_SHARD`] when untagged).
#[inline]
pub fn current_shard() -> u64 {
    CURRENT_SHARD.with(Cell::get)
}

/// Permanently tags this thread's spans with `shard`.
///
/// Store-owned background threads (per-shard LSM workers) call this once
/// at startup so their flush/compaction spans can be attributed to the
/// shard that scheduled them.
pub fn set_thread_shard(shard: u64) {
    CURRENT_SHARD.with(|s| s.set(shard));
}

/// Tags spans recorded by this thread with `shard` until the guard
/// drops, then restores the previous tag.
///
/// The sharded store wraps every routed call in one of these, so
/// foreground op spans (and WAL fsyncs performed on the caller's thread)
/// carry the shard that served them even though one caller thread talks
/// to many shards.
#[must_use = "the scope untags the thread when dropped"]
pub fn shard_scope(shard: u64) -> ShardScope {
    let previous = CURRENT_SHARD.with(|s| s.replace(shard));
    ShardScope { previous }
}

/// RAII guard restoring the previous thread shard tag on drop.
pub struct ShardScope {
    previous: u64,
}

impl Drop for ShardScope {
    fn drop(&mut self) {
        CURRENT_SHARD.with(|s| s.set(self.previous));
    }
}

/// Nanoseconds since the process-wide trace epoch (first use).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Records an already-measured span. No-op while tracing is disabled.
#[inline]
pub fn record_complete(cat: Category, arg: u64, start_ns: u64, dur_ns: u64) {
    record_complete2(cat, arg, 0, start_ns, dur_ns);
}

/// Like [`record_complete`] but with a second argument — the wire
/// trace sequence for per-request network spans, so client and server
/// sides of one request can be joined across trace files.
#[inline]
pub fn record_complete2(cat: Category, arg: u64, arg2: u64, start_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    RING.with(|ring| ring.push(cat, arg, arg2, start_ns, dur_ns));
}

/// Records a span of `dur_ns` that ends now — for callers that already
/// timed the work with their own clock (e.g. the obs `Timer`).
#[inline]
pub fn record_ending_now(cat: Category, arg: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    let end = now_ns();
    RING.with(|ring| ring.push(cat, arg, 0, end.saturating_sub(dur_ns), dur_ns));
}

/// Starts a span that is recorded when the guard drops. Cheap no-op
/// (no clock read) while tracing is disabled.
#[inline]
pub fn span(cat: Category, arg: u64) -> SpanGuard {
    if enabled() {
        SpanGuard {
            cat,
            arg,
            start_ns: now_ns(),
            armed: true,
        }
    } else {
        SpanGuard {
            cat,
            arg,
            start_ns: 0,
            armed: false,
        }
    }
}

/// RAII span: records `[creation, drop)` into the current thread's
/// ring, if tracing was enabled at creation.
#[must_use = "a span guard records on drop; binding it to `_` drops immediately"]
pub struct SpanGuard {
    cat: Category,
    arg: u64,
    start_ns: u64,
    armed: bool,
}

impl SpanGuard {
    /// Updates the span's argument before it is recorded (e.g. bytes
    /// moved, once known).
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = arg;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            let dur = now_ns().saturating_sub(self.start_ns);
            RING.with(|ring| ring.push(self.cat, self.arg, 0, self.start_ns, dur));
        }
    }
}

// ---------------------------------------------------------------------------
// Ring pressure stats
// ---------------------------------------------------------------------------

/// Per-thread ring-buffer pressure counters, for metrics export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingStats {
    /// Trace-local id of the ring's owning thread.
    pub tid: u64,
    /// Name of the ring's owning thread.
    pub thread_name: String,
    /// Spans recorded into this ring since thread registration.
    pub recorded: u64,
    /// Spans overwritten before a session drain could read them,
    /// cumulative across sessions. Non-zero means the ring wrapped
    /// under pressure and the trace silently lost spans.
    pub dropped: u64,
}

/// Snapshot of every registered ring's pressure counters. Cheap (two
/// relaxed loads per ring); callable while a session is recording, so
/// a metrics endpoint can surface span loss live.
pub fn ring_stats() -> Vec<RingStats> {
    lock(&REGISTRY)
        .iter()
        .map(|h| RingStats {
            tid: h.tid,
            thread_name: h.thread_name.clone(),
            recorded: h.ring.head.load(Ordering::Relaxed),
            dropped: h.ring.dropped.load(Ordering::Relaxed),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Sessions and logs
// ---------------------------------------------------------------------------

/// Begins recording. Sessions are serialized process-wide (the guard
/// holds a lock) so concurrent tests cannot pollute each other's logs.
pub fn start_session() -> TraceSession {
    let guard = lock(&SESSION_LOCK);
    let start_heads: Vec<(u64, u64)> = lock(&REGISTRY)
        .iter()
        .map(|h| (h.tid, h.ring.head.load(Ordering::Acquire)))
        .collect();
    let start_ns = now_ns();
    ENABLED.store(true, Ordering::SeqCst);
    TraceSession {
        _guard: guard,
        start_ns,
        start_heads,
    }
}

/// An active recording session. Dropping it without calling
/// [`TraceSession::finish`] stops recording and discards the spans.
pub struct TraceSession {
    _guard: MutexGuard<'static, ()>,
    start_ns: u64,
    start_heads: Vec<(u64, u64)>,
}

impl TraceSession {
    /// Stops recording and collects every thread's spans into a log.
    pub fn finish(self) -> TraceLog {
        ENABLED.store(false, Ordering::SeqCst);
        let end_ns = now_ns();
        let mut events = Vec::new();
        let mut threads = Vec::new();
        let mut dropped = 0u64;
        for handle in lock(&REGISTRY).iter() {
            let from = self
                .start_heads
                .iter()
                .find(|(tid, _)| *tid == handle.tid)
                .map(|(_, head)| *head)
                .unwrap_or(0);
            let (raw, ring_dropped) = handle.ring.drain_since(from);
            dropped += ring_dropped;
            if !raw.is_empty() {
                threads.push((handle.tid, handle.thread_name.clone()));
            }
            events.extend(raw.into_iter().map(|s| Span {
                cat: s.cat,
                arg: s.arg,
                arg2: s.arg2,
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
                tid: handle.tid,
                shard: s.shard,
            }));
        }
        events.sort_by_key(|e| (e.start_ns, e.tid));
        TraceLog {
            events,
            threads,
            dropped,
            session_start_ns: self.start_ns,
            session_end_ns: end_ns,
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// One completed span, as drained from a ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What was measured.
    pub cat: Category,
    /// Category-specific argument (level, bytes, shard, page, phase).
    pub arg: u64,
    /// Second argument: the wire trace sequence for per-request
    /// network spans (see [`Category::is_net`]), `0` elsewhere.
    pub arg2: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Trace-local id of the recording thread.
    pub tid: u64,
    /// Shard the span belongs to, or [`NO_SHARD`] if it was recorded
    /// outside any shard context.
    pub shard: u64,
}

impl Span {
    /// Exclusive end of the span.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    /// Whether two spans overlap in time (thread-agnostic; a
    /// zero-duration span overlaps anything covering its instant).
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start_ns <= other.end_ns() && other.start_ns <= self.end_ns()
    }

    /// Whether the span was recorded inside a shard context.
    pub fn has_shard(&self) -> bool {
        self.shard != NO_SHARD
    }
}

/// Everything one session recorded, ready for export or analysis.
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// All spans, sorted by start time.
    pub events: Vec<Span>,
    /// `(tid, thread name)` for every thread that recorded spans.
    pub threads: Vec<(u64, String)>,
    /// Spans overwritten before they could be drained (ring wrapped).
    pub dropped: u64,
    /// Session start, nanoseconds since the trace epoch.
    pub session_start_ns: u64,
    /// Session end, nanoseconds since the trace epoch.
    pub session_end_ns: u64,
}

impl TraceLog {
    /// Spans of one category.
    pub fn spans_of(&self, cat: Category) -> impl Iterator<Item = &Span> {
        self.events.iter().filter(move |e| e.cat == cat)
    }

    /// Builds the tail-latency attribution report for this log.
    pub fn attribution(&self) -> AttributionReport {
        attribution::attribute(self)
    }

    /// Serializes the log as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }

    /// Writes Chrome trace-event JSON to `path` (Perfetto-loadable).
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_dropped() {
        let session = start_session();
        let log = session.finish();
        assert!(!enabled());
        record_complete(Category::Flush, 0, 1, 1);
        let _ = log;
        let log2 = start_session().finish();
        assert!(log2.events.is_empty());
    }

    #[test]
    fn session_captures_spans_from_multiple_threads() {
        let session = start_session();
        record_complete(Category::OpGet, 0, now_ns(), 50);
        let handle = std::thread::Builder::new()
            .name("bg-test".into())
            .spawn(|| {
                let mut s = span(Category::Compaction, 2);
                s.set_arg(3);
                drop(s);
            })
            .unwrap();
        handle.join().unwrap();
        let log = session.finish();
        assert_eq!(log.spans_of(Category::OpGet).count(), 1);
        let comp: Vec<&Span> = log.spans_of(Category::Compaction).collect();
        assert_eq!(comp.len(), 1);
        assert_eq!(comp[0].arg, 3);
        assert!(log.threads.iter().any(|(_, n)| n == "bg-test"));
        let tids: std::collections::HashSet<u64> = log.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "two distinct threads recorded");
    }

    #[test]
    fn sequential_sessions_do_not_leak_spans() {
        let first = start_session();
        record_complete(Category::Flush, 0, now_ns(), 10);
        let log1 = first.finish();
        assert_eq!(log1.spans_of(Category::Flush).count(), 1);

        let second = start_session();
        record_complete(Category::WalFsync, 0, now_ns(), 10);
        let log2 = second.finish();
        assert_eq!(log2.spans_of(Category::Flush).count(), 0);
        assert_eq!(log2.spans_of(Category::WalFsync).count(), 1);
    }

    #[test]
    fn ring_wrap_counts_dropped_spans() {
        let session = start_session();
        let n = RING_CAPACITY as u64 + 100;
        for i in 0..n {
            record_complete(Category::OpPut, i, i, 1);
        }
        let log = session.finish();
        let kept = log.spans_of(Category::OpPut).count() as u64;
        assert_eq!(kept, RING_CAPACITY as u64);
        assert_eq!(log.dropped, 100);
        // The survivors are the newest spans.
        assert!(log.spans_of(Category::OpPut).all(|s| s.arg >= 100));
    }

    #[test]
    fn span_guard_records_duration() {
        let session = start_session();
        {
            let _span = span(Category::HashlogGc, 7);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let log = session.finish();
        let gc: Vec<&Span> = log.spans_of(Category::HashlogGc).collect();
        assert_eq!(gc.len(), 1);
        assert_eq!(gc[0].arg, 7);
        assert!(
            gc[0].dur_ns >= 1_000_000,
            "slept 2ms, span {}ns",
            gc[0].dur_ns
        );
    }

    #[test]
    fn overlap_predicate() {
        let mk = |start, dur| Span {
            cat: Category::OpGet,
            arg: 0,
            arg2: 0,
            start_ns: start,
            dur_ns: dur,
            tid: 1,
            shard: NO_SHARD,
        };
        assert!(mk(0, 10).overlaps(&mk(5, 10)));
        assert!(mk(5, 10).overlaps(&mk(0, 10)));
        assert!(mk(0, 10).overlaps(&mk(10, 5)), "touching counts");
        assert!(!mk(0, 10).overlaps(&mk(11, 5)));
        assert!(mk(5, 0).overlaps(&mk(0, 10)), "instant inside window");
    }

    #[test]
    fn shard_scope_tags_spans_and_restores() {
        let session = start_session();
        record_complete(Category::OpGet, 0, now_ns(), 10);
        {
            let _outer = shard_scope(3);
            record_complete(Category::OpPut, 0, now_ns(), 10);
            {
                let _inner = shard_scope(5);
                record_complete(Category::WalFsync, 0, now_ns(), 10);
            }
            // Inner scope restored the outer tag.
            record_complete(Category::OpDelete, 0, now_ns(), 10);
        }
        record_complete(Category::OpMerge, 0, now_ns(), 10);
        let log = session.finish();
        let shard_of = |cat| log.spans_of(cat).next().unwrap().shard;
        assert_eq!(shard_of(Category::OpGet), NO_SHARD);
        assert_eq!(shard_of(Category::OpPut), 3);
        assert_eq!(shard_of(Category::WalFsync), 5);
        assert_eq!(shard_of(Category::OpDelete), 3);
        assert_eq!(shard_of(Category::OpMerge), NO_SHARD);
        assert!(!log.spans_of(Category::OpGet).next().unwrap().has_shard());
        assert!(log.spans_of(Category::OpPut).next().unwrap().has_shard());
    }

    #[test]
    fn worker_threads_keep_a_permanent_shard_tag() {
        let session = start_session();
        let handle = std::thread::Builder::new()
            .name("shard-worker-2".into())
            .spawn(|| {
                set_thread_shard(2);
                record_complete(Category::Flush, 10, now_ns(), 100);
                record_complete(Category::Compaction, 0, now_ns(), 100);
            })
            .unwrap();
        handle.join().unwrap();
        let log = session.finish();
        assert_eq!(log.spans_of(Category::Flush).next().unwrap().shard, 2);
        assert_eq!(log.spans_of(Category::Compaction).next().unwrap().shard, 2);
    }

    #[test]
    fn category_names_are_stable() {
        for cat in CATEGORIES {
            assert_eq!(Category::from_u64(cat as u64), Some(cat));
            assert_eq!(Category::from_name(cat.name()), Some(cat));
            assert!(!cat.name().is_empty());
        }
        assert!(Category::OpScan.is_op());
        assert!(!Category::OpScan.is_background());
        assert!(Category::CacheFill.is_background());
        assert!(!Category::Phase.is_background());
        assert!(!Category::Phase.is_op());
        // Per-request network spans are timeline detail, never
        // background: a slow op always overlaps its own segments, so
        // counting them as causes would make attribution circular.
        for cat in [
            Category::NetOp,
            Category::NetSend,
            Category::NetWait,
            Category::NetQueue,
            Category::NetApply,
            Category::NetWrite,
        ] {
            assert!(cat.is_net());
            assert!(!cat.is_background(), "{cat:?} must not be background");
            assert!(!cat.is_op());
        }
        // The server's whole-request span stays background, as it has
        // been since it was introduced.
        assert!(Category::NetRequest.is_background());
        assert!(!Category::NetRequest.is_net());
        assert_eq!(Category::from_name("no_such_category"), None);
    }

    #[test]
    fn arg2_survives_the_ring() {
        let session = start_session();
        record_complete2(Category::NetQueue, 3, 77, now_ns(), 40);
        record_complete(Category::Flush, 5, now_ns(), 10);
        let log = session.finish();
        let q = log.spans_of(Category::NetQueue).next().unwrap();
        assert_eq!((q.arg, q.arg2), (3, 77));
        let f = log.spans_of(Category::Flush).next().unwrap();
        assert_eq!(f.arg2, 0, "single-arg records leave arg2 at 0");
    }

    #[test]
    fn ring_stats_surface_per_thread_drops() {
        let before: u64 = ring_stats()
            .iter()
            .filter(|s| s.tid == current_tid())
            .map(|s| s.dropped)
            .sum();
        let session = start_session();
        let n = RING_CAPACITY as u64 + 250;
        for i in 0..n {
            record_complete(Category::OpGet, i, i, 1);
        }
        let log = session.finish();
        assert_eq!(log.dropped, 250);
        let stats = ring_stats();
        let mine = stats
            .iter()
            .find(|s| s.tid == current_tid())
            .expect("this thread's ring is registered");
        assert_eq!(mine.dropped - before, 250, "drain accumulated the loss");
        assert!(mine.recorded >= n);
        assert!(!mine.thread_name.is_empty());
    }

    /// The trace-local tid of the calling thread (test helper; rings
    /// register lazily on first record).
    fn current_tid() -> u64 {
        RING.with(|ring| {
            let target = Arc::as_ptr(ring) as usize;
            lock(&REGISTRY)
                .iter()
                .find(|h| Arc::as_ptr(&h.ring) as usize == target)
                .map(|h| h.tid)
                .expect("calling thread is registered")
        })
    }
}
