//! Joining a client trace file and a server trace file into one
//! clock-aligned timeline.
//!
//! The two sides of a `gadget drive` run export independent Chrome
//! trace files whose timestamps come from unrelated monotonic clocks.
//! Traced requests appear in both: the client records `net_op` /
//! `net_send` / `net_wait` spans and the server records `net_request` /
//! `net_queue` / `net_apply` / `net_write` spans, all tagged with the
//! same wire trace sequence (`args.seq`). Each matched request yields a
//! four-timestamp [`ClockSample`]; a per-connection [`OffsetEstimator`]
//! reduces them to the minimum-RTT offset, and the median across
//! connections becomes the process-wide shift applied to every server
//! event. The output is a single trace-event JSON with the client as
//! pid 1 and the shifted server as pid 2, so Perfetto shows server
//! queue/apply/write spans nested inside the client op that caused
//! them — plus a cross-process [`AttributionReport`] blaming slow
//! client ops on the server background work they overlapped.

use serde::Value;

use crate::attribution::{self, AttributionReport};
use crate::clock::{ClockSample, OffsetEstimator};
use crate::{Category, Span, TraceLog, NO_SHARD};

/// One parsed trace-event, in nanoseconds.
#[derive(Debug, Clone)]
struct Event {
    name: String,
    kind: String,
    ts_ns: i128,
    dur_ns: u64,
    tid: u64,
    cat: Option<Category>,
    conn: u64,
    seq: u64,
    shard: u64,
    /// The original `args` object, re-emitted verbatim so merged
    /// events keep category-specific arguments (compaction level,
    /// flushed entries, ...) the join itself does not care about.
    args: Value,
}

/// One side's parsed trace: spans plus thread-name metadata.
struct Side {
    events: Vec<Event>,
    threads: Vec<(u64, String)>,
}

/// What [`merge_traces`] produced, plus the joint statistics the CLI
/// prints and CI asserts on.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged Chrome trace-event JSON (client pid 1, offset-shifted
    /// server pid 2).
    pub merged_json: String,
    /// Traced client requests (`net_op` spans) in the client file.
    pub client_requests: usize,
    /// Requests found on both sides and joined by sequence number.
    pub matched: usize,
    /// Server connections that contributed at least one clock sample.
    pub connections: usize,
    /// Median of the per-connection minimum-RTT offset estimates:
    /// `server - client`, ns. Each connection's request spans shift by
    /// that connection's own estimate; background spans (which belong
    /// to no connection) shift by this median.
    pub offset_ns: i64,
    /// Spread (max - min) of the per-connection offset estimates — a
    /// consistency check; large spread means the estimates are noise.
    pub offset_spread_ns: u64,
    /// Matched requests whose shifted server instants — receive and
    /// wire send stamp — sit inside the client `net_op` span (1 us
    /// grace for export rounding). The request span's tail-end stamp
    /// is excluded: it races with the client's read of the response.
    pub nested: usize,
    /// Worst per-request `|segment sum - end_to_end| / end_to_end`
    /// over matched requests with all four segments present.
    pub max_sum_dev_frac: f64,
    /// Mean of the same deviation.
    pub mean_sum_dev_frac: f64,
    /// Cross-process tail attribution over the merged timeline: slow
    /// client ops vs. overlapping server background spans.
    pub attribution: AttributionReport,
}

impl MergeOutcome {
    /// Human-readable summary block, printed by `gadget trace merge`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "merged {} of {} traced client requests across {} connections\n",
            self.matched, self.client_requests, self.connections
        ));
        out.push_str(&format!(
            "clock offset (server - client): {:.3} ms, spread {:.3} us\n",
            self.offset_ns as f64 / 1e6,
            self.offset_spread_ns as f64 / 1e3,
        ));
        out.push_str(&format!(
            "nesting: {}/{} server request spans inside their client op\n",
            self.nested, self.matched
        ));
        out.push_str(&format!(
            "segment-sum check: max deviation {:.2}%, mean {:.2}%\n",
            self.max_sum_dev_frac * 100.0,
            self.mean_sum_dev_frac * 100.0
        ));
        out.push_str(&self.attribution.to_table());
        out
    }
}

fn parse_side(json: &str, which: &str) -> Result<Side, String> {
    let doc: Value =
        serde_json::from_str(json).map_err(|e| format!("{which} trace: invalid JSON: {e}"))?;
    let Some(Value::Array(raw)) = doc.get("traceEvents") else {
        return Err(format!("{which} trace: missing traceEvents array"));
    };
    let mut events = Vec::new();
    let mut threads = Vec::new();
    for ev in raw {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or_default();
        let tid = ev.get("tid").and_then(Value::as_u64).unwrap_or(0);
        if ph == "M" {
            if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                if let Some(name) = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                {
                    threads.push((tid, name.to_string()));
                }
            }
            continue;
        }
        if ph != "X" {
            continue;
        }
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{which} trace: X event without a name"))?
            .to_string();
        let ts_us = ev
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{which} trace: X event without ts"))?;
        let dur_us = ev.get("dur").and_then(Value::as_f64).unwrap_or(0.0);
        let args = ev.get("args");
        let arg_u64 = |key: &str| {
            args.and_then(|a| a.get(key))
                .and_then(Value::as_u64)
                .unwrap_or(0)
        };
        events.push(Event {
            cat: Category::from_name(&name),
            kind: ev
                .get("cat")
                .and_then(Value::as_str)
                .unwrap_or("background")
                .to_string(),
            ts_ns: (ts_us * 1_000.0).round() as i128,
            dur_ns: (dur_us * 1_000.0).round().max(0.0) as u64,
            tid,
            conn: arg_u64("conn"),
            seq: arg_u64("seq"),
            shard: args
                .and_then(|a| a.get("shard"))
                .and_then(Value::as_u64)
                .unwrap_or(NO_SHARD),
            args: args.cloned().unwrap_or(Value::Object(Vec::new())),
            name,
        });
    }
    Ok(Side { events, threads })
}

/// Index of `cat` events by wire sequence (first occurrence wins) —
/// the join below runs once per traced request, so lookups must not
/// rescan the whole event list.
fn by_seq(events: &[Event], cat: Category) -> std::collections::HashMap<u64, &Event> {
    let mut index = std::collections::HashMap::new();
    for e in events {
        if e.cat == Some(cat) && e.seq != 0 {
            index.entry(e.seq).or_insert(e);
        }
    }
    index
}

fn micros(ns: i128) -> Value {
    Value::Float(ns as f64 / 1_000.0)
}

fn meta(pid: u64, name: &str, meta_name: &str, tid: Option<u64>) -> Value {
    let mut fields = vec![
        ("name".into(), Value::Str(meta_name.to_string())),
        ("ph".into(), Value::Str("M".to_string())),
        ("pid".into(), Value::UInt(pid as u128)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Value::UInt(tid as u128)));
    }
    fields.push((
        "args".into(),
        Value::Object(vec![("name".into(), Value::Str(name.to_string()))]),
    ));
    Value::Object(fields)
}

fn emit(event: &Event, pid: u64, ts_ns: i128) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(event.name.clone())),
        ("cat".into(), Value::Str(event.kind.clone())),
        ("ph".into(), Value::Str("X".to_string())),
        ("ts".into(), micros(ts_ns)),
        ("dur".into(), micros(event.dur_ns as i128)),
        ("pid".into(), Value::UInt(pid as u128)),
        ("tid".into(), Value::UInt(event.tid as u128)),
        ("args".into(), event.args.clone()),
    ])
}

/// Joins `client_json` and `server_json` (both Chrome trace-event
/// files exported by this crate) into one clock-aligned timeline. See
/// the module docs for the mechanics; fails only on malformed input or
/// when no request appears on both sides (without a single match there
/// is no clock sample, hence no alignment).
pub fn merge_traces(client_json: &str, server_json: &str) -> Result<MergeOutcome, String> {
    let client = parse_side(client_json, "client")?;
    let server = parse_side(server_json, "server")?;

    // --- join traced requests by wire sequence -------------------------
    let client_ops: Vec<&Event> = client
        .events
        .iter()
        .filter(|e| e.cat == Some(Category::NetOp) && e.seq != 0)
        .collect();

    struct Match {
        t0: i128,
        t4: i128,
        sample: ClockSample,
        conn: u64,
        /// Server-side dequeue instant and apply duration, if present.
        apply: Option<(i128, u64)>,
        client_queue: Option<u64>,
        request_start: i128,
    }

    let waits = by_seq(&client.events, Category::NetWait);
    let sends = by_seq(&client.events, Category::NetSend);
    let requests = by_seq(&server.events, Category::NetRequest);
    let writes = by_seq(&server.events, Category::NetWrite);
    let applies = by_seq(&server.events, Category::NetApply);

    let mut matches: Vec<Match> = Vec::new();
    for op in &client_ops {
        let seq = op.seq;
        let Some(wait) = waits.get(&seq) else {
            continue;
        };
        let Some(request) = requests.get(&seq) else {
            continue;
        };
        let Some(write) = writes.get(&seq) else {
            continue;
        };
        let sample = ClockSample {
            t1: wait.ts_ns.max(0) as u64,
            t2: request.ts_ns.max(0) as u64,
            t3: write.ts_ns.max(0) as u64,
            t4: (wait.ts_ns + wait.dur_ns as i128).max(0) as u64,
        };
        matches.push(Match {
            t0: op.ts_ns,
            t4: op.ts_ns + op.dur_ns as i128,
            sample,
            conn: request.conn,
            apply: applies.get(&seq).map(|a| (a.ts_ns, a.dur_ns)),
            client_queue: sends.get(&seq).map(|s| s.dur_ns),
            request_start: request.ts_ns,
        });
    }
    if matches.is_empty() {
        return Err(
            "no request appears in both traces (was tracing enabled on both sides?)".to_string(),
        );
    }

    // --- per-connection offsets, medianed into a global shift ----------
    let mut estimators: Vec<(u64, OffsetEstimator)> = Vec::new();
    for m in &matches {
        match estimators.iter_mut().find(|(conn, _)| *conn == m.conn) {
            Some((_, est)) => est.record(m.sample),
            None => {
                let mut est = OffsetEstimator::new();
                est.record(m.sample);
                estimators.push((m.conn, est));
            }
        }
    }
    let mut offsets: Vec<i64> = estimators
        .iter()
        .filter_map(|(_, est)| est.offset_ns())
        .collect();
    offsets.sort_unstable();
    let offset_ns = offsets[offsets.len() / 2];
    let offset_spread_ns = (offsets[offsets.len() - 1] - offsets[0]).unsigned_abs();
    let theta = offset_ns as i128;
    // Request spans shift by *their connection's* estimate: per-conn
    // estimates differ by queueing asymmetry at the minimum-RTT sample
    // (the reported spread), and a request with a short outbound leg
    // won't nest under a neighbour connection's error. Background work
    // belongs to no connection and takes the median.
    let conn_offset = |conn: u64| -> i128 {
        estimators
            .iter()
            .find(|(c, _)| *c == conn)
            .and_then(|(_, est)| est.offset_ns())
            .map(|o| o as i128)
            .unwrap_or(theta)
    };

    // --- validation: nesting + telescoping segment sums ----------------
    const GRACE_NS: i128 = 1_000; // one Chrome-export microsecond
    let mut nested = 0usize;
    let mut devs: Vec<f64> = Vec::new();
    for m in &matches {
        let th = conn_offset(m.conn);
        // A request "nests" when its causally-ordered server instants
        // sit inside the client op: receive after the op began, and
        // the wire send stamp before the client saw the reply. The
        // request span's *end* is deliberately not the bound — it is
        // stamped after the response write returns, which races with
        // the client reading the very bytes that write produced (the
        // overshoot is pure scheduling, not misalignment).
        if m.request_start - th >= m.t0 - GRACE_NS && m.sample.t3 as i128 - th <= m.t4 + GRACE_NS {
            nested += 1;
        }
        if let (Some((dequeue, apply_dur)), Some(client_queue)) = (m.apply, m.client_queue) {
            let e2e = m.t4 - m.t0;
            if e2e <= 0 {
                continue;
            }
            let outbound = (dequeue - th) - m.sample.t1 as i128;
            let return_path = m.t4 - (dequeue + apply_dur as i128 - th);
            let sum = client_queue as i128 + outbound + apply_dur as i128 + return_path;
            devs.push((sum - e2e).abs() as f64 / e2e as f64);
        }
    }
    let max_sum_dev_frac = devs.iter().cloned().fold(0.0, f64::max);
    let mean_sum_dev_frac = if devs.is_empty() {
        0.0
    } else {
        devs.iter().sum::<f64>() / devs.len() as f64
    };

    // --- merged timeline -----------------------------------------------
    // Shift server events onto the client clock (net spans by their
    // connection's offset, background by the median), then normalize so
    // the earliest event sits at ts 0 (Perfetto dislikes negative ts).
    let shifted: Vec<i128> = server
        .events
        .iter()
        .map(|e| match e.cat {
            Some(cat) if cat.is_net() => e.ts_ns - conn_offset(e.conn),
            _ => e.ts_ns - theta,
        })
        .collect();
    let earliest = client
        .events
        .iter()
        .map(|e| e.ts_ns)
        .chain(shifted.iter().copied())
        .min()
        .unwrap_or(0)
        .min(0);
    let mut out_events: Vec<Value> = vec![
        meta(1, "client", "process_name", None),
        meta(2, "server", "process_name", None),
    ];
    for (tid, name) in &client.threads {
        out_events.push(meta(1, name, "thread_name", Some(*tid)));
    }
    for (tid, name) in &server.threads {
        out_events.push(meta(2, name, "thread_name", Some(*tid)));
    }
    for e in &client.events {
        out_events.push(emit(e, 1, e.ts_ns - earliest));
    }
    for (e, ts) in server.events.iter().zip(&shifted) {
        out_events.push(emit(e, 2, ts - earliest));
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(out_events)),
        ("displayTimeUnit".into(), Value::Str("ms".to_string())),
    ]);
    let merged_json = serde_json::to_string(&doc).expect("merged trace serialization cannot fail");

    // --- cross-process attribution over the aligned span set -----------
    let mut spans: Vec<Span> = Vec::new();
    for e in &client.events {
        if e.cat == Some(Category::NetOp) {
            spans.push(Span {
                cat: Category::NetOp,
                arg: e.conn,
                arg2: e.seq,
                start_ns: (e.ts_ns - earliest).max(0) as u64,
                dur_ns: e.dur_ns,
                tid: e.tid,
                shard: e.shard,
            });
        }
    }
    for (e, ts) in server.events.iter().zip(&shifted) {
        let Some(cat) = e.cat else { continue };
        if cat.is_background() {
            spans.push(Span {
                cat,
                arg: e.conn,
                arg2: e.seq,
                start_ns: (ts - earliest).max(0) as u64,
                dur_ns: e.dur_ns,
                tid: e.tid,
                shard: e.shard,
            });
        }
    }
    spans.sort_by_key(|s| (s.start_ns, s.tid));
    let span_count = spans.len();
    let log = TraceLog {
        events: spans,
        threads: Vec::new(),
        dropped: 0,
        session_start_ns: 0,
        session_end_ns: u64::MAX,
    };
    let attribution = attribution::attribute_net(&log);
    debug_assert!(span_count >= matches.len());

    Ok(MergeOutcome {
        merged_json,
        client_requests: client_ops.len(),
        matched: matches.len(),
        connections: estimators.len(),
        offset_ns,
        offset_spread_ns,
        nested,
        max_sum_dev_frac,
        mean_sum_dev_frac,
        attribution,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the client and server chrome JSON for `n` traced
    /// requests over one connection, with the server clock `skew` ns
    /// ahead of the client clock, plus one server compaction span
    /// covering the final (slow) request.
    fn fixture(n: u64, skew: i64) -> (String, String) {
        let s = |client_ns: u64| (client_ns as i64 + skew) as u64;
        let mut client_events = Vec::new();
        let mut server_events = Vec::new();
        for i in 0..n {
            let seq = i + 1;
            let slow = i == n - 1;
            let t0 = 10_000 + i * 100_000;
            let queue = 2_000u64;
            let t1 = t0 + queue;
            let outbound = 5_000u64;
            let wait = if slow { 60_000 } else { 4_000 };
            let apply = if slow { 50_000 } else { 1_000 };
            let t2 = t1 + outbound;
            let dequeue = t2 + 500;
            let t3 = dequeue + apply + 200;
            let t4 = t1 + outbound + 500 + apply + 200 + wait.min(5_000);
            let e2e = t4 - t0;
            let cspan = |cat: Category, start: u64, dur: u64| Span {
                cat,
                arg: 1,
                arg2: seq,
                start_ns: start,
                dur_ns: dur,
                tid: 1,
                shard: NO_SHARD,
            };
            client_events.push(cspan(Category::NetOp, t0, e2e));
            client_events.push(cspan(Category::NetSend, t0, queue));
            client_events.push(cspan(Category::NetWait, t1, t4 - t1));
            let sspan = |cat: Category, start: u64, dur: u64| Span {
                cat,
                arg: 7,
                arg2: seq,
                start_ns: s(start),
                dur_ns: dur,
                tid: 3,
                shard: NO_SHARD,
            };
            server_events.push(sspan(Category::NetRequest, t2, t3 - t2 + 300));
            server_events.push(sspan(Category::NetQueue, t2, dequeue - t2));
            server_events.push(sspan(Category::NetApply, dequeue, apply));
            server_events.push(sspan(Category::NetWrite, t3, 300));
        }
        // Server background work under the slow request.
        let slow_t0 = 10_000 + (n - 1) * 100_000;
        server_events.push(Span {
            cat: Category::Compaction,
            arg: 0,
            arg2: 0,
            start_ns: s(slow_t0),
            dur_ns: 80_000,
            tid: 4,
            shard: 2,
        });
        let log = |events: Vec<Span>, name: &str, tid: u64| TraceLog {
            events,
            threads: vec![(tid, name.to_string())],
            dropped: 0,
            session_start_ns: 0,
            session_end_ns: u64::MAX,
        };
        (
            log(client_events, "conn-1", 1).to_chrome_json(),
            log(server_events, "srv-conn-7", 3).to_chrome_json(),
        )
    }

    #[test]
    fn merge_recovers_skew_and_nests_server_spans() {
        let skew = 9_876_543;
        let (client, server) = fixture(120, skew);
        let out = merge_traces(&client, &server).unwrap();
        assert_eq!(out.client_requests, 120);
        assert_eq!(out.matched, 120);
        assert_eq!(out.connections, 1);
        // Fixture delays are symmetric per request, so the offset is
        // exact up to export rounding.
        assert!(
            (out.offset_ns - skew).abs() <= 1_500,
            "recovered {} vs skew {skew}",
            out.offset_ns
        );
        assert_eq!(out.offset_spread_ns, 0);
        assert_eq!(out.nested, 120, "all server request spans nest");
        assert!(
            out.max_sum_dev_frac < 0.05,
            "telescoped sums deviate {:.3}",
            out.max_sum_dev_frac
        );
        // The slow request is the tail; the compaction gets the blame.
        assert_eq!(out.attribution.total_ops, 120);
        assert_eq!(out.attribution.tail_ops, 1);
        assert_eq!(
            out.attribution
                .share(Category::Compaction)
                .map(|s| s.overlapping),
            Some(1)
        );
        assert!(out.summary().contains("compaction"));
    }

    #[test]
    fn merged_json_is_perfetto_shaped() {
        let (client, server) = fixture(10, -4_000_000);
        let out = merge_traces(&client, &server).unwrap();
        let doc: Value = serde_json::from_str(&out.merged_json).unwrap();
        let Some(Value::Array(events)) = doc.get("traceEvents") else {
            panic!("merged trace lacks traceEvents");
        };
        let mut pids = std::collections::BTreeSet::new();
        for ev in events {
            let ph = ev.get("ph").and_then(Value::as_str).unwrap();
            assert!(ph == "X" || ph == "M");
            pids.insert(ev.get("pid").and_then(Value::as_u64).unwrap());
            if ph == "X" {
                let ts = ev.get("ts").and_then(Value::as_f64).unwrap();
                assert!(ts >= 0.0, "normalized timestamps are non-negative");
            }
        }
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
            })
            .collect();
        assert!(names.contains(&"client"));
        assert!(names.contains(&"server"));
    }

    #[test]
    fn disjoint_traces_fail_loudly() {
        let (client, _) = fixture(5, 0);
        let empty = TraceLog {
            events: vec![],
            threads: vec![],
            dropped: 0,
            session_start_ns: 0,
            session_end_ns: 0,
        }
        .to_chrome_json();
        let err = merge_traces(&client, &empty).unwrap_err();
        assert!(err.contains("both traces"), "unexpected error: {err}");
        assert!(merge_traces("not json", &client).is_err());
        assert!(merge_traces("{}", &client).is_err());
    }
}
