//! Chrome trace-event JSON export.
//!
//! Emits the subset of the trace-event format that Perfetto and
//! `chrome://tracing` consume: one `"X"` (complete) event per span with
//! microsecond `ts`/`dur`, plus `"M"` metadata events naming each
//! thread. The whole log becomes `{"traceEvents": [...]}` so the file
//! loads directly.

use serde::Value;

use crate::{phase, Category, Span, TraceLog, NO_SHARD};

fn micros(ns: u64) -> Value {
    Value::Float(ns as f64 / 1_000.0)
}

fn arg_key(cat: Category) -> &'static str {
    match cat {
        Category::Flush => "entries",
        Category::Compaction => "level",
        Category::WalFsync => "bytes",
        Category::CacheFill => "bytes",
        Category::HashlogGc => "bytes",
        Category::PageWriteback => "page",
        Category::Phase => "phase_id",
        Category::NetRequest => "conn",
        Category::Reshard => "slots",
        Category::SlotMigration => "keys",
        cat if cat.is_net() => "conn",
        _ => "arg",
    }
}

fn span_event(span: &Span) -> Value {
    let name = match span.cat {
        Category::Phase => phase::name(span.arg),
        cat => cat.name(),
    };
    let kind = if span.cat.is_op() {
        "op"
    } else if span.cat.is_net() {
        "net"
    } else if span.cat.is_background() {
        "background"
    } else {
        "phase"
    };
    let mut args = vec![(arg_key(span.cat).to_string(), Value::UInt(span.arg as u128))];
    if span.arg2 != 0 {
        args.push(("seq".to_string(), Value::UInt(span.arg2 as u128)));
    }
    if span.shard != NO_SHARD {
        args.push(("shard".to_string(), Value::UInt(span.shard as u128)));
    }
    Value::Object(vec![
        ("name".into(), Value::Str(name.to_string())),
        ("cat".into(), Value::Str(kind.to_string())),
        ("ph".into(), Value::Str("X".to_string())),
        ("ts".into(), micros(span.start_ns)),
        ("dur".into(), micros(span.dur_ns)),
        ("pid".into(), Value::UInt(1)),
        ("tid".into(), Value::UInt(span.tid as u128)),
        ("args".into(), Value::Object(args)),
    ])
}

fn thread_meta(tid: u64, name: &str) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str("thread_name".to_string())),
        ("ph".into(), Value::Str("M".to_string())),
        ("pid".into(), Value::UInt(1)),
        ("tid".into(), Value::UInt(tid as u128)),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str(name.to_string()))]),
        ),
    ])
}

/// Serializes a [`TraceLog`] as Chrome trace-event JSON.
pub fn to_chrome_json(log: &TraceLog) -> String {
    let mut events: Vec<Value> = log
        .threads
        .iter()
        .map(|(tid, name)| thread_meta(*tid, name))
        .collect();
    events.extend(log.events.iter().map(span_event));
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(events)),
        ("displayTimeUnit".into(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&doc).expect("chrome trace serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> TraceLog {
        TraceLog {
            events: vec![
                Span {
                    cat: Category::OpGet,
                    arg: 0,
                    arg2: 0,
                    start_ns: 1_000,
                    dur_ns: 500,
                    tid: 1,
                    shard: 3,
                },
                Span {
                    cat: Category::Compaction,
                    arg: 2,
                    arg2: 0,
                    start_ns: 1_200,
                    dur_ns: 4_000,
                    tid: 2,
                    shard: NO_SHARD,
                },
                Span {
                    cat: Category::Phase,
                    arg: phase::REPLAY,
                    arg2: 0,
                    start_ns: 0,
                    dur_ns: 10_000,
                    tid: 1,
                    shard: NO_SHARD,
                },
            ],
            threads: vec![(1, "main".to_string()), (2, "lsm-worker".to_string())],
            dropped: 0,
            session_start_ns: 0,
            session_end_ns: 10_000,
        }
    }

    #[test]
    fn chrome_json_round_trips_and_has_required_fields() {
        let json = to_chrome_json(&sample_log());
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = match doc.get("traceEvents") {
            Some(Value::Array(events)) => events,
            other => panic!("traceEvents missing or not an array: {other:?}"),
        };
        // 2 thread metadata events + 3 spans.
        assert_eq!(events.len(), 5);
        for event in events {
            let ph = event.get("ph").and_then(Value::as_str).unwrap();
            assert!(ph == "X" || ph == "M");
            assert!(event.get("pid").and_then(Value::as_u64).is_some());
            assert!(event.get("tid").and_then(Value::as_u64).is_some());
            if ph == "X" {
                assert!(event.get("ts").and_then(Value::as_f64).is_some());
                assert!(event.get("dur").and_then(Value::as_f64).is_some());
                assert!(event.get("name").and_then(Value::as_str).is_some());
            }
        }
    }

    #[test]
    fn timestamps_are_microseconds() {
        let json = to_chrome_json(&sample_log());
        let doc: Value = serde_json::from_str(&json).unwrap();
        let Value::Array(events) = doc.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        let get = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("get"))
            .unwrap();
        assert_eq!(get.get("ts").and_then(Value::as_f64), Some(1.0));
        assert_eq!(get.get("dur").and_then(Value::as_f64), Some(0.5));
    }

    #[test]
    fn phase_spans_use_phase_names_and_compaction_carries_level() {
        let json = to_chrome_json(&sample_log());
        assert!(json.contains("\"replay\""));
        let doc: Value = serde_json::from_str(&json).unwrap();
        let Value::Array(events) = doc.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        let comp = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("compaction"))
            .unwrap();
        assert_eq!(
            comp.get("args")
                .and_then(|a| a.get("level"))
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn net_spans_carry_conn_seq_and_net_kind() {
        let log = TraceLog {
            events: vec![Span {
                cat: Category::NetOp,
                arg: 4,
                arg2: 1234,
                start_ns: 2_000,
                dur_ns: 900,
                tid: 1,
                shard: NO_SHARD,
            }],
            threads: vec![(1, "conn-4".to_string())],
            dropped: 0,
            session_start_ns: 0,
            session_end_ns: 10_000,
        };
        let json = to_chrome_json(&log);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let Value::Array(events) = doc.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        let op = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("net_op"))
            .unwrap();
        assert_eq!(op.get("cat").and_then(Value::as_str), Some("net"));
        let args = op.get("args").unwrap();
        assert_eq!(args.get("conn").and_then(Value::as_u64), Some(4));
        assert_eq!(args.get("seq").and_then(Value::as_u64), Some(1234));
    }

    #[test]
    fn shard_tag_appears_only_on_tagged_spans() {
        let json = to_chrome_json(&sample_log());
        let doc: Value = serde_json::from_str(&json).unwrap();
        let Value::Array(events) = doc.get("traceEvents").unwrap() else {
            panic!("traceEvents not an array");
        };
        let get = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("get"))
            .unwrap();
        assert_eq!(
            get.get("args")
                .and_then(|a| a.get("shard"))
                .and_then(Value::as_u64),
            Some(3)
        );
        let comp = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("compaction"))
            .unwrap();
        assert!(comp.get("args").and_then(|a| a.get("shard")).is_none());
    }
}
