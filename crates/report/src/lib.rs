//! Unified run reports and statistical regression comparison.
//!
//! Every measured execution in the gadget workspace — CLI replays,
//! online operator runs, bench experiments — can emit one versioned
//! [`RunReport`] JSON document: provenance (git revision, config
//! digest, machine shape), throughput, and *full mergeable latency
//! histograms* rather than lossy percentile summaries. Because the
//! distributions survive serialization, two reports can be compared
//! with the same statistics the source paper uses to tell workloads
//! apart (two-sample Kolmogorov–Smirnov + Wasserstein-1 distance),
//! turning "did this PR make replay slower?" into a command:
//!
//! ```text
//! gadget replay ... --report-out a.json     # before
//! gadget replay ... --report-out b.json     # after
//! gadget report compare a.json b.json       # PASS / WARN / REGRESSED
//! ```
//!
//! [`compare_reports`] produces a machine-readable
//! [`ComparisonReport`] and a human verdict table; CI gates on
//! [`ComparisonReport::regressed`]. See DESIGN.md §14 for the decision
//! rule and the baseline-refresh workflow.

pub mod compare;
pub mod env;
pub mod schema;
pub mod sweep;

pub use compare::{
    compare_reports, find_baseline, ComparisonReport, MetricComparison, Status, Tolerance,
};
pub use env::{capture, capture_in, fnv1a_hex};
pub use schema::{RecoveryReport, ReshardRecord, RunMeta, RunReport, SCHEMA_VERSION};
pub use sweep::{
    compare_sweeps, find_sweep_baseline, KneePoint, SweepReport, SweepStep, SWEEP_SCHEMA_VERSION,
};
