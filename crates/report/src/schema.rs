//! The versioned `RunReport` wire schema.
//!
//! A report is the single artifact a measured execution leaves behind:
//! enough provenance to know *what* ran (store, workload, config digest,
//! git revision, machine shape) and enough distribution data to compare
//! *how* it ran (full mergeable latency histograms, not just summary
//! percentiles). Serialization is hand-written rather than derived so
//! the field order is fixed, unknown fields are rejected, and the
//! on-disk form stays byte-stable: serialize → deserialize →
//! re-serialize is byte-identical, which the golden fixture under
//! `tests/fixtures/` depends on.

use serde::{Deserialize, Error, Serialize, Value};

use gadget_obs::{LogHistogram, MetricsSnapshot};

/// Version stamped into every report. Bump on any wire-visible change;
/// readers reject other versions rather than guessing.
pub const SCHEMA_VERSION: u32 = 1;

/// One completed live reshard (shard split or slot migration) that
/// happened during the measured run — the provenance a report needs for
/// its latency profile to be interpretable: a p99 blip at `at_op` with
/// a matching record here is elasticity cost, not store regression.
///
/// Mirrors `gadget_kv::ReshardEvent` field-for-field; the report crate
/// keeps its own copy so the schema layer stays free of store
/// dependencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardRecord {
    /// Op index the reshard was requested at.
    pub at_op: u64,
    /// Source shard.
    pub from: u64,
    /// Target shard.
    pub to: u64,
    /// Slots moved.
    pub slots: u64,
    /// Keys copied.
    pub keys: u64,
    /// Write-pause duration of the atomic map flip, microseconds.
    pub pause_us: u64,
    /// Total copy-phase duration, microseconds.
    pub copy_us: u64,
    /// Partition-map version after the flip.
    pub map_version: u64,
}

/// Outcome of a crash-recovery measurement (`gadget crash`).
///
/// Present only on reports produced by the crash harness; ordinary
/// replay reports carry `None` and reports written before the section
/// existed deserialize as `None`. The fields answer the three questions
/// a recovery experiment asks: *how long* did the store take to come
/// back ([`recovery_us`](Self::recovery_us), driven by
/// [`replayed_wal_bytes`](Self::replayed_wal_bytes)), *what did it
/// lose* ([`loss_window`](Self::loss_window) out of
/// [`acked_ops`](Self::acked_ops)), and *under what failure* was it
/// measured (kill point, torn tail, checkpoint presence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Wall-clock time from starting the reopened store to its state
    /// being readable again, microseconds.
    pub recovery_us: u64,
    /// WAL bytes re-read during recovery (0 for snapshot-only stores).
    pub replayed_wal_bytes: u64,
    /// Acknowledged writes that were missing after recovery. Zero is
    /// the contract for a sync-WAL store; anything else is data loss.
    pub loss_window: u64,
    /// Operations the crashed process had acknowledged before dying.
    pub acked_ops: u64,
    /// Op index the crash was injected at.
    pub kill_at_op: u64,
    /// Whether recovery started from a checkpoint (plus WAL suffix)
    /// rather than the WAL alone.
    pub checkpoint_restored: bool,
    /// Torn-write injection applied to the WAL tail before recovery:
    /// `"none"`, `"truncate"`, or `"garble"`.
    pub torn_tail: String,
    /// Crash/recover cycles measured (fields above are from the last).
    pub crashes: u64,
}

/// Provenance of one measured execution.
///
/// Every field degrades to `"unknown"` / `0` rather than failing:
/// reports must be producible from a dirty tree, a tarball export, or a
/// CI runner without git. See [`crate::env::capture`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Full commit hash, or `"unknown"` outside a git checkout.
    pub git_sha: String,
    /// `git describe --always --dirty`, or `"unknown"`.
    pub git_describe: String,
    /// FNV-1a digest of the run configuration (CLI flags, workload
    /// parameters), or `"unknown"` when the producer has no config.
    pub config_digest: String,
    /// Logical CPUs visible to the process (0 if undeterminable).
    pub cpu_count: u64,
    /// Replay/driver worker threads the run was configured with.
    pub threads: u64,
    /// Store shard count.
    pub shards: u64,
    /// Micro-batch size.
    pub batch_size: u64,
    /// How operations reached the store: `"embedded"` for in-process
    /// runs, `"tcp"` for runs driven through `gadget-server`'s wire
    /// protocol. Part of a report's identity — comparing a client-side
    /// latency curve against an embedded baseline would misattribute
    /// the network to the store. Reports written before this field
    /// existed deserialize as `"embedded"`, which is what they were.
    pub transport: String,
    /// Arrival model the run was paced with: `"closed"` (send-time
    /// latency, the historical behaviour), `"constant"`, or
    /// `"poisson"` (open-loop, intended-time latency). Part of a
    /// report's identity — closed- and open-loop latency curves answer
    /// different questions. Reports from before arrival modes existed
    /// deserialize as `"closed"`, which is what they were.
    pub arrival: String,
    /// Offered load in ops/s when the run was paced; `0` for
    /// full-speed runs (and for reports predating the field).
    pub offered_rate: f64,
    /// Hex digest of the partition map the store ended the run with
    /// (`gadget_kv::Router::digest`), or `"unknown"` when the producer
    /// had no sharded store to ask (and for reports predating the
    /// field). Part of a report's identity once known: comparing runs
    /// across different slot→shard assignments conflates placement with
    /// store performance, so `compare` refuses mismatched digests
    /// unless explicitly overridden.
    pub partition_digest: String,
    /// Live reshards completed during the run, oldest first; empty for
    /// static-topology runs (and for reports predating the field).
    pub reshard_events: Vec<ReshardRecord>,
    /// Wall-clock creation time, milliseconds since the Unix epoch
    /// (0 if the clock is unavailable).
    pub created_unix_ms: u64,
}

impl Default for RunMeta {
    fn default() -> Self {
        RunMeta {
            git_sha: "unknown".to_string(),
            git_describe: "unknown".to_string(),
            config_digest: "unknown".to_string(),
            cpu_count: 0,
            threads: 1,
            shards: 1,
            batch_size: 1,
            transport: "embedded".to_string(),
            arrival: "closed".to_string(),
            offered_rate: 0.0,
            partition_digest: "unknown".to_string(),
            reshard_events: Vec::new(),
            created_unix_ms: 0,
        }
    }
}

/// A complete, versioned record of one measured execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`] when produced by this build).
    pub version: u32,
    /// Store the run executed against (e.g. `"mem"`, `"lsm"`).
    pub store: String,
    /// Workload label (e.g. `"ycsb-a"`).
    pub workload: String,
    /// Provenance.
    pub meta: RunMeta,
    /// Operations executed.
    pub operations: u64,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Operations per second.
    pub throughput: f64,
    /// `get`s that found a value.
    pub hits: u64,
    /// `get`s that found nothing.
    pub misses: u64,
    /// Overall latency histogram (nanoseconds, log-bucketed, mergeable).
    pub latency: LogHistogram,
    /// Per-op-type latency histograms, keyed by op name; only ops that
    /// actually ran appear.
    pub per_op: Vec<(String, LogHistogram)>,
    /// Scheduler-lag histogram (intended arrival → send) from open-loop
    /// runs; empty for closed-loop and full-speed runs, and for reports
    /// predating open-loop support.
    pub lag: LogHistogram,
    /// Final store metrics snapshot (empty if the producer did not
    /// collect metrics).
    pub metrics: MetricsSnapshot,
    /// Flattened tail-latency attribution table, when tracing was on.
    pub attribution: Option<MetricsSnapshot>,
    /// Crash-recovery measurement, when the report came from the crash
    /// harness; `None` for ordinary runs (and for reports predating the
    /// section).
    pub recovery: Option<RecoveryReport>,
    /// Cross-process latency decomposition from a traced network drive:
    /// per-segment histograms keyed by name, in pipeline order
    /// (`client_queue`, `outbound`, `service`, `return_path`,
    /// `end_to_end`). Segments telescope — for every sample the first
    /// four sum to the fifth — so the section answers "where did the
    /// wall-clock go" without a second run. Empty for embedded runs,
    /// untraced drives, and reports predating distributed tracing.
    pub decomposition: Vec<(String, LogHistogram)>,
}

impl RunReport {
    /// Lifts a replay-layer run result into a report.
    ///
    /// The replay [`gadget_replay::RunReport`] carries the measured
    /// numbers and full histograms; `meta` supplies provenance the
    /// replay layer cannot know (git state, config digest, machine
    /// shape). Metrics and attribution start empty — callers that
    /// collected them attach them afterwards.
    pub fn from_run(run: &gadget_replay::RunReport, meta: RunMeta) -> Self {
        let mut meta = meta;
        // The replay layer knows how the run was paced; fold that into
        // the provenance unless the caller already set it.
        if let Some(arrival) = &run.arrival {
            meta.arrival = arrival.clone();
        }
        if let Some(rate) = run.offered_rate {
            meta.offered_rate = rate;
        }
        RunReport {
            version: SCHEMA_VERSION,
            store: run.store.clone(),
            workload: run.workload.clone(),
            meta,
            operations: run.operations,
            seconds: run.seconds,
            throughput: run.throughput,
            hits: run.hits,
            misses: run.misses,
            latency: run.latency_hist.clone(),
            per_op: run.per_op_hist.clone(),
            lag: run.lag_hist.clone(),
            metrics: MetricsSnapshot::new(),
            attribution: None,
            recovery: None,
            decomposition: run.decomposition.clone(),
        }
    }

    /// Serializes to pretty JSON with a trailing newline (the canonical
    /// on-disk form).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialization is infallible");
        s.push('\n');
        s
    }

    /// Parses a report from JSON, enforcing the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str::<RunReport>(text).map_err(|e| e.to_string())
    }

    /// Writes the canonical JSON form to `path`, creating parent
    /// directories as needed.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a report from `path`.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        RunReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

const META_FIELDS: &[&str] = &[
    "git_sha",
    "git_describe",
    "config_digest",
    "cpu_count",
    "threads",
    "shards",
    "batch_size",
    "transport",
    "arrival",
    "offered_rate",
    "partition_digest",
    "reshard_events",
    "created_unix_ms",
];

const RECOVERY_FIELDS: &[&str] = &[
    "recovery_us",
    "replayed_wal_bytes",
    "loss_window",
    "acked_ops",
    "kill_at_op",
    "checkpoint_restored",
    "torn_tail",
    "crashes",
];

impl Serialize for RecoveryReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("recovery_us".to_string(), self.recovery_us.to_value()),
            (
                "replayed_wal_bytes".to_string(),
                self.replayed_wal_bytes.to_value(),
            ),
            ("loss_window".to_string(), self.loss_window.to_value()),
            ("acked_ops".to_string(), self.acked_ops.to_value()),
            ("kill_at_op".to_string(), self.kill_at_op.to_value()),
            (
                "checkpoint_restored".to_string(),
                self.checkpoint_restored.to_value(),
            ),
            ("torn_tail".to_string(), self.torn_tail.to_value()),
            ("crashes".to_string(), self.crashes.to_value()),
        ])
    }
}

impl Deserialize for RecoveryReport {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "RecoveryReport";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        reject_unknown(members, RECOVERY_FIELDS, CTX)?;
        let field = |name: &str| -> Result<&Value, Error> {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        Ok(RecoveryReport {
            recovery_us: u64::from_value(field("recovery_us")?)?,
            replayed_wal_bytes: u64::from_value(field("replayed_wal_bytes")?)?,
            loss_window: u64::from_value(field("loss_window")?)?,
            acked_ops: u64::from_value(field("acked_ops")?)?,
            kill_at_op: u64::from_value(field("kill_at_op")?)?,
            checkpoint_restored: bool::from_value(field("checkpoint_restored")?)?,
            torn_tail: String::from_value(field("torn_tail")?)?,
            crashes: u64::from_value(field("crashes")?)?,
        })
    }
}

const RESHARD_FIELDS: &[&str] = &[
    "at_op",
    "from",
    "to",
    "slots",
    "keys",
    "pause_us",
    "copy_us",
    "map_version",
];

impl Serialize for ReshardRecord {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("at_op".to_string(), self.at_op.to_value()),
            ("from".to_string(), self.from.to_value()),
            ("to".to_string(), self.to.to_value()),
            ("slots".to_string(), self.slots.to_value()),
            ("keys".to_string(), self.keys.to_value()),
            ("pause_us".to_string(), self.pause_us.to_value()),
            ("copy_us".to_string(), self.copy_us.to_value()),
            ("map_version".to_string(), self.map_version.to_value()),
        ])
    }
}

impl Deserialize for ReshardRecord {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "ReshardRecord";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        reject_unknown(members, RESHARD_FIELDS, CTX)?;
        let field = |name: &str| -> Result<&Value, Error> {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        Ok(ReshardRecord {
            at_op: u64::from_value(field("at_op")?)?,
            from: u64::from_value(field("from")?)?,
            to: u64::from_value(field("to")?)?,
            slots: u64::from_value(field("slots")?)?,
            keys: u64::from_value(field("keys")?)?,
            pause_us: u64::from_value(field("pause_us")?)?,
            copy_us: u64::from_value(field("copy_us")?)?,
            map_version: u64::from_value(field("map_version")?)?,
        })
    }
}

impl Serialize for RunMeta {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("git_sha".to_string(), self.git_sha.to_value()),
            ("git_describe".to_string(), self.git_describe.to_value()),
            ("config_digest".to_string(), self.config_digest.to_value()),
            ("cpu_count".to_string(), self.cpu_count.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("shards".to_string(), self.shards.to_value()),
            ("batch_size".to_string(), self.batch_size.to_value()),
            ("transport".to_string(), self.transport.to_value()),
            ("arrival".to_string(), self.arrival.to_value()),
            ("offered_rate".to_string(), self.offered_rate.to_value()),
            (
                "partition_digest".to_string(),
                self.partition_digest.to_value(),
            ),
            (
                "reshard_events".to_string(),
                Value::Array(self.reshard_events.iter().map(|e| e.to_value()).collect()),
            ),
            (
                "created_unix_ms".to_string(),
                self.created_unix_ms.to_value(),
            ),
        ])
    }
}

impl Deserialize for RunMeta {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "RunMeta";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        reject_unknown(members, META_FIELDS, CTX)?;
        let field = |name: &str| -> Result<&Value, Error> {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        Ok(RunMeta {
            git_sha: String::from_value(field("git_sha")?)?,
            git_describe: String::from_value(field("git_describe")?)?,
            config_digest: String::from_value(field("config_digest")?)?,
            cpu_count: u64::from_value(field("cpu_count")?)?,
            threads: u64::from_value(field("threads")?)?,
            shards: u64::from_value(field("shards")?)?,
            batch_size: u64::from_value(field("batch_size")?)?,
            // Absent in reports written before the field existed (all of
            // which were embedded runs), so missing means "embedded", not
            // a parse error — committed baselines keep loading.
            transport: match serde::find_field(members, "transport") {
                Some(v) => String::from_value(v)?,
                None => "embedded".to_string(),
            },
            // Absent in reports predating open-loop pacing, all of
            // which were closed-loop full-speed runs.
            arrival: match serde::find_field(members, "arrival") {
                Some(v) => String::from_value(v)?,
                None => "closed".to_string(),
            },
            offered_rate: match serde::find_field(members, "offered_rate") {
                Some(v) => f64::from_value(v)?,
                None => 0.0,
            },
            // Absent in reports predating live topology changes: their
            // partition map was never recorded, and nothing resharded.
            partition_digest: match serde::find_field(members, "partition_digest") {
                Some(v) => String::from_value(v)?,
                None => "unknown".to_string(),
            },
            reshard_events: match serde::find_field(members, "reshard_events") {
                Some(Value::Array(items)) => {
                    let mut events = Vec::with_capacity(items.len());
                    for v in items {
                        events.push(ReshardRecord::from_value(v)?);
                    }
                    events
                }
                Some(other) => {
                    return Err(Error::expected("array", other, "RunMeta.reshard_events"))
                }
                None => Vec::new(),
            },
            created_unix_ms: u64::from_value(field("created_unix_ms")?)?,
        })
    }
}

const REPORT_FIELDS: &[&str] = &[
    "version",
    "store",
    "workload",
    "meta",
    "operations",
    "seconds",
    "throughput",
    "hits",
    "misses",
    "latency",
    "per_op",
    "lag",
    "metrics",
    "attribution",
    "recovery",
    "decomposition",
];

impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        let per_op = self
            .per_op
            .iter()
            .map(|(name, h)| (name.clone(), h.to_value()))
            .collect();
        let attribution = match &self.attribution {
            Some(snap) => snap.to_value(),
            None => Value::Null,
        };
        let recovery = match &self.recovery {
            Some(r) => r.to_value(),
            None => Value::Null,
        };
        let decomposition = self
            .decomposition
            .iter()
            .map(|(name, h)| (name.clone(), h.to_value()))
            .collect();
        Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("store".to_string(), self.store.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("meta".to_string(), self.meta.to_value()),
            ("operations".to_string(), self.operations.to_value()),
            ("seconds".to_string(), self.seconds.to_value()),
            ("throughput".to_string(), self.throughput.to_value()),
            ("hits".to_string(), self.hits.to_value()),
            ("misses".to_string(), self.misses.to_value()),
            ("latency".to_string(), self.latency.to_value()),
            ("per_op".to_string(), Value::Object(per_op)),
            ("lag".to_string(), self.lag.to_value()),
            ("metrics".to_string(), self.metrics.to_value()),
            ("attribution".to_string(), attribution),
            ("recovery".to_string(), recovery),
            ("decomposition".to_string(), Value::Object(decomposition)),
        ])
    }
}

impl Deserialize for RunReport {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "RunReport";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        reject_unknown(members, REPORT_FIELDS, CTX)?;
        let field = |name: &str| -> Result<&Value, Error> {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        let version = u32::from_value(field("version")?)?;
        if version != SCHEMA_VERSION {
            return Err(Error::custom(format!(
                "unsupported report version {version} (this build reads version {SCHEMA_VERSION})"
            )));
        }
        let per_op_members = field("per_op")?
            .as_object()
            .ok_or_else(|| Error::custom("field `per_op` must be an object"))?;
        let mut per_op = Vec::with_capacity(per_op_members.len());
        for (name, v) in per_op_members {
            per_op.push((name.clone(), LogHistogram::from_value(v)?));
        }
        let attribution = match field("attribution")? {
            Value::Null => None,
            other => Some(MetricsSnapshot::from_value(other)?),
        };
        Ok(RunReport {
            version,
            store: String::from_value(field("store")?)?,
            workload: String::from_value(field("workload")?)?,
            meta: RunMeta::from_value(field("meta")?)?,
            operations: u64::from_value(field("operations")?)?,
            seconds: f64::from_value(field("seconds")?)?,
            throughput: f64::from_value(field("throughput")?)?,
            hits: u64::from_value(field("hits")?)?,
            misses: u64::from_value(field("misses")?)?,
            latency: LogHistogram::from_value(field("latency")?)?,
            per_op,
            // Absent in reports predating open-loop pacing → no lag
            // was recorded.
            lag: match serde::find_field(members, "lag") {
                Some(v) => LogHistogram::from_value(v)?,
                None => LogHistogram::new(),
            },
            metrics: MetricsSnapshot::from_value(field("metrics")?)?,
            attribution,
            // Absent in reports predating the crash harness → the run
            // measured no recovery.
            recovery: match serde::find_field(members, "recovery") {
                Some(Value::Null) | None => None,
                Some(v) => Some(RecoveryReport::from_value(v)?),
            },
            // Absent in reports predating distributed tracing → the
            // run recorded no decomposition.
            decomposition: match serde::find_field(members, "decomposition") {
                Some(Value::Object(segments)) => {
                    let mut out = Vec::with_capacity(segments.len());
                    for (name, v) in segments {
                        out.push((name.clone(), LogHistogram::from_value(v)?));
                    }
                    out
                }
                Some(Value::Null) | None => Vec::new(),
                Some(other) => {
                    return Err(Error::expected("object", other, "RunReport.decomposition"))
                }
            },
        })
    }
}

/// Errors if `members` holds any key outside `known` — schema drift is
/// a hard error, not silently-ignored data.
pub(crate) fn reject_unknown(
    members: &[(String, Value)],
    known: &[&str],
    context: &str,
) -> Result<(), Error> {
    for (key, _) in members {
        if !known.contains(&key.as_str()) {
            return Err(Error::custom(format!(
                "unknown field `{key}` in {context} (schema version {SCHEMA_VERSION})"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> RunReport {
        let mut latency = LogHistogram::new();
        let mut get = LogHistogram::new();
        let mut put = LogHistogram::new();
        for i in 0..500u64 {
            let ns = 200 + i * 7;
            latency.record(ns);
            if i % 2 == 0 {
                get.record(ns);
            } else {
                put.record(ns);
            }
        }
        let mut metrics = MetricsSnapshot::new();
        metrics.push_counter("flushes", 3);
        metrics.push_gauge("live_bytes", 4096);
        RunReport {
            version: SCHEMA_VERSION,
            store: "mem".to_string(),
            workload: "ycsb-a".to_string(),
            meta: RunMeta {
                git_sha: "0123abcd".to_string(),
                git_describe: "v0.1.0-5-g0123abcd".to_string(),
                config_digest: "deadbeefdeadbeef".to_string(),
                cpu_count: 8,
                threads: 2,
                shards: 4,
                batch_size: 64,
                transport: "embedded".to_string(),
                arrival: "poisson".to_string(),
                offered_rate: 5_000.0,
                partition_digest: "00000000deadbeef".to_string(),
                reshard_events: vec![ReshardRecord {
                    at_op: 250,
                    from: 0,
                    to: 4,
                    slots: 315,
                    keys: 120,
                    pause_us: 85,
                    copy_us: 1_900,
                    map_version: 2,
                }],
                created_unix_ms: 1_700_000_000_000,
            },
            operations: 500,
            seconds: 0.125,
            throughput: 4000.0,
            hits: 240,
            misses: 10,
            latency,
            per_op: vec![("get".to_string(), get), ("put".to_string(), put)],
            lag: {
                let mut lag = LogHistogram::new();
                for i in 0..500u64 {
                    lag.record(50 + i * 3);
                }
                lag
            },
            metrics,
            attribution: None,
            recovery: Some(RecoveryReport {
                recovery_us: 18_400,
                replayed_wal_bytes: 65_536,
                loss_window: 0,
                acked_ops: 250,
                kill_at_op: 250,
                checkpoint_restored: true,
                torn_tail: "truncate".to_string(),
                crashes: 1,
            }),
            decomposition: ["client_queue", "outbound", "service", "return_path"]
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let mut h = LogHistogram::new();
                    for j in 0..500u64 {
                        h.record(100 * (i as u64 + 1) + j);
                    }
                    (name.to_string(), h)
                })
                .collect(),
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let report = sample_report();
        let json = report.to_json();
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(json, back.to_json(), "re-serialization is byte-identical");
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let report = sample_report();
        let json = report
            .to_json()
            .replace("\"version\"", "\"surprise\": 1,\n  \"version\"");
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.contains("unknown field `surprise`"), "got: {err}");
    }

    #[test]
    fn wrong_version_is_rejected() {
        let report = sample_report();
        let json = report
            .to_json()
            .replace("\"version\": 1", "\"version\": 999");
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.contains("unsupported report version 999"), "got: {err}");
    }

    #[test]
    fn missing_transport_defaults_to_embedded() {
        // Reports written before `transport` existed must keep loading
        // (the committed perf-gate baselines are such reports).
        let report = sample_report();
        let json = report
            .to_json()
            .replace("    \"transport\": \"embedded\",\n", "");
        assert!(!json.contains("transport"), "field removed from fixture");
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.meta.transport, "embedded");
        // Re-serialization writes the field explicitly from then on.
        assert!(back.to_json().contains("\"transport\": \"embedded\""));
    }

    #[test]
    fn missing_openloop_fields_default_sensibly() {
        // Reports written before open-loop pacing existed carry no
        // arrival, offered_rate, or lag — they were closed-loop
        // full-speed runs and must keep loading as exactly that.
        let j = sample_report().to_json();
        // Drop the multi-line "lag" object wholesale, then the scalar
        // fields by line.
        let start = j.find("  \"lag\":").unwrap();
        let end = j[start..].find("\n  \"metrics\"").unwrap() + start;
        let json = format!("{}{}", &j[..start], &j[end + 1..])
            .replace("    \"arrival\": \"poisson\",\n", "")
            .replace("    \"offered_rate\": 5000,\n", "");
        assert!(!json.contains("\"arrival\""), "field removed");
        assert!(!json.contains("\"offered_rate\""), "field removed");
        assert!(!json.contains("\"lag\""), "field removed");
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.meta.arrival, "closed");
        assert_eq!(back.meta.offered_rate, 0.0);
        assert_eq!(back.lag.count(), 0);
    }

    #[test]
    fn missing_partition_fields_default_to_static_topology() {
        // Reports written before live topology changes existed carry
        // neither a partition digest nor reshard events — they were
        // static-topology runs and must keep loading as exactly that.
        let j = sample_report().to_json();
        let start = j.find("    \"partition_digest\"").unwrap();
        let end = j[start..].find("\n    \"created_unix_ms\"").unwrap() + start;
        let json = format!("{}{}", &j[..start], &j[end + 1..]);
        assert!(!json.contains("partition_digest"), "field removed");
        assert!(!json.contains("reshard_events"), "field removed");
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.meta.partition_digest, "unknown");
        assert!(back.meta.reshard_events.is_empty());
    }

    #[test]
    fn missing_recovery_defaults_to_none() {
        // Reports written before the crash harness existed carry no
        // recovery section — they measured no recovery and must keep
        // loading as exactly that.
        let mut report = sample_report();
        report.recovery = None;
        let json = report.to_json().replace(",\n  \"recovery\": null", "");
        assert!(!json.contains("\"recovery\""), "field removed");
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.recovery, None);
        // Re-serialization writes the field explicitly from then on.
        assert!(back.to_json().contains("\"recovery\": null"));
    }

    #[test]
    fn recovery_section_round_trips() {
        let report = sample_report();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        let rec = back.recovery.expect("sample carries a recovery section");
        assert_eq!(rec.recovery_us, 18_400);
        assert_eq!(rec.loss_window, 0);
        assert_eq!(rec.torn_tail, "truncate");
        assert!(rec.checkpoint_restored);
        // Unknown fields inside the section are schema drift, like
        // everywhere else.
        let json = report
            .to_json()
            .replace("\"recovery_us\"", "\"surprise\": 1,\n    \"recovery_us\"");
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.contains("unknown field `surprise`"), "got: {err}");
    }

    #[test]
    fn missing_decomposition_defaults_to_empty() {
        // Reports written before distributed tracing existed carry no
        // decomposition section — they recorded none and must keep
        // loading as exactly that.
        let j = sample_report().to_json();
        let start = j.find(",\n  \"decomposition\"").unwrap();
        let end = j.rfind('}').unwrap();
        let json = format!("{}\n{}", &j[..start], &j[end..]);
        assert!(!json.contains("decomposition"), "field removed");
        let back = RunReport::from_json(&json).unwrap();
        assert!(back.decomposition.is_empty());
        // Re-serialization writes the (empty) section from then on.
        assert!(back.to_json().contains("\"decomposition\": {}"));
    }

    #[test]
    fn decomposition_round_trips_in_order() {
        let report = sample_report();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.decomposition, report.decomposition);
        let names: Vec<&str> = back.decomposition.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec!["client_queue", "outbound", "service", "return_path"]
        );
        for (_, h) in &back.decomposition {
            assert_eq!(h.count(), 500);
        }
    }

    #[test]
    fn reshard_records_round_trip() {
        let report = sample_report();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.meta.reshard_events, report.meta.reshard_events);
        assert_eq!(back.meta.partition_digest, "00000000deadbeef");
        // Unknown fields inside an event are schema drift, like
        // everywhere else.
        let json = report
            .to_json()
            .replace("\"at_op\"", "\"surprise\": 1,\n        \"at_op\"");
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.contains("unknown field `surprise`"), "got: {err}");
    }

    #[test]
    fn from_run_lifts_replay_output() {
        let mut m = gadget_replay::Measured::new();
        m.overall.record(1_000);
        m.per_op[0].record(1_000);
        m.hits = 1;
        m.executed = 1;
        let run = m.to_report("mem", "unit", 0.5);
        let report = RunReport::from_run(&run, RunMeta::default());
        assert_eq!(report.version, SCHEMA_VERSION);
        assert_eq!(report.operations, 1);
        assert_eq!(report.latency.count(), 1);
        assert_eq!(report.per_op.len(), 1);
        assert_eq!(report.per_op[0].0, "get");
        assert_eq!(report.meta.git_sha, "unknown");
    }
}
