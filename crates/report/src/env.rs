//! Environment provenance capture.
//!
//! A report from a machine you can't ssh into is only useful if it says
//! what produced it. This module shells out to `git` for revision
//! information and reads the machine shape from the OS — and every
//! probe degrades to `"unknown"` / `0` instead of erroring, because
//! benchmarks also run from tarballs, dirty trees, and containers
//! without git installed.

use std::path::Path;
use std::process::Command;

use crate::schema::RunMeta;

/// Captures provenance for the current working directory.
///
/// `config` is any stable textual rendering of the run configuration
/// (CLI flags, workload parameters); it is digested with FNV-1a so two
/// reports can be checked for config parity without embedding the full
/// flag soup. Pass `""` to record `"unknown"`.
pub fn capture(config: &str) -> RunMeta {
    capture_in(Path::new("."), config)
}

/// [`capture`], but probing git from `dir` (unit tests point this at a
/// temp directory to exercise the fallback path).
pub fn capture_in(dir: &Path, config: &str) -> RunMeta {
    RunMeta {
        git_sha: git(dir, &["rev-parse", "HEAD"]),
        git_describe: git(dir, &["describe", "--always", "--dirty"]),
        config_digest: if config.is_empty() {
            "unknown".to_string()
        } else {
            fnv1a_hex(config.as_bytes())
        },
        cpu_count: std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(0),
        threads: 1,
        shards: 1,
        batch_size: 1,
        transport: "embedded".to_string(),
        arrival: "closed".to_string(),
        offered_rate: 0.0,
        partition_digest: "unknown".to_string(),
        reshard_events: Vec::new(),
        created_unix_ms: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0),
    }
}

/// Runs a git query, returning `"unknown"` on any failure: git missing,
/// `dir` outside a repository, or non-UTF-8 output.
fn git(dir: &Path, args: &[&str]) -> String {
    let out = Command::new("git").arg("-C").arg(dir).args(args).output();
    match out {
        Ok(out) if out.status.success() => {
            let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if text.is_empty() {
                "unknown".to_string()
            } else {
                text
            }
        }
        _ => "unknown".to_string(),
    }
}

/// 64-bit FNV-1a digest, lowercase hex. Not cryptographic — it only has
/// to distinguish configurations, cheaply and with no dependencies.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_inside_git_records_revision() {
        // The workspace itself is a git checkout, so probing from the
        // crate directory should find a real sha.
        let meta = capture_in(Path::new(env!("CARGO_MANIFEST_DIR")), "flags=1");
        if meta.git_sha != "unknown" {
            assert!(
                meta.git_sha.len() >= 7 && meta.git_sha.chars().all(|c| c.is_ascii_hexdigit()),
                "sha looks wrong: {}",
                meta.git_sha
            );
            assert_ne!(meta.git_describe, "unknown");
        }
        assert_eq!(meta.config_digest.len(), 16);
        assert!(meta.cpu_count >= 1);
        assert!(meta.created_unix_ms > 0);
    }

    #[test]
    fn capture_outside_git_falls_back_to_unknown() {
        let dir =
            std::env::temp_dir().join(format!("gadget-report-envtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let meta = capture_in(&dir, "");
        assert_eq!(meta.git_sha, "unknown");
        assert_eq!(meta.git_describe, "unknown");
        assert_eq!(meta.config_digest, "unknown");
        assert!(meta.cpu_count >= 1, "cpu_count still captured");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv1a_is_stable_and_distinguishes() {
        // Reference vector: FNV-1a 64 of "a".
        assert_eq!(fnv1a_hex(b"a"), "af63dc4c8601ec8c");
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_ne!(fnv1a_hex(b"batch=1"), fnv1a_hex(b"batch=64"));
    }
}
