//! Statistical comparison of two run reports.
//!
//! The paper's methodology (§3.2) decides "are these two latency
//! profiles genuinely different?" with a two-sample Kolmogorov–Smirnov
//! test plus the Wasserstein-1 distance, and this module applies the
//! same machinery to regression detection. The decision rule is
//! deliberately two-factor:
//!
//! * the **KS test** answers *is the difference statistically real* —
//!   but with thousands of samples it flags even a 1% shift, so a
//!   rejection alone is evidence, not a verdict;
//! * the **Wasserstein distance, normalized by the baseline mean**,
//!   answers *is the difference big enough to care about* — it is the
//!   average latency displacement in "fractions of a baseline op".
//!
//! A latency metric is only REGRESSED when the candidate is *slower*,
//! the normalized Wasserstein shift exceeds the tolerance, **and** the
//! KS test rejects at `alpha`. Slower-but-small or
//! significant-but-tiny differences surface as WARN/PASS with the
//! statistics printed, so same-seed re-runs (which always differ by
//! timing noise) pass while a genuine 4× tail blowup cannot hide.

use gadget_analysis::{ks_test, wasserstein_distance};
use gadget_obs::{bucket_bounds, LogHistogram};
use serde::{Serialize, Value};

use crate::schema::RunReport;

/// Maximum decoded samples per histogram side. Plenty of statistical
/// power for the KS test while keeping comparisons O(1) in run length.
const MAX_SAMPLES: usize = 4096;

/// Relative-delta thresholds for the verdict.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Throughput may drop this many percent before REGRESSED.
    pub throughput_pct: f64,
    /// Counters may drift this many percent before WARN (counters never
    /// regress a run on their own — they lack a direction convention).
    pub counter_pct: f64,
    /// Mean-normalized Wasserstein-1 shift allowed before a slower
    /// latency distribution is REGRESSED (0.1 = 10% of baseline mean).
    pub latency_rel: f64,
    /// KS significance level.
    pub alpha: f64,
    /// A sweep's knee (max sustainable offered rate) may shift down
    /// this many percent before the curve comparison is REGRESSED.
    pub knee_pct: f64,
    /// Whether a partition-map digest mismatch is tolerated. A store's
    /// latency profile depends on its slot→shard assignment, so two
    /// reports over different partition maps are not comparing the same
    /// system; by default a known-vs-known digest mismatch REGRESSES
    /// the comparison. Set (the CLI's `--allow-topology-change`) to
    /// downgrade the mismatch to WARN — e.g. when gating a run that
    /// deliberately resharded mid-flight against a static baseline.
    pub allow_topology_change: bool,
}

impl Tolerance {
    /// Maps a single user-facing percentage (the CLI's `--tolerance`)
    /// onto all thresholds: throughput may drop `pct`%, counters may
    /// drift 2·`pct`% (they are noisier), and latency may shift
    /// `pct`/100 of the baseline mean.
    pub fn from_pct(pct: f64) -> Self {
        Tolerance {
            throughput_pct: pct,
            counter_pct: 2.0 * pct,
            latency_rel: pct / 100.0,
            alpha: 0.01,
            knee_pct: pct,
            allow_topology_change: false,
        }
    }
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance::from_pct(10.0)
    }
}

/// Per-metric verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// Within tolerance.
    Pass,
    /// Noteworthy drift, does not fail the comparison.
    Warn,
    /// Out of tolerance in the bad direction; fails the comparison.
    Regressed,
}

impl Status {
    /// Uppercase label used in tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Status::Pass => "PASS",
            Status::Warn => "WARN",
            Status::Regressed => "REGRESSED",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricComparison {
    /// Metric name (`throughput`, `latency`, `latency/get`,
    /// `counter/flushes`, ...).
    pub metric: String,
    /// Baseline value (mean latency in ns for histogram metrics).
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Relative delta in percent, `(candidate - baseline) / baseline`.
    pub delta_pct: f64,
    /// KS statistic `D`, for histogram metrics.
    pub ks_d: Option<f64>,
    /// KS p-value, for histogram metrics.
    pub ks_p: Option<f64>,
    /// Wasserstein-1 distance in ns, for histogram metrics.
    pub wasserstein: Option<f64>,
    /// Verdict for this metric.
    pub status: Status,
    /// One-line human explanation of the verdict.
    pub note: String,
}

/// Machine-readable outcome of comparing two reports.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Label of the baseline side (path or description).
    pub baseline: String,
    /// Label of the candidate side.
    pub candidate: String,
    /// Per-metric verdicts.
    pub metrics: Vec<MetricComparison>,
    /// Worst per-metric status.
    pub status: Status,
}

impl ComparisonReport {
    /// True when any metric regressed — callers should exit non-zero.
    pub fn regressed(&self) -> bool {
        self.status == Status::Regressed
    }

    /// Renders the human-readable verdict table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("baseline:  {}\n", self.baseline));
        out.push_str(&format!("candidate: {}\n", self.candidate));
        out.push_str(&format!(
            "{:<20} {:>14} {:>14} {:>9} {:>10} {:>12}  {:<9} {}\n",
            "metric", "baseline", "candidate", "delta", "ks-p", "w1(ns)", "status", "note"
        ));
        for m in &self.metrics {
            let ks_p = m
                .ks_p
                .map(|p| format!("{p:.4}"))
                .unwrap_or_else(|| "-".to_string());
            let w1 = m
                .wasserstein
                .map(|w| format!("{w:.1}"))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{:<20} {:>14.1} {:>14.1} {:>8.1}% {:>10} {:>12}  {:<9} {}\n",
                m.metric,
                m.baseline,
                m.candidate,
                m.delta_pct,
                ks_p,
                w1,
                m.status.label(),
                m.note
            ));
        }
        out.push_str(&format!("verdict: {}\n", self.status.label()));
        out
    }
}

impl Serialize for ComparisonReport {
    fn to_value(&self) -> Value {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let opt = |v: Option<f64>| match v {
                    Some(f) => Value::Float(f),
                    None => Value::Null,
                };
                Value::Object(vec![
                    ("metric".to_string(), m.metric.to_value()),
                    ("baseline".to_string(), Value::Float(m.baseline)),
                    ("candidate".to_string(), Value::Float(m.candidate)),
                    ("delta_pct".to_string(), Value::Float(m.delta_pct)),
                    ("ks_d".to_string(), opt(m.ks_d)),
                    ("ks_p".to_string(), opt(m.ks_p)),
                    ("wasserstein".to_string(), opt(m.wasserstein)),
                    (
                        "status".to_string(),
                        m.status.label().to_string().to_value(),
                    ),
                    ("note".to_string(), m.note.to_value()),
                ])
            })
            .collect();
        Value::Object(vec![
            ("baseline".to_string(), self.baseline.to_value()),
            ("candidate".to_string(), self.candidate.to_value()),
            ("metrics".to_string(), Value::Array(metrics)),
            (
                "status".to_string(),
                self.status.label().to_string().to_value(),
            ),
        ])
    }
}

/// Decodes a log-bucketed histogram back into representative samples:
/// each occupied bucket contributes its midpoint, with counts scaled
/// proportionally so no side exceeds [`MAX_SAMPLES`].
fn decode_samples(hist: &LogHistogram) -> Vec<f64> {
    let total = hist.count();
    if total == 0 {
        return Vec::new();
    }
    // Ceil division keeps every bucket's share proportional while
    // guaranteeing the cap; small buckets still contribute ≥1 sample.
    let scale = total.div_ceil(MAX_SAMPLES as u64).max(1);
    let mut samples = Vec::new();
    for (floor, count) in hist.buckets() {
        let (lo, hi) = bucket_bounds(floor);
        let mid = (lo as f64 + hi as f64) / 2.0;
        let n = count.div_ceil(scale);
        for _ in 0..n {
            samples.push(mid);
        }
    }
    samples
}

/// Compares one pair of latency histograms.
pub(crate) fn compare_histograms(
    metric: &str,
    baseline: &LogHistogram,
    candidate: &LogHistogram,
    tol: &Tolerance,
) -> MetricComparison {
    let base_mean = baseline.mean();
    let cand_mean = candidate.mean();
    let a = decode_samples(baseline);
    let b = decode_samples(candidate);
    if a.is_empty() || b.is_empty() {
        return MetricComparison {
            metric: metric.to_string(),
            baseline: base_mean,
            candidate: cand_mean,
            delta_pct: 0.0,
            ks_d: None,
            ks_p: None,
            wasserstein: None,
            status: Status::Warn,
            note: "one side has no samples".to_string(),
        };
    }
    let ks = ks_test(&a, &b);
    let w1 = wasserstein_distance(&a, &b);
    let rel_w1 = if base_mean > 0.0 { w1 / base_mean } else { 0.0 };
    let delta_pct = if base_mean > 0.0 {
        (cand_mean - base_mean) / base_mean * 100.0
    } else {
        0.0
    };
    let slower = cand_mean > base_mean;
    let (status, note) = if slower && rel_w1 > tol.latency_rel && ks.rejects(tol.alpha) {
        (
            Status::Regressed,
            format!(
                "slower by {:.0}% of baseline mean (limit {:.0}%), KS rejects",
                rel_w1 * 100.0,
                tol.latency_rel * 100.0
            ),
        )
    } else if slower && rel_w1 > tol.latency_rel / 2.0 {
        (
            Status::Warn,
            format!("slower by {:.0}% of baseline mean", rel_w1 * 100.0),
        )
    } else if ks.rejects(tol.alpha) {
        (
            Status::Pass,
            "distributions differ (KS) but shift is within tolerance".to_string(),
        )
    } else {
        (Status::Pass, String::new())
    };
    MetricComparison {
        metric: metric.to_string(),
        baseline: base_mean,
        candidate: cand_mean,
        delta_pct,
        ks_d: Some(ks.d),
        ks_p: Some(ks.p_value),
        wasserstein: Some(w1),
        status,
        note,
    }
}

/// Compares a scalar where *lower is worse* (throughput).
pub(crate) fn compare_rate(
    metric: &str,
    baseline: f64,
    candidate: f64,
    tol_pct: f64,
) -> MetricComparison {
    let delta_pct = if baseline > 0.0 {
        (candidate - baseline) / baseline * 100.0
    } else {
        0.0
    };
    let (status, note) = if delta_pct < -tol_pct {
        (
            Status::Regressed,
            format!("dropped {:.1}% (limit {:.0}%)", -delta_pct, tol_pct),
        )
    } else if delta_pct < -tol_pct / 2.0 {
        (Status::Warn, format!("dropped {:.1}%", -delta_pct))
    } else {
        (Status::Pass, String::new())
    };
    MetricComparison {
        metric: metric.to_string(),
        baseline,
        candidate,
        delta_pct,
        ks_d: None,
        ks_p: None,
        wasserstein: None,
        status,
        note,
    }
}

/// Gates two reports' partition-map digests. Digests that differ while
/// both are *known* mean the two sides routed keys across different
/// slot→shard assignments: REGRESSED by default, WARN under
/// [`Tolerance::allow_topology_change`]. An `"unknown"` digest on
/// either side (reports predating partition maps, or unsharded runs)
/// contributes nothing — old baselines must keep gating.
pub(crate) fn compare_topology(
    baseline: &crate::schema::RunMeta,
    candidate: &crate::schema::RunMeta,
    tol: &Tolerance,
) -> Option<MetricComparison> {
    let (b, c) = (&baseline.partition_digest, &candidate.partition_digest);
    if b == c || b == "unknown" || c == "unknown" {
        return None;
    }
    let (status, note) = if tol.allow_topology_change {
        (
            Status::Warn,
            format!("partition map changed ({b} -> {c}); allowed by override"),
        )
    } else {
        (
            Status::Regressed,
            format!(
                "baseline partition map {b}, candidate {c} \
                 (pass --allow-topology-change to compare anyway)"
            ),
        )
    };
    Some(MetricComparison {
        metric: "topology".to_string(),
        baseline: baseline.reshard_events.len() as f64,
        candidate: candidate.reshard_events.len() as f64,
        delta_pct: 0.0,
        ks_d: None,
        ks_p: None,
        wasserstein: None,
        status,
        note,
    })
}

/// Gates two reports' recovery sections. Contributes nothing unless
/// *both* sides measured a recovery — ordinary replay reports and
/// baselines predating the crash harness must keep gating untouched.
/// The one hard rule: a candidate that lost acknowledged writes where
/// the baseline lost none is REGRESSED — durability is a contract, not
/// a tolerance band. Recovery time drifting slower than the counter
/// tolerance is WARN only: it is a single wall-clock sample, too noisy
/// to fail a run on its own.
pub(crate) fn compare_recovery(
    baseline: &RunReport,
    candidate: &RunReport,
    tol: &Tolerance,
) -> Vec<MetricComparison> {
    let (Some(b), Some(c)) = (&baseline.recovery, &candidate.recovery) else {
        return Vec::new();
    };
    let mut out = Vec::new();

    let loss_status = if c.loss_window > 0 && b.loss_window == 0 {
        (
            Status::Regressed,
            format!(
                "candidate lost {} acknowledged writes; baseline lost none",
                c.loss_window
            ),
        )
    } else if c.loss_window > b.loss_window {
        (
            Status::Warn,
            format!(
                "loss window grew from {} to {} acknowledged writes",
                b.loss_window, c.loss_window
            ),
        )
    } else {
        (Status::Pass, String::new())
    };
    out.push(MetricComparison {
        metric: "recovery/loss_window".to_string(),
        baseline: b.loss_window as f64,
        candidate: c.loss_window as f64,
        delta_pct: 0.0,
        ks_d: None,
        ks_p: None,
        wasserstein: None,
        status: loss_status.0,
        note: loss_status.1,
    });

    let base_us = b.recovery_us as f64;
    let cand_us = c.recovery_us as f64;
    let delta_pct = if base_us > 0.0 {
        (cand_us - base_us) / base_us * 100.0
    } else {
        0.0
    };
    let (status, note) = if delta_pct > tol.counter_pct {
        (
            Status::Warn,
            format!(
                "recovery slowed {:.1}% (tolerance {:.0}%)",
                delta_pct, tol.counter_pct
            ),
        )
    } else {
        (Status::Pass, String::new())
    };
    out.push(MetricComparison {
        metric: "recovery/recovery_us".to_string(),
        baseline: base_us,
        candidate: cand_us,
        delta_pct,
        ks_d: None,
        ks_p: None,
        wasserstein: None,
        status,
        note,
    });
    out
}

/// Gates two reports' decomposition sections. Contributes one entry
/// per segment present on both sides; nothing when either side was
/// untraced — embedded baselines keep gating traced drives untouched.
/// Always WARN at worst: the segments split the same wall-clock the
/// overall latency histogram already gates, so a shifted segment is
/// diagnostic signal (*where* a regression lives — wire, queue, or
/// store), never an independent failure.
pub(crate) fn compare_decomposition(
    baseline: &RunReport,
    candidate: &RunReport,
    tol: &Tolerance,
) -> Vec<MetricComparison> {
    let mut out = Vec::new();
    for (name, base_hist) in &baseline.decomposition {
        if let Some((_, cand_hist)) = candidate.decomposition.iter().find(|(n, _)| n == name) {
            let mut cmp =
                compare_histograms(&format!("decomposition/{name}"), base_hist, cand_hist, tol);
            if cmp.status == Status::Regressed {
                cmp.status = Status::Warn;
                cmp.note
                    .push_str("; segment shifts diagnose, the overall latency gate decides");
            }
            out.push(cmp);
        }
    }
    out
}

/// Compares a directionless counter: drift beyond tolerance is WARN,
/// never REGRESSED (more compactions may be better or worse — a human
/// decides).
fn compare_counter(metric: &str, baseline: f64, candidate: f64, tol_pct: f64) -> MetricComparison {
    let delta_pct = if baseline > 0.0 {
        (candidate - baseline) / baseline * 100.0
    } else if candidate > 0.0 {
        100.0
    } else {
        0.0
    };
    let (status, note) = if delta_pct.abs() > tol_pct {
        (
            Status::Warn,
            format!("drifted {:.1}% (tolerance {:.0}%)", delta_pct, tol_pct),
        )
    } else {
        (Status::Pass, String::new())
    };
    MetricComparison {
        metric: metric.to_string(),
        baseline,
        candidate,
        delta_pct,
        ks_d: None,
        ks_p: None,
        wasserstein: None,
        status,
        note,
    }
}

/// Diffs `candidate` against `baseline`.
///
/// Compares throughput, the overall latency histogram, every per-op
/// histogram present on both sides, and every snapshot counter present
/// on both sides. Store/workload mismatches produce an immediate
/// REGRESSED entry — comparing apples to oranges is itself a failure.
pub fn compare_reports(
    baseline: &RunReport,
    candidate: &RunReport,
    baseline_label: &str,
    candidate_label: &str,
    tol: &Tolerance,
) -> ComparisonReport {
    let mut metrics = Vec::new();
    if baseline.store != candidate.store
        || baseline.workload != candidate.workload
        || baseline.meta.transport != candidate.meta.transport
        || baseline.meta.arrival != candidate.meta.arrival
    {
        metrics.push(MetricComparison {
            metric: "identity".to_string(),
            baseline: 0.0,
            candidate: 0.0,
            delta_pct: 0.0,
            ks_d: None,
            ks_p: None,
            wasserstein: None,
            status: Status::Regressed,
            note: format!(
                "baseline is {}/{} over {} ({} arrivals), candidate is {}/{} over {} ({} arrivals)",
                baseline.store,
                baseline.workload,
                baseline.meta.transport,
                baseline.meta.arrival,
                candidate.store,
                candidate.workload,
                candidate.meta.transport,
                candidate.meta.arrival
            ),
        });
    }
    if let Some(topology) = compare_topology(&baseline.meta, &candidate.meta, tol) {
        metrics.push(topology);
    }
    metrics.extend(compare_recovery(baseline, candidate, tol));
    metrics.push(compare_rate(
        "throughput",
        baseline.throughput,
        candidate.throughput,
        tol.throughput_pct,
    ));
    metrics.push(compare_histograms(
        "latency",
        &baseline.latency,
        &candidate.latency,
        tol,
    ));
    for (name, base_hist) in &baseline.per_op {
        if let Some((_, cand_hist)) = candidate.per_op.iter().find(|(n, _)| n == name) {
            metrics.push(compare_histograms(
                &format!("latency/{name}"),
                base_hist,
                cand_hist,
                tol,
            ));
        }
    }
    metrics.extend(compare_decomposition(baseline, candidate, tol));
    for (name, base_val) in &baseline.metrics.counters {
        if let Some(cand_val) = candidate.metrics.counter(name) {
            metrics.push(compare_counter(
                &format!("counter/{name}"),
                *base_val as f64,
                cand_val as f64,
                tol.counter_pct,
            ));
        }
    }
    let status = metrics
        .iter()
        .map(|m| m.status)
        .max()
        .unwrap_or(Status::Pass);
    ComparisonReport {
        baseline: baseline_label.to_string(),
        candidate: candidate_label.to_string(),
        metrics,
        status,
    }
}

/// Finds the baseline report in `dir` matching `store`/`workload`.
///
/// Scans every `*.json` in the directory, parses those that are valid
/// reports, and picks the newest (by `created_unix_ms`) whose identity
/// matches. Unparseable files are skipped — a baseline directory may
/// hold other artifacts.
pub fn find_baseline(
    dir: &std::path::Path,
    store: &str,
    workload: &str,
) -> Result<(std::path::PathBuf, RunReport), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut best: Option<(std::path::PathBuf, RunReport)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Ok(report) = RunReport::load(&path) else {
            continue;
        };
        if report.store != store || report.workload != workload {
            continue;
        }
        let newer = match &best {
            Some((_, b)) => report.meta.created_unix_ms > b.meta.created_unix_ms,
            None => true,
        };
        if newer {
            best = Some((path, report));
        }
    }
    best.ok_or_else(|| {
        format!(
            "no baseline report for {store}/{workload} in {}",
            dir.display()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RunMeta, SCHEMA_VERSION};
    use gadget_obs::MetricsSnapshot;

    fn report_with_latency(shift: u64, throughput: f64) -> RunReport {
        let mut latency = LogHistogram::new();
        for i in 0..2_000u64 {
            latency.record(1_000 + (i % 97) * 10 + shift);
        }
        let mut metrics = MetricsSnapshot::new();
        metrics.push_counter("flushes", 10 + shift / 1_000);
        RunReport {
            version: SCHEMA_VERSION,
            store: "mem".to_string(),
            workload: "unit".to_string(),
            meta: RunMeta::default(),
            operations: 2_000,
            seconds: 1.0,
            throughput,
            hits: 0,
            misses: 0,
            latency: latency.clone(),
            per_op: vec![("get".to_string(), latency)],
            lag: LogHistogram::new(),
            metrics,
            attribution: None,
            recovery: None,
            decomposition: Vec::new(),
        }
    }

    #[test]
    fn decomposition_drift_warns_but_never_regresses() {
        // A segment blowing up 40x would regress as a latency metric;
        // as a decomposition entry it must cap at WARN — the overall
        // latency gate owns the verdict, the segments say *where*.
        let mut base = report_with_latency(0, 10_000.0);
        let mut cand = report_with_latency(0, 10_000.0);
        let seg = |shift: u64| {
            let mut h = LogHistogram::new();
            for i in 0..2_000u64 {
                h.record(500 + (i % 83) * 9 + shift);
            }
            h
        };
        base.decomposition = vec![
            ("outbound".to_string(), seg(0)),
            ("service".to_string(), seg(0)),
        ];
        cand.decomposition = vec![
            ("outbound".to_string(), seg(0)),
            ("service".to_string(), seg(40_000)),
        ];
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        let service = cmp
            .metrics
            .iter()
            .find(|m| m.metric == "decomposition/service")
            .expect("segment compared");
        assert_eq!(service.status, Status::Warn);
        assert!(service.note.contains("diagnose"), "{}", service.note);
        let outbound = cmp
            .metrics
            .iter()
            .find(|m| m.metric == "decomposition/outbound")
            .expect("segment compared");
        assert_eq!(outbound.status, Status::Pass);
        assert!(!cmp.regressed(), "WARN does not fail the gate");

        // Untraced candidate: the section contributes nothing.
        cand.decomposition.clear();
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        assert!(!cmp
            .metrics
            .iter()
            .any(|m| m.metric.starts_with("decomposition/")));
    }

    #[test]
    fn mismatched_arrival_regresses() {
        // A closed-loop curve and an open-loop curve measure different
        // quantities; gating one against the other is meaningless.
        let base = report_with_latency(0, 10_000.0);
        let mut other = report_with_latency(0, 10_000.0);
        other.meta.arrival = "poisson".to_string();
        let cmp = compare_reports(&base, &other, "a", "b", &Tolerance::default());
        assert!(cmp.regressed());
        assert_eq!(cmp.metrics[0].metric, "identity");
        assert!(
            cmp.metrics[0].note.contains("poisson"),
            "{}",
            cmp.metrics[0].note
        );
    }

    #[test]
    fn identical_reports_pass() {
        let a = report_with_latency(0, 10_000.0);
        let cmp = compare_reports(&a, &a.clone(), "a", "b", &Tolerance::default());
        assert_eq!(cmp.status, Status::Pass, "{}", cmp.to_table());
        assert!(!cmp.regressed());
        let lat = cmp.metrics.iter().find(|m| m.metric == "latency").unwrap();
        assert!(lat.ks_p.unwrap() > 0.99);
        assert_eq!(lat.wasserstein.unwrap(), 0.0);
    }

    #[test]
    fn small_noise_passes_large_shift_regresses() {
        let base = report_with_latency(0, 10_000.0);
        // ~2% mean shift: within the 10% default latency tolerance.
        let noisy = report_with_latency(30, 10_000.0);
        let cmp = compare_reports(&base, &noisy, "a", "b", &Tolerance::default());
        assert_ne!(cmp.status, Status::Regressed, "{}", cmp.to_table());
        // 4x mean shift: unambiguous regression.
        let slow = report_with_latency(4_500, 10_000.0);
        let cmp = compare_reports(&base, &slow, "a", "b", &Tolerance::default());
        assert!(cmp.regressed(), "{}", cmp.to_table());
        let lat = cmp.metrics.iter().find(|m| m.metric == "latency").unwrap();
        assert_eq!(lat.status, Status::Regressed);
        assert!(lat.ks_p.unwrap() < 0.01);
        assert!(lat.wasserstein.unwrap() > 1_000.0);
    }

    #[test]
    fn faster_candidate_never_regresses_latency() {
        let base = report_with_latency(4_500, 10_000.0);
        let fast = report_with_latency(0, 10_000.0);
        let cmp = compare_reports(&base, &fast, "a", "b", &Tolerance::default());
        let lat = cmp.metrics.iter().find(|m| m.metric == "latency").unwrap();
        assert_ne!(lat.status, Status::Regressed, "{}", cmp.to_table());
    }

    #[test]
    fn throughput_drop_regresses() {
        let base = report_with_latency(0, 10_000.0);
        let slow = report_with_latency(0, 7_000.0);
        let cmp = compare_reports(&base, &slow, "a", "b", &Tolerance::from_pct(10.0));
        assert!(cmp.regressed(), "{}", cmp.to_table());
        let tp = cmp
            .metrics
            .iter()
            .find(|m| m.metric == "throughput")
            .unwrap();
        assert_eq!(tp.status, Status::Regressed);
        // A gain never regresses.
        let fast = report_with_latency(0, 14_000.0);
        let cmp = compare_reports(&base, &fast, "a", "b", &Tolerance::from_pct(10.0));
        assert!(!cmp.regressed(), "{}", cmp.to_table());
    }

    #[test]
    fn counter_drift_warns_but_does_not_fail() {
        let mut base = report_with_latency(0, 10_000.0);
        let mut cand = report_with_latency(0, 10_000.0);
        base.metrics.push_counter("stalls", 10);
        cand.metrics.push_counter("stalls", 100);
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        let c = cmp
            .metrics
            .iter()
            .find(|m| m.metric == "counter/stalls")
            .unwrap();
        assert_eq!(c.status, Status::Warn);
        assert!(!cmp.regressed(), "{}", cmp.to_table());
    }

    #[test]
    fn mismatched_identity_regresses() {
        let base = report_with_latency(0, 10_000.0);
        let mut other = report_with_latency(0, 10_000.0);
        other.store = "lsm".to_string();
        let cmp = compare_reports(&base, &other, "a", "b", &Tolerance::default());
        assert!(cmp.regressed());
        assert_eq!(cmp.metrics[0].metric, "identity");
    }

    #[test]
    fn mismatched_transport_regresses() {
        // Same store and workload, but one side was measured across the
        // gadget-server wire: the latency curves are not comparable.
        let base = report_with_latency(0, 10_000.0);
        let mut other = report_with_latency(0, 10_000.0);
        other.meta.transport = "tcp".to_string();
        let cmp = compare_reports(&base, &other, "a", "b", &Tolerance::default());
        assert!(cmp.regressed());
        assert_eq!(cmp.metrics[0].metric, "identity");
        assert!(
            cmp.metrics[0].note.contains("tcp"),
            "{}",
            cmp.metrics[0].note
        );
    }

    #[test]
    fn mismatched_partition_digest_regresses_unless_allowed() {
        let mut base = report_with_latency(0, 10_000.0);
        let mut cand = report_with_latency(0, 10_000.0);
        base.meta.partition_digest = "aaaaaaaaaaaaaaaa".to_string();
        cand.meta.partition_digest = "bbbbbbbbbbbbbbbb".to_string();
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        assert!(cmp.regressed(), "{}", cmp.to_table());
        let topo = cmp.metrics.iter().find(|m| m.metric == "topology").unwrap();
        assert_eq!(topo.status, Status::Regressed);
        assert!(
            topo.note.contains("--allow-topology-change"),
            "{}",
            topo.note
        );

        let tol = Tolerance {
            allow_topology_change: true,
            ..Tolerance::default()
        };
        let cmp = compare_reports(&base, &cand, "a", "b", &tol);
        assert!(!cmp.regressed(), "{}", cmp.to_table());
        let topo = cmp.metrics.iter().find(|m| m.metric == "topology").unwrap();
        assert_eq!(topo.status, Status::Warn);
    }

    #[test]
    fn unknown_partition_digest_never_gates() {
        // Old baselines carry no digest; a resharded candidate must
        // still be comparable against them without the override.
        let base = report_with_latency(0, 10_000.0);
        let mut cand = report_with_latency(0, 10_000.0);
        cand.meta.partition_digest = "bbbbbbbbbbbbbbbb".to_string();
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        assert!(!cmp.regressed(), "{}", cmp.to_table());
        assert!(!cmp.metrics.iter().any(|m| m.metric == "topology"));
    }

    fn recovery(loss: u64, us: u64) -> crate::schema::RecoveryReport {
        crate::schema::RecoveryReport {
            recovery_us: us,
            replayed_wal_bytes: 4_096,
            loss_window: loss,
            acked_ops: 1_000,
            kill_at_op: 1_000,
            checkpoint_restored: false,
            torn_tail: "none".to_string(),
            crashes: 1,
        }
    }

    #[test]
    fn acknowledged_write_loss_regresses() {
        let mut base = report_with_latency(0, 10_000.0);
        let mut cand = report_with_latency(0, 10_000.0);
        base.recovery = Some(recovery(0, 15_000));
        cand.recovery = Some(recovery(3, 15_000));
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        assert!(cmp.regressed(), "{}", cmp.to_table());
        let loss = cmp
            .metrics
            .iter()
            .find(|m| m.metric == "recovery/loss_window")
            .unwrap();
        assert_eq!(loss.status, Status::Regressed);
        assert!(loss.note.contains("lost 3 acknowledged"), "{}", loss.note);
        // The reverse direction — candidate loses nothing — passes.
        let cmp = compare_reports(&cand, &base, "b", "a", &Tolerance::default());
        assert!(!cmp.regressed(), "{}", cmp.to_table());
    }

    #[test]
    fn missing_recovery_section_never_gates() {
        // A crash-harness candidate gated against an ordinary replay
        // baseline (or vice versa) contributes no recovery metrics at
        // all — old baselines keep working.
        let base = report_with_latency(0, 10_000.0);
        let mut cand = report_with_latency(0, 10_000.0);
        cand.recovery = Some(recovery(7, 15_000));
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        assert!(!cmp.regressed(), "{}", cmp.to_table());
        assert!(!cmp.metrics.iter().any(|m| m.metric.starts_with("recovery")));
    }

    #[test]
    fn slower_recovery_warns_but_does_not_fail() {
        let mut base = report_with_latency(0, 10_000.0);
        let mut cand = report_with_latency(0, 10_000.0);
        base.recovery = Some(recovery(0, 10_000));
        cand.recovery = Some(recovery(0, 30_000));
        let cmp = compare_reports(&base, &cand, "a", "b", &Tolerance::default());
        assert!(!cmp.regressed(), "{}", cmp.to_table());
        let us = cmp
            .metrics
            .iter()
            .find(|m| m.metric == "recovery/recovery_us")
            .unwrap();
        assert_eq!(us.status, Status::Warn);
        assert!(us.note.contains("recovery slowed"), "{}", us.note);
    }

    #[test]
    fn decode_respects_sample_cap() {
        let mut h = LogHistogram::new();
        for i in 0..100_000u64 {
            h.record(100 + i % 10_000);
        }
        let samples = decode_samples(&h);
        assert!(!samples.is_empty());
        // Ceil-scaling may land slightly under the cap per bucket but
        // the total stays in the same order of magnitude.
        assert!(samples.len() <= 2 * MAX_SAMPLES, "{}", samples.len());
    }

    #[test]
    fn find_baseline_picks_matching_newest() {
        let dir = std::env::temp_dir().join(format!("gadget-report-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut old = report_with_latency(0, 5_000.0);
        old.meta.created_unix_ms = 1_000;
        old.save(&dir.join("old.json")).unwrap();
        let mut new = report_with_latency(0, 6_000.0);
        new.meta.created_unix_ms = 2_000;
        new.save(&dir.join("new.json")).unwrap();
        let mut other = report_with_latency(0, 9_000.0);
        other.workload = "other".to_string();
        other.meta.created_unix_ms = 3_000;
        other.save(&dir.join("other.json")).unwrap();
        std::fs::write(dir.join("junk.json"), "not a report").unwrap();
        let (path, report) = find_baseline(&dir, "mem", "unit").unwrap();
        assert!(path.ends_with("new.json"));
        assert_eq!(report.throughput, 6_000.0);
        assert!(find_baseline(&dir, "mem", "absent").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
