//! The versioned `SweepReport` wire schema and curve-level comparison.
//!
//! A sweep report is the artifact of one latency–throughput sweep: one
//! full [`RunReport`] per rate step, the offered/achieved rate and
//! sustainability verdict alongside each, and the detected knee. The
//! serialization follows the `RunReport` conventions exactly —
//! hand-written, fixed field order, unknown fields rejected, version
//! enforced, byte-stable round-trips — so the golden-fixture machinery
//! and CI gating extend to curves unchanged.
//!
//! [`compare_sweeps`] gates regressions on the *whole curve*: every
//! rate step shared by both sweeps is compared point-by-point (achieved
//! rate with the throughput rule, intended-time latency with the
//! KS + Wasserstein two-factor rule) and the knee may not shift down by
//! more than [`Tolerance::knee_pct`]. A store that only collapses near
//! saturation cannot hide behind a healthy low-rate point, and a knee
//! that quietly slides left fails even when every surviving step still
//! passes.

use serde::{Deserialize, Error, Serialize, Value};

use crate::compare::{
    compare_histograms, compare_rate, compare_topology, ComparisonReport, MetricComparison, Status,
    Tolerance,
};
use crate::schema::{reject_unknown, RunMeta, RunReport};

/// Version stamped into every sweep report; readers reject others.
pub const SWEEP_SCHEMA_VERSION: u32 = 1;

/// Relative tolerance when pairing steps of two sweeps by offered rate.
const RATE_MATCH_REL: f64 = 1e-6;

/// One rate step of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStep {
    /// Offered load in ops/s.
    pub offered_rate: f64,
    /// Achieved throughput in ops/s.
    pub achieved_rate: f64,
    /// Whether the step met the sweep's sustainability criteria.
    pub sustainable: bool,
    /// The step's full report (intended-time latency under open-loop
    /// arrivals).
    pub report: RunReport,
}

/// The detected knee: the highest sustainable offered rate.
#[derive(Debug, Clone, PartialEq)]
pub struct KneePoint {
    /// Index into [`SweepReport::steps`].
    pub step_index: u64,
    /// Offered load at the knee in ops/s.
    pub offered_rate: f64,
    /// Achieved throughput at the knee in ops/s.
    pub achieved_rate: f64,
    /// Intended-time p99 at the knee in ns.
    pub p99_ns: u64,
}

/// A complete, versioned record of one latency–throughput sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Schema version ([`SWEEP_SCHEMA_VERSION`] when produced here).
    pub version: u32,
    /// Store the sweep executed against.
    pub store: String,
    /// Workload label.
    pub workload: String,
    /// Arrival model every step was paced with.
    pub arrival: String,
    /// Arrival-schedule seed (same seed → same schedules → comparable
    /// curves).
    pub seed: u64,
    /// Sustainability fraction each step was judged against.
    pub sustainable_fraction: f64,
    /// p99 bound each step was judged against (0 = throughput-only).
    pub p99_bound_ns: u64,
    /// Provenance (shared by every step; per-step offered rates live on
    /// the steps).
    pub meta: RunMeta,
    /// All rate steps, sorted by offered rate ascending.
    pub steps: Vec<SweepStep>,
    /// The knee, when any step sustained.
    pub knee: Option<KneePoint>,
}

impl SweepReport {
    /// Lifts a replay-layer sweep outcome into a report. `meta`
    /// supplies provenance; each step's report inherits it with the
    /// step's own pacing stamped in by [`RunReport::from_run`].
    pub fn from_sweep(
        outcome: &gadget_replay::SweepOutcome,
        opts: &gadget_replay::SweepOptions,
        meta: RunMeta,
    ) -> Self {
        let steps: Vec<SweepStep> = outcome
            .steps
            .iter()
            .map(|s| SweepStep {
                offered_rate: s.offered,
                achieved_rate: s.achieved,
                sustainable: s.sustainable,
                report: RunReport::from_run(&s.run, meta.clone()),
            })
            .collect();
        let knee = outcome.knee.map(|i| KneePoint {
            step_index: i as u64,
            offered_rate: steps[i].offered_rate,
            achieved_rate: steps[i].achieved_rate,
            p99_ns: steps[i].report.latency.percentile(99.0),
        });
        let (store, workload) = match steps.first() {
            Some(s) => (s.report.store.clone(), s.report.workload.clone()),
            None => ("unknown".to_string(), "unknown".to_string()),
        };
        SweepReport {
            version: SWEEP_SCHEMA_VERSION,
            store,
            workload,
            arrival: opts.arrival.name().to_string(),
            seed: opts.seed,
            sustainable_fraction: opts.sustainable_fraction,
            p99_bound_ns: opts.p99_bound_ns,
            meta,
            steps,
            knee,
        }
    }

    /// Serializes to pretty JSON with a trailing newline (the canonical
    /// on-disk form).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serialization is infallible");
        s.push('\n');
        s
    }

    /// Parses a sweep report from JSON, enforcing the schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str::<SweepReport>(text).map_err(|e| e.to_string())
    }

    /// Writes the canonical JSON form to `path`, creating parent
    /// directories as needed.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads and parses a sweep report from `path`.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        SweepReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

const SWEEP_FIELDS: &[&str] = &[
    "version",
    "store",
    "workload",
    "arrival",
    "seed",
    "sustainable_fraction",
    "p99_bound_ns",
    "meta",
    "steps",
    "knee",
];

const STEP_FIELDS: &[&str] = &["offered_rate", "achieved_rate", "sustainable", "report"];

const KNEE_FIELDS: &[&str] = &["step_index", "offered_rate", "achieved_rate", "p99_ns"];

impl Serialize for SweepStep {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("offered_rate".to_string(), self.offered_rate.to_value()),
            ("achieved_rate".to_string(), self.achieved_rate.to_value()),
            ("sustainable".to_string(), self.sustainable.to_value()),
            ("report".to_string(), self.report.to_value()),
        ])
    }
}

impl Deserialize for SweepStep {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "SweepStep";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        reject_unknown(members, STEP_FIELDS, CTX)?;
        let field = |name: &str| -> Result<&Value, Error> {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        Ok(SweepStep {
            offered_rate: f64::from_value(field("offered_rate")?)?,
            achieved_rate: f64::from_value(field("achieved_rate")?)?,
            sustainable: bool::from_value(field("sustainable")?)?,
            report: RunReport::from_value(field("report")?)?,
        })
    }
}

impl Serialize for KneePoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("step_index".to_string(), self.step_index.to_value()),
            ("offered_rate".to_string(), self.offered_rate.to_value()),
            ("achieved_rate".to_string(), self.achieved_rate.to_value()),
            ("p99_ns".to_string(), self.p99_ns.to_value()),
        ])
    }
}

impl Deserialize for KneePoint {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "KneePoint";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        reject_unknown(members, KNEE_FIELDS, CTX)?;
        let field = |name: &str| -> Result<&Value, Error> {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        Ok(KneePoint {
            step_index: u64::from_value(field("step_index")?)?,
            offered_rate: f64::from_value(field("offered_rate")?)?,
            achieved_rate: f64::from_value(field("achieved_rate")?)?,
            p99_ns: u64::from_value(field("p99_ns")?)?,
        })
    }
}

impl Serialize for SweepReport {
    fn to_value(&self) -> Value {
        let steps = self.steps.iter().map(|s| s.to_value()).collect();
        let knee = match &self.knee {
            Some(k) => k.to_value(),
            None => Value::Null,
        };
        Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("store".to_string(), self.store.to_value()),
            ("workload".to_string(), self.workload.to_value()),
            ("arrival".to_string(), self.arrival.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            (
                "sustainable_fraction".to_string(),
                self.sustainable_fraction.to_value(),
            ),
            ("p99_bound_ns".to_string(), self.p99_bound_ns.to_value()),
            ("meta".to_string(), self.meta.to_value()),
            ("steps".to_string(), Value::Array(steps)),
            ("knee".to_string(), knee),
        ])
    }
}

impl Deserialize for SweepReport {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "SweepReport";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        reject_unknown(members, SWEEP_FIELDS, CTX)?;
        let field = |name: &str| -> Result<&Value, Error> {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        let version = u32::from_value(field("version")?)?;
        if version != SWEEP_SCHEMA_VERSION {
            return Err(Error::custom(format!(
                "unsupported sweep report version {version} \
                 (this build reads version {SWEEP_SCHEMA_VERSION})"
            )));
        }
        let step_values = match field("steps")? {
            Value::Array(items) => items,
            other => return Err(Error::expected("array", other, "SweepReport.steps")),
        };
        let mut steps = Vec::with_capacity(step_values.len());
        for v in step_values {
            steps.push(SweepStep::from_value(v)?);
        }
        let knee = match field("knee")? {
            Value::Null => None,
            other => Some(KneePoint::from_value(other)?),
        };
        Ok(SweepReport {
            version,
            store: String::from_value(field("store")?)?,
            workload: String::from_value(field("workload")?)?,
            arrival: String::from_value(field("arrival")?)?,
            seed: u64::from_value(field("seed")?)?,
            sustainable_fraction: f64::from_value(field("sustainable_fraction")?)?,
            p99_bound_ns: u64::from_value(field("p99_bound_ns")?)?,
            meta: RunMeta::from_value(field("meta")?)?,
            steps,
            knee,
        })
    }
}

/// Diffs `candidate`'s latency–throughput curve against `baseline`'s.
///
/// Steps are paired by offered rate; every shared step contributes an
/// achieved-rate metric (`rate@<offered>`) and an intended-time latency
/// metric (`latency@<offered>`). The knee contributes a `knee` metric
/// gated by [`Tolerance::knee_pct`] (a vanished knee counts as rate 0 —
/// an unconditional regression). Sweeps over different stores,
/// workloads, or arrival models regress immediately, and so do sweeps
/// with no shared steps — a curve that silently lost its points must
/// not pass by vacuity. Steps present on only one side warn.
pub fn compare_sweeps(
    baseline: &SweepReport,
    candidate: &SweepReport,
    baseline_label: &str,
    candidate_label: &str,
    tol: &Tolerance,
) -> ComparisonReport {
    let mut metrics = Vec::new();
    let scalar = |metric: &str, b: f64, c: f64, status: Status, note: String| MetricComparison {
        metric: metric.to_string(),
        baseline: b,
        candidate: c,
        delta_pct: 0.0,
        ks_d: None,
        ks_p: None,
        wasserstein: None,
        status,
        note,
    };
    if baseline.store != candidate.store
        || baseline.workload != candidate.workload
        || baseline.arrival != candidate.arrival
        || baseline.meta.transport != candidate.meta.transport
    {
        metrics.push(scalar(
            "identity",
            0.0,
            0.0,
            Status::Regressed,
            format!(
                "baseline swept {}/{} over {} ({} arrivals), candidate {}/{} over {} ({} arrivals)",
                baseline.store,
                baseline.workload,
                baseline.meta.transport,
                baseline.arrival,
                candidate.store,
                candidate.workload,
                candidate.meta.transport,
                candidate.arrival
            ),
        ));
    }
    if let Some(topology) = compare_topology(&baseline.meta, &candidate.meta, tol) {
        metrics.push(topology);
    }

    let mut paired = 0usize;
    let mut unpaired = 0usize;
    for b in &baseline.steps {
        let m = candidate.steps.iter().find(|c| {
            (c.offered_rate - b.offered_rate).abs()
                <= RATE_MATCH_REL * b.offered_rate.abs().max(1.0)
        });
        let Some(c) = m else {
            unpaired += 1;
            continue;
        };
        paired += 1;
        let label = format!("{:.0}", b.offered_rate);
        metrics.push(compare_rate(
            &format!("rate@{label}"),
            b.achieved_rate,
            c.achieved_rate,
            tol.throughput_pct,
        ));
        metrics.push(compare_histograms(
            &format!("latency@{label}"),
            &b.report.latency,
            &c.report.latency,
            tol,
        ));
    }
    unpaired += candidate.steps.len() - paired;
    if paired == 0 {
        metrics.push(scalar(
            "coverage",
            baseline.steps.len() as f64,
            candidate.steps.len() as f64,
            Status::Regressed,
            "no rate step is shared by both sweeps".to_string(),
        ));
    } else if unpaired > 0 {
        metrics.push(scalar(
            "coverage",
            baseline.steps.len() as f64,
            candidate.steps.len() as f64,
            Status::Warn,
            format!("{unpaired} step(s) present on only one side"),
        ));
    }

    let knee_rate = |s: &SweepReport| s.knee.as_ref().map(|k| k.offered_rate).unwrap_or(0.0);
    let mut knee = compare_rate(
        "knee",
        knee_rate(baseline),
        knee_rate(candidate),
        tol.knee_pct,
    );
    if baseline.knee.is_some() && candidate.knee.is_none() {
        knee.status = Status::Regressed;
        knee.note = "candidate sustained no step at all".to_string();
    }
    metrics.push(knee);

    let status = metrics
        .iter()
        .map(|m| m.status)
        .max()
        .unwrap_or(Status::Pass);
    ComparisonReport {
        baseline: baseline_label.to_string(),
        candidate: candidate_label.to_string(),
        metrics,
        status,
    }
}

/// Finds the newest sweep baseline in `dir` matching `store`/`workload`
/// (by `meta.created_unix_ms`), mirroring
/// [`find_baseline`](crate::compare::find_baseline) for curves.
pub fn find_sweep_baseline(
    dir: &std::path::Path,
    store: &str,
    workload: &str,
) -> Result<(std::path::PathBuf, SweepReport), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut best: Option<(std::path::PathBuf, SweepReport)> = None;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Ok(report) = SweepReport::load(&path) else {
            continue;
        };
        if report.store != store || report.workload != workload {
            continue;
        }
        let newer = match &best {
            Some((_, b)) => report.meta.created_unix_ms > b.meta.created_unix_ms,
            None => true,
        };
        if newer {
            best = Some((path, report));
        }
    }
    best.ok_or_else(|| {
        format!(
            "no sweep baseline for {store}/{workload} in {}",
            dir.display()
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SCHEMA_VERSION;
    use gadget_obs::LogHistogram;

    /// A sweep with three steps whose latency grows toward saturation;
    /// `slow_by` shifts every latency sample, `knee_at` caps which
    /// steps sustain.
    pub(crate) fn sample_sweep(slow_by: u64, knee_at: f64) -> SweepReport {
        let mk_step = |rate: f64| {
            let mut latency = LogHistogram::new();
            let mut lag = LogHistogram::new();
            for i in 0..1_500u64 {
                latency.record(1_000 + (i % 89) * 12 + slow_by + rate as u64 / 10);
                lag.record(100 + (i % 31) * 7);
            }
            let sustainable = rate <= knee_at;
            let achieved = if sustainable { rate } else { rate * 0.7 };
            SweepStep {
                offered_rate: rate,
                achieved_rate: achieved,
                sustainable,
                report: RunReport {
                    version: SCHEMA_VERSION,
                    store: "mem".to_string(),
                    workload: "ycsb-a".to_string(),
                    meta: RunMeta {
                        arrival: "poisson".to_string(),
                        offered_rate: rate,
                        ..RunMeta::default()
                    },
                    operations: 1_500,
                    seconds: 1_500.0 / achieved,
                    throughput: achieved,
                    hits: 700,
                    misses: 50,
                    latency: latency.clone(),
                    per_op: vec![("put".to_string(), latency)],
                    lag,
                    metrics: gadget_obs::MetricsSnapshot::new(),
                    attribution: None,
                    recovery: None,
                    decomposition: Vec::new(),
                },
            }
        };
        let steps: Vec<SweepStep> = [2_000.0, 4_000.0, 8_000.0]
            .iter()
            .map(|r| mk_step(*r))
            .collect();
        let knee = steps
            .iter()
            .enumerate()
            .rfind(|(_, s)| s.sustainable)
            .map(|(i, s)| KneePoint {
                step_index: i as u64,
                offered_rate: s.offered_rate,
                achieved_rate: s.achieved_rate,
                p99_ns: s.report.latency.percentile(99.0),
            });
        SweepReport {
            version: SWEEP_SCHEMA_VERSION,
            store: "mem".to_string(),
            workload: "ycsb-a".to_string(),
            arrival: "poisson".to_string(),
            seed: 42,
            sustainable_fraction: 0.99,
            p99_bound_ns: 100_000_000,
            meta: RunMeta::default(),
            steps,
            knee,
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let sweep = sample_sweep(0, 4_000.0);
        let json = sweep.to_json();
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(sweep, back);
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn unknown_fields_and_wrong_versions_are_rejected() {
        let sweep = sample_sweep(0, 4_000.0);
        let json = sweep.to_json().replace(
            "\"version\": 1,\n  \"store\"",
            "\"version\": 1,\n  \"surprise\": true,\n  \"store\"",
        );
        let err = SweepReport::from_json(&json).unwrap_err();
        assert!(err.contains("unknown field `surprise`"), "got: {err}");

        let json = sweep
            .to_json()
            .replacen("\"version\": 1", "\"version\": 9", 1);
        let err = SweepReport::from_json(&json).unwrap_err();
        assert!(
            err.contains("unsupported sweep report version 9"),
            "got: {err}"
        );
    }

    #[test]
    fn identical_sweeps_pass() {
        let a = sample_sweep(0, 4_000.0);
        let cmp = compare_sweeps(&a, &a.clone(), "a", "b", &Tolerance::default());
        assert_eq!(cmp.status, Status::Pass, "{}", cmp.to_table());
        assert!(cmp.metrics.iter().any(|m| m.metric == "knee"));
        assert!(cmp.metrics.iter().any(|m| m.metric.starts_with("rate@")));
        assert!(cmp.metrics.iter().any(|m| m.metric.starts_with("latency@")));
    }

    #[test]
    fn per_step_latency_blowup_regresses_the_curve() {
        let base = sample_sweep(0, 4_000.0);
        let slow = sample_sweep(5_000, 4_000.0);
        let cmp = compare_sweeps(&base, &slow, "a", "b", &Tolerance::default());
        assert!(cmp.regressed(), "{}", cmp.to_table());
        assert!(cmp
            .metrics
            .iter()
            .any(|m| m.metric.starts_with("latency@") && m.status == Status::Regressed));
    }

    #[test]
    fn knee_shift_down_regresses_even_if_steps_pass() {
        let base = sample_sweep(0, 4_000.0);
        // The candidate's steps perform identically where they sustain,
        // but its knee collapsed to the first rung.
        let mut cand = sample_sweep(0, 2_000.0);
        for (b, c) in base.steps.iter().zip(cand.steps.iter_mut()) {
            c.achieved_rate = b.achieved_rate;
            c.report = b.report.clone();
        }
        let cmp = compare_sweeps(&base, &cand, "a", "b", &Tolerance::default());
        assert!(cmp.regressed(), "{}", cmp.to_table());
        let knee = cmp.metrics.iter().find(|m| m.metric == "knee").unwrap();
        assert_eq!(knee.status, Status::Regressed);
    }

    #[test]
    fn vanished_knee_regresses() {
        let base = sample_sweep(0, 4_000.0);
        let mut cand = sample_sweep(0, 4_000.0);
        cand.knee = None;
        for s in &mut cand.steps {
            s.sustainable = false;
        }
        let cmp = compare_sweeps(&base, &cand, "a", "b", &Tolerance::default());
        assert!(cmp.regressed());
        let knee = cmp.metrics.iter().find(|m| m.metric == "knee").unwrap();
        assert_eq!(knee.status, Status::Regressed);
    }

    #[test]
    fn disjoint_rate_grids_regress_not_pass_by_vacuity() {
        let base = sample_sweep(0, 4_000.0);
        let mut cand = sample_sweep(0, 4_000.0);
        for s in &mut cand.steps {
            s.offered_rate *= 3.0;
        }
        let cmp = compare_sweeps(&base, &cand, "a", "b", &Tolerance::default());
        assert!(cmp.regressed(), "{}", cmp.to_table());
        let cov = cmp.metrics.iter().find(|m| m.metric == "coverage").unwrap();
        assert_eq!(cov.status, Status::Regressed);
    }

    #[test]
    fn mismatched_arrival_regresses_identity() {
        let base = sample_sweep(0, 4_000.0);
        let mut cand = sample_sweep(0, 4_000.0);
        cand.arrival = "constant".to_string();
        let cmp = compare_sweeps(&base, &cand, "a", "b", &Tolerance::default());
        assert!(cmp.regressed());
        assert_eq!(cmp.metrics[0].metric, "identity");
    }

    #[test]
    fn mismatched_partition_digest_regresses_the_curve() {
        let mut base = sample_sweep(0, 4_000.0);
        let mut cand = sample_sweep(0, 4_000.0);
        base.meta.partition_digest = "aaaaaaaaaaaaaaaa".to_string();
        cand.meta.partition_digest = "bbbbbbbbbbbbbbbb".to_string();
        let cmp = compare_sweeps(&base, &cand, "a", "b", &Tolerance::default());
        assert!(cmp.regressed(), "{}", cmp.to_table());
        let topo = cmp.metrics.iter().find(|m| m.metric == "topology").unwrap();
        assert_eq!(topo.status, Status::Regressed);
    }

    #[test]
    fn find_sweep_baseline_picks_matching_newest() {
        let dir = std::env::temp_dir().join(format!("gadget-sweep-bl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut old = sample_sweep(0, 4_000.0);
        old.meta.created_unix_ms = 1_000;
        old.save(&dir.join("old.json")).unwrap();
        let mut new = sample_sweep(0, 8_000.0);
        new.meta.created_unix_ms = 2_000;
        new.save(&dir.join("new.json")).unwrap();
        // A RunReport in the same directory must be skipped, not crash.
        std::fs::write(dir.join("junk.json"), "{}").unwrap();
        let (path, report) = find_sweep_baseline(&dir, "mem", "ycsb-a").unwrap();
        assert!(path.ends_with("new.json"));
        assert_eq!(report.knee.as_ref().unwrap().offered_rate, 8_000.0);
        assert!(find_sweep_baseline(&dir, "lsm", "ycsb-a").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
