//! An instrumented reference stream processor.
//!
//! This crate plays the role of the paper's instrumented Apache Flink
//! (§3.1): a minimal single-task dataflow runtime whose operators keep
//! **real state with real values** in a real
//! [`StateStore`], accessed through an
//! [`InstrumentedStore`] that records every
//! request. The recorded trace is the "real trace" that Gadget's
//! metadata-only simulation is validated against (§6.1, Figs. 10-11):
//! where `gadget-core` merely *predicts* the request sequence, this crate
//! *executes* the operators — accumulators are actually read, updated, and
//! written back; window buckets actually accumulate event payloads; firing
//! actually retrieves and folds the contents.
//!
//! Coverage: windows (tumbling/sliding × incremental/holistic), session
//! windows with merging, window joins, continuous joins, and rolling
//! aggregation. The interval join is excluded because its range lookups
//! need a store iterator, which the portable [`StateStore`] interface
//! deliberately omits; Gadget's own interval-join machine is validated
//! against the paper's published trace shape instead (see DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use gadget_core::{EventGenerator, GeneratorConfig, OperatorKind, OperatorParams};
//! use gadget_flinksim::run_reference;
//! use gadget_kv::MemStore;
//!
//! let stream = EventGenerator::new(GeneratorConfig {
//!     events: 1_000,
//!     ..GeneratorConfig::default()
//! })
//! .generate();
//! let trace = run_reference(
//!     OperatorKind::Aggregation,
//!     &OperatorParams::default(),
//!     stream.into_iter(),
//!     MemStore::new(),
//! )
//! .unwrap();
//! assert_eq!(trace.len(), trace.input_events as usize * 2);
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use gadget_core::{OperatorKind, OperatorParams, WindowMode};
use gadget_kv::{InstrumentedStore, StateStore, StoreError};
use gadget_types::time::sliding_window_starts;
use gadget_types::{Event, StateKey, StreamElement, StreamId, Timestamp, Trace};

/// Runs a reference (state-materializing) operator over a stream and
/// returns the instrumented access trace.
///
/// Returns an error if the store fails or `kind` is not covered by the
/// reference runtime (the interval join).
pub fn run_reference<S, I>(
    kind: OperatorKind,
    params: &OperatorParams,
    stream: I,
    store: S,
) -> Result<Trace, StoreError>
where
    S: StateStore,
    I: Iterator<Item = StreamElement>,
{
    let store = InstrumentedStore::new(store);
    let mut op: Box<dyn RefOperator<S>> = match kind {
        OperatorKind::TumblingIncr => Box::new(RefWindow::new(
            params.window_length,
            params.window_length,
            WindowMode::Incremental,
        )),
        OperatorKind::TumblingHol => Box::new(RefWindow::new(
            params.window_length,
            params.window_length,
            WindowMode::Holistic,
        )),
        OperatorKind::SlidingIncr => Box::new(RefWindow::new(
            params.window_length,
            params.window_slide,
            WindowMode::Incremental,
        )),
        OperatorKind::SlidingHol => Box::new(RefWindow::new(
            params.window_length,
            params.window_slide,
            WindowMode::Holistic,
        )),
        OperatorKind::SessionIncr => {
            Box::new(RefSession::new(params.session_gap, WindowMode::Incremental))
        }
        OperatorKind::SessionHol => {
            Box::new(RefSession::new(params.session_gap, WindowMode::Holistic))
        }
        OperatorKind::TumblingJoin => Box::new(RefWindowJoin::new(
            params.window_length,
            params.window_length,
        )),
        OperatorKind::SlidingJoin => Box::new(RefWindowJoin::new(
            params.window_length,
            params.window_slide,
        )),
        OperatorKind::ContinuousJoin => Box::new(RefContinuousJoin::new()),
        OperatorKind::Aggregation => Box::new(RefAggregation),
        OperatorKind::IntervalJoin => {
            return Err(StoreError::InvalidArgument(
                "interval join is not covered by the reference runtime".to_string(),
            ))
        }
    };

    let mut input_events = 0u64;
    let mut keys = HashSet::new();
    let mut watermark = 0;
    for element in stream {
        match element {
            StreamElement::Event(e) => {
                if watermark > 0 && e.timestamp <= watermark {
                    continue; // Late event, zero allowed lateness.
                }
                input_events += 1;
                keys.insert(e.key);
                store.set_time(e.timestamp);
                op.on_event(&e, &store)?;
            }
            StreamElement::Watermark(ts) => {
                if ts > watermark {
                    watermark = ts;
                    store.set_time(ts);
                    op.on_watermark(ts, &store)?;
                }
            }
        }
    }
    op.on_watermark(Timestamp::MAX, &store)?;

    let mut trace = store.take_trace();
    trace.input_events = input_events;
    trace.input_distinct_keys = keys.len() as u64;
    Ok(trace)
}

/// A reference operator: executes real state accesses against the store.
trait RefOperator<S: StateStore>: Send {
    fn on_event(&mut self, event: &Event, store: &InstrumentedStore<S>) -> Result<(), StoreError>;
    fn on_watermark(
        &mut self,
        wm: Timestamp,
        store: &InstrumentedStore<S>,
    ) -> Result<(), StoreError>;
}

/// Deterministic payload bytes for an event.
fn payload(event: &Event) -> Vec<u8> {
    let mut v = Vec::with_capacity(event.value_size as usize);
    let seed = event.key ^ event.timestamp;
    for i in 0..event.value_size as u64 {
        v.push((seed.wrapping_mul(31).wrapping_add(i)) as u8);
    }
    v
}

/// Encodes an incremental accumulator (count, sum).
fn encode_acc(count: u64, sum: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&count.to_le_bytes());
    out[8..].copy_from_slice(&sum.to_le_bytes());
    out
}

fn decode_acc(bytes: &[u8]) -> (u64, u64) {
    if bytes.len() < 16 {
        return (0, 0);
    }
    (
        u64::from_le_bytes(bytes[..8].try_into().expect("checked length")),
        u64::from_le_bytes(bytes[8..16].try_into().expect("checked length")),
    )
}

/// Reference tumbling/sliding window with real accumulators or buckets.
struct RefWindow {
    length: Timestamp,
    slide: Timestamp,
    mode: WindowMode,
    vindex: BTreeMap<Timestamp, BTreeSet<StateKey>>,
    /// Fold of fired window results, proving real computation happened.
    result_checksum: u64,
}

impl RefWindow {
    fn new(length: Timestamp, slide: Timestamp, mode: WindowMode) -> Self {
        RefWindow {
            length,
            slide,
            mode,
            vindex: BTreeMap::new(),
            result_checksum: 0,
        }
    }
}

impl<S: StateStore> RefOperator<S> for RefWindow {
    fn on_event(&mut self, event: &Event, store: &InstrumentedStore<S>) -> Result<(), StoreError> {
        for w in sliding_window_starts(event.timestamp, self.length, self.slide) {
            let key = StateKey::windowed(event.key, w).encode();
            match self.mode {
                WindowMode::Incremental => {
                    let (count, sum) = match store.get(&key)? {
                        Some(v) => decode_acc(&v),
                        None => (0, 0),
                    };
                    store.put(&key, &encode_acc(count + 1, sum + event.value_size as u64))?;
                }
                WindowMode::Holistic => {
                    store.merge(&key, &payload(event))?;
                }
            }
            self.vindex
                .entry(w + self.length)
                .or_default()
                .insert(StateKey::windowed(event.key, w));
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        store: &InstrumentedStore<S>,
    ) -> Result<(), StoreError> {
        let due: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&t, _)| t).collect();
        for t in due {
            for key in self.vindex.remove(&t).expect("listed above") {
                let encoded = key.encode();
                if let Some(contents) = store.get(&encoded)? {
                    // Real aggregation on firing: fold the bucket.
                    self.result_checksum = contents
                        .iter()
                        .fold(self.result_checksum, |acc, &b| acc.wrapping_add(b as u64));
                }
                store.delete(&encoded)?;
            }
        }
        Ok(())
    }
}

/// Reference rolling aggregation.
struct RefAggregation;

impl<S: StateStore> RefOperator<S> for RefAggregation {
    fn on_event(&mut self, event: &Event, store: &InstrumentedStore<S>) -> Result<(), StoreError> {
        let key = StateKey::plain(event.key).encode();
        let (count, sum) = match store.get(&key)? {
            Some(v) => decode_acc(&v),
            None => (0, 0),
        };
        store.put(&key, &encode_acc(count + 1, sum + event.value_size as u64))?;
        Ok(())
    }

    fn on_watermark(
        &mut self,
        _wm: Timestamp,
        _store: &InstrumentedStore<S>,
    ) -> Result<(), StoreError> {
        Ok(())
    }
}

/// Reference session window with real pane migration.
struct RefSession {
    gap: Timestamp,
    mode: WindowMode,
    sessions: HashMap<u64, Vec<(Timestamp, Timestamp)>>,
    vindex: BTreeMap<Timestamp, Vec<(u64, Timestamp)>>,
}

impl RefSession {
    fn new(gap: Timestamp, mode: WindowMode) -> Self {
        RefSession {
            gap,
            mode,
            sessions: HashMap::new(),
            vindex: BTreeMap::new(),
        }
    }
}

impl<S: StateStore> RefOperator<S> for RefSession {
    fn on_event(&mut self, event: &Event, store: &InstrumentedStore<S>) -> Result<(), StoreError> {
        let ts = event.timestamp;
        let gap = self.gap;
        let sessions = self.sessions.entry(event.key).or_default();
        let (proto_start, proto_end) = (ts, ts + gap);

        let overlapping: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| proto_start <= e && s <= proto_end)
            .map(|(i, _)| i)
            .collect();

        let (merged_start, merged_end) = overlapping
            .iter()
            .fold((proto_start, proto_end), |(ms, me), &i| {
                (ms.min(sessions[i].0), me.max(sessions[i].1))
            });
        let surviving = StateKey::windowed(event.key, merged_start).encode();

        if overlapping.is_empty() {
            // Existence probe, then create the pane with real contents.
            let existing = store.get(&surviving)?;
            debug_assert!(existing.is_none());
            match self.mode {
                WindowMode::Incremental => {
                    store.put(&surviving, &encode_acc(1, event.value_size as u64))?
                }
                WindowMode::Holistic => store.merge(&surviving, &payload(event))?,
            }
            sessions.push((proto_start, proto_end));
            self.vindex
                .entry(proto_end)
                .or_default()
                .push((event.key, proto_start));
            return Ok(());
        }

        // Migrate panes whose identity dies.
        for &i in &overlapping {
            let (old_start, _) = sessions[i];
            if old_start != merged_start {
                let old_key = StateKey::windowed(event.key, old_start).encode();
                if let Some(contents) = store.get(&old_key)? {
                    store.merge(&surviving, &contents)?;
                }
                store.delete(&old_key)?;
            }
        }
        // The event's own contribution.
        match self.mode {
            WindowMode::Incremental => {
                let (count, sum) = match store.get(&surviving)? {
                    Some(v) => decode_acc(&v),
                    None => (0, 0),
                };
                store.put(
                    &surviving,
                    &encode_acc(count + 1, sum + event.value_size as u64),
                )?;
            }
            WindowMode::Holistic => store.merge(&surviving, &payload(event))?,
        }

        let mut kept: Vec<(Timestamp, Timestamp)> = sessions
            .iter()
            .enumerate()
            .filter(|(i, _)| !overlapping.contains(i))
            .map(|(_, s)| *s)
            .collect();
        kept.push((merged_start, merged_end));
        kept.sort_unstable();
        *sessions = kept;
        self.vindex
            .entry(merged_end)
            .or_default()
            .push((event.key, merged_start));
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        store: &InstrumentedStore<S>,
    ) -> Result<(), StoreError> {
        let due: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&t, _)| t).collect();
        for t in due {
            for (key, start) in self.vindex.remove(&t).expect("listed above") {
                let Some(sessions) = self.sessions.get_mut(&key) else {
                    continue;
                };
                let Some(idx) = sessions.iter().position(|&(s, _)| s == start) else {
                    continue;
                };
                if sessions[idx].1 > wm {
                    continue;
                }
                sessions.remove(idx);
                if sessions.is_empty() {
                    self.sessions.remove(&key);
                }
                let pane = StateKey::windowed(key, start).encode();
                let _ = store.get(&pane)?; // FGet: window result.
                store.delete(&pane)?;
            }
        }
        Ok(())
    }
}

/// Reference window join: both sides' buckets hold real event payloads.
struct RefWindowJoin {
    length: Timestamp,
    slide: Timestamp,
    vindex: BTreeMap<Timestamp, BTreeSet<StateKey>>,
    joined_bytes: u64,
}

fn join_group(key: u64, side: StreamId) -> u64 {
    (key & !(1 << 63)) | ((side.0 as u64 & 1) << 63)
}

impl RefWindowJoin {
    fn new(length: Timestamp, slide: Timestamp) -> Self {
        RefWindowJoin {
            length,
            slide,
            vindex: BTreeMap::new(),
            joined_bytes: 0,
        }
    }
}

impl<S: StateStore> RefOperator<S> for RefWindowJoin {
    fn on_event(&mut self, event: &Event, store: &InstrumentedStore<S>) -> Result<(), StoreError> {
        let group = join_group(event.key, event.stream);
        for w in sliding_window_starts(event.timestamp, self.length, self.slide) {
            let key = StateKey::windowed(group, w);
            store.merge(&key.encode(), &payload(event))?;
            self.vindex.entry(w + self.length).or_default().insert(key);
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        wm: Timestamp,
        store: &InstrumentedStore<S>,
    ) -> Result<(), StoreError> {
        let due: Vec<Timestamp> = self.vindex.range(..=wm).map(|(&t, _)| t).collect();
        for t in due {
            for key in self.vindex.remove(&t).expect("listed above") {
                let encoded = key.encode();
                if let Some(bucket) = store.get(&encoded)? {
                    // Real join work: account the joined payload bytes.
                    self.joined_bytes += bucket.len() as u64;
                }
                store.delete(&encoded)?;
            }
        }
        Ok(())
    }
}

/// Reference continuous join with real per-key match lists.
///
/// Liveness (put-vs-merge on first append) is tracked in operator
/// metadata, exactly as a state backend tracks whether a `ListState.add`
/// creates or appends — the store is not probed for it.
struct RefContinuousJoin {
    live: HashSet<u64>,
}

impl RefContinuousJoin {
    fn new() -> Self {
        RefContinuousJoin {
            live: HashSet::new(),
        }
    }
}

impl<S: StateStore> RefOperator<S> for RefContinuousJoin {
    fn on_event(&mut self, event: &Event, store: &InstrumentedStore<S>) -> Result<(), StoreError> {
        let own_group = join_group(event.key, event.stream);
        let opp_group = join_group(
            event.key,
            if event.stream == StreamId::LEFT {
                StreamId::RIGHT
            } else {
                StreamId::LEFT
            },
        );
        let own = StateKey::plain(own_group);
        let opposite = StateKey::plain(opp_group);
        // Probe the other side's real match list.
        let _matches = store.get(&opposite.encode())?;

        if event.closes_key {
            store.delete(&own.encode())?;
            store.delete(&opposite.encode())?;
            self.live.remove(&own_group);
            self.live.remove(&opp_group);
            return Ok(());
        }
        if self.live.insert(own_group) {
            store.put(&own.encode(), &payload(event))?;
        } else {
            store.merge(&own.encode(), &payload(event))?;
        }
        Ok(())
    }

    fn on_watermark(
        &mut self,
        _wm: Timestamp,
        _store: &InstrumentedStore<S>,
    ) -> Result<(), StoreError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_core::{Driver, EventGenerator, GeneratorConfig};
    use gadget_kv::MemStore;

    fn stream(events: u64, seed: u64) -> Vec<StreamElement> {
        EventGenerator::new(GeneratorConfig {
            events,
            seed,
            ..GeneratorConfig::default()
        })
        .generate()
    }

    /// The headline validation (paper §6.1): for deterministic operators
    /// the simulated (gadget-core) and executed (flinksim) traces must
    /// have identical key and op sequences.
    #[test]
    fn gadget_matches_reference_for_aggregation_and_windows() {
        for kind in [
            OperatorKind::Aggregation,
            OperatorKind::TumblingIncr,
            OperatorKind::TumblingHol,
            OperatorKind::SlidingIncr,
        ] {
            let params = OperatorParams::default();
            let input = stream(3_000, 7);
            let real =
                run_reference(kind, &params, input.clone().into_iter(), MemStore::new()).unwrap();
            let mut driver = Driver::new(kind.build(&params));
            let simulated = driver.run(input.into_iter());
            assert_eq!(
                simulated.len(),
                real.len(),
                "{}: lengths diverge",
                kind.name()
            );
            for (i, (a, b)) in simulated.iter().zip(real.iter()).enumerate() {
                assert_eq!(a.op, b.op, "{} op #{i}", kind.name());
                assert_eq!(a.key, b.key, "{} key #{i}", kind.name());
            }
        }
    }

    #[test]
    fn reference_executes_real_state() {
        // After the run the store must be empty for windowed operators
        // (all panes deleted) — proof that real state was managed.
        let params = OperatorParams::default();
        let store = MemStore::new();
        let input = stream(2_000, 9);
        let trace = run_reference(
            OperatorKind::TumblingIncr,
            &params,
            input.into_iter(),
            store,
        )
        .unwrap();
        assert!(!trace.is_empty());
        let stats = trace.stats();
        assert_eq!(stats.gets + stats.puts + stats.deletes, stats.total);
    }

    #[test]
    fn session_and_joins_run_to_completion() {
        let params = OperatorParams {
            session_gap: 2_000,
            ..OperatorParams::default()
        };
        for kind in [
            OperatorKind::SessionIncr,
            OperatorKind::SessionHol,
            OperatorKind::TumblingJoin,
            OperatorKind::SlidingJoin,
            OperatorKind::ContinuousJoin,
        ] {
            let input = EventGenerator::new(GeneratorConfig {
                events: 2_000,
                right_stream_fraction: 0.5,
                seed: 11,
                ..GeneratorConfig::default()
            })
            .generate();
            let trace = run_reference(kind, &params, input.into_iter(), MemStore::new()).unwrap();
            assert!(trace.len() as u64 > trace.input_events, "{}", kind.name());
        }
    }

    #[test]
    fn interval_join_is_rejected() {
        let result = run_reference(
            OperatorKind::IntervalJoin,
            &OperatorParams::default(),
            std::iter::empty(),
            MemStore::new(),
        );
        assert!(result.is_err());
    }
}
