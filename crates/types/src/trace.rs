//! Recorded state-access streams.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::op::{OpType, StateAccess, StateKey};

/// A state-access stream: the totally ordered sequence of requests a task
/// sends to its embedded store while processing its input (paper §2.3).
///
/// Traces support Gadget's *offline* mode: the workload generator writes a
/// trace once and the built-in replayer replays it on demand, possibly at a
/// different service rate or against a different store.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The accesses, in issue order.
    pub accesses: Vec<StateAccess>,
    /// Number of input events that produced this trace (0 if unknown).
    ///
    /// Needed to compute event amplification without re-deriving the input.
    pub input_events: u64,
    /// Number of distinct keys in the input stream (0 if unknown).
    ///
    /// Needed to compute keyspace amplification.
    pub input_distinct_keys: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Number of accesses in the trace.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Returns true if the trace contains no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Appends an access.
    pub fn push(&mut self, access: StateAccess) {
        self.accesses.push(access);
    }

    /// Iterates over the accesses in issue order.
    pub fn iter(&self) -> std::slice::Iter<'_, StateAccess> {
        self.accesses.iter()
    }

    /// Returns the sequence of accessed keys, in issue order.
    pub fn key_sequence(&self) -> Vec<StateKey> {
        self.accesses.iter().map(|a| a.key).collect()
    }

    /// Computes summary statistics of the trace.
    pub fn stats(&self) -> TraceStats {
        let mut counts = [0u64; 4];
        let mut distinct = std::collections::HashSet::new();
        for a in &self.accesses {
            let idx = match a.op {
                OpType::Get => 0,
                OpType::Put => 1,
                OpType::Merge => 2,
                OpType::Delete => 3,
            };
            counts[idx] += 1;
            distinct.insert(a.key.as_u128());
        }
        TraceStats {
            total: self.accesses.len() as u64,
            gets: counts[0],
            puts: counts[1],
            merges: counts[2],
            deletes: counts[3],
            distinct_keys: distinct.len() as u64,
            input_events: self.input_events,
            input_distinct_keys: self.input_distinct_keys,
        }
    }

    /// Writes the trace to `path` in Gadget's compact binary format.
    ///
    /// The format is a fixed 32-byte header (magic, version, counts)
    /// followed by one 40-byte little-endian record per access. It exists so
    /// the offline mode can persist multi-million-access traces without a
    /// serialization dependency.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(b"GDGT")?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&(self.accesses.len() as u64).to_le_bytes())?;
        w.write_all(&self.input_events.to_le_bytes())?;
        w.write_all(&self.input_distinct_keys.to_le_bytes())?;
        for a in &self.accesses {
            let op: u8 = match a.op {
                OpType::Get => 0,
                OpType::Put => 1,
                OpType::Merge => 2,
                OpType::Delete => 3,
            };
            w.write_all(&[op, 0, 0, 0])?;
            w.write_all(&a.value_size.to_le_bytes())?;
            w.write_all(&a.key.group.to_le_bytes())?;
            w.write_all(&a.key.ns.to_le_bytes())?;
            w.write_all(&a.ts.to_le_bytes())?;
            w.write_all(&[0u8; 8])?;
        }
        w.flush()
    }

    /// Reads a trace previously written by [`Trace::save`].
    ///
    /// Returns an [`io::Error`] of kind `InvalidData` if the file is not a
    /// Gadget trace or uses an unsupported version.
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut header = [0u8; 32];
        r.read_exact(&mut header)?;
        if &header[0..4] != b"GDGT" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a Gadget trace",
            ));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if version != 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let count = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let input_events = u64::from_le_bytes(header[16..24].try_into().unwrap());
        let input_distinct_keys = u64::from_le_bytes(header[24..32].try_into().unwrap());
        let mut accesses = Vec::with_capacity(count);
        let mut rec = [0u8; 40];
        for _ in 0..count {
            r.read_exact(&mut rec)?;
            let op = match rec[0] {
                0 => OpType::Get,
                1 => OpType::Put,
                2 => OpType::Merge,
                3 => OpType::Delete,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("invalid op tag {other}"),
                    ))
                }
            };
            accesses.push(StateAccess {
                op,
                value_size: u32::from_le_bytes(rec[4..8].try_into().unwrap()),
                key: StateKey {
                    group: u64::from_le_bytes(rec[8..16].try_into().unwrap()),
                    ns: u64::from_le_bytes(rec[16..24].try_into().unwrap()),
                },
                ts: u64::from_le_bytes(rec[24..32].try_into().unwrap()),
            });
        }
        Ok(Trace {
            accesses,
            input_events,
            input_distinct_keys,
        })
    }
}

impl Trace {
    /// Writes the trace as CSV (`op,group,ns,value_size,ts` with a header
    /// row), for interoperability with external tooling and the original
    /// Gadget artifact's text traces.
    pub fn save_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        writeln!(w, "op,group,ns,value_size,ts")?;
        for a in &self.accesses {
            writeln!(
                w,
                "{},{},{},{},{}",
                a.op.name(),
                a.key.group,
                a.key.ns,
                a.value_size,
                a.ts
            )?;
        }
        w.flush()
    }

    /// Reads a trace previously written by [`Trace::save_csv`] (or any CSV
    /// with the same five columns).
    ///
    /// Returns `InvalidData` on malformed rows or unknown operation names.
    pub fn load_csv<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        use std::io::BufRead;
        let r = BufReader::new(File::open(path)?);
        let bad = |line: usize, what: &str| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("csv line {line}: {what}"),
            )
        };
        let mut accesses = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if i == 0 && line.starts_with("op,") {
                continue; // Header.
            }
            if line.trim().is_empty() {
                continue;
            }
            let mut cols = line.split(',');
            let op = match cols.next().ok_or_else(|| bad(i, "missing op"))? {
                "get" => OpType::Get,
                "put" => OpType::Put,
                "merge" => OpType::Merge,
                "delete" => OpType::Delete,
                other => return Err(bad(i, &format!("unknown op {other}"))),
            };
            let mut num = |name: &str| -> io::Result<u64> {
                cols.next()
                    .ok_or_else(|| bad(i, &format!("missing {name}")))?
                    .trim()
                    .parse()
                    .map_err(|_| bad(i, &format!("bad {name}")))
            };
            let group = num("group")?;
            let ns = num("ns")?;
            let value_size = num("value_size")? as u32;
            let ts = num("ts")?;
            accesses.push(StateAccess {
                op,
                key: StateKey { group, ns },
                value_size,
                ts,
            });
        }
        Ok(Trace {
            accesses,
            input_events: 0,
            input_distinct_keys: 0,
        })
    }
}

impl FromIterator<StateAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = StateAccess>>(iter: I) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
            input_events: 0,
            input_distinct_keys: 0,
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a StateAccess;
    type IntoIter = std::slice::Iter<'a, StateAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

/// Summary statistics of a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of accesses.
    pub total: u64,
    /// Number of `get` operations.
    pub gets: u64,
    /// Number of `put` operations.
    pub puts: u64,
    /// Number of `merge` operations.
    pub merges: u64,
    /// Number of `delete` operations.
    pub deletes: u64,
    /// Number of distinct state keys touched.
    pub distinct_keys: u64,
    /// Number of input events (0 if unknown).
    pub input_events: u64,
    /// Number of distinct input keys (0 if unknown).
    pub input_distinct_keys: u64,
}

impl TraceStats {
    /// Fraction of operations of the given type, in `[0, 1]`.
    pub fn ratio(&self, op: OpType) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = match op {
            OpType::Get => self.gets,
            OpType::Put => self.puts,
            OpType::Merge => self.merges,
            OpType::Delete => self.deletes,
        };
        n as f64 / self.total as f64
    }

    /// Event amplification: state requests per input event (paper §3.2.2).
    ///
    /// Returns `None` when the number of input events is unknown.
    pub fn event_amplification(&self) -> Option<f64> {
        (self.input_events > 0).then(|| self.total as f64 / self.input_events as f64)
    }

    /// Keyspace amplification: distinct state keys over distinct input keys
    /// (paper §3.2.2).
    ///
    /// Returns `None` when the number of distinct input keys is unknown.
    pub fn key_amplification(&self) -> Option<f64> {
        (self.input_distinct_keys > 0)
            .then(|| self.distinct_keys as f64 / self.input_distinct_keys as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(StateAccess::get(StateKey::plain(1), 10));
        t.push(StateAccess::put(StateKey::plain(1), 64, 11));
        t.push(StateAccess::merge(StateKey::windowed(2, 5_000), 8, 12));
        t.push(StateAccess::delete(StateKey::windowed(2, 5_000), 13));
        t.input_events = 2;
        t.input_distinct_keys = 2;
        t
    }

    #[test]
    fn stats_counts_ops_and_keys() {
        let s = sample_trace().stats();
        assert_eq!(s.total, 4);
        assert_eq!(s.gets, 1);
        assert_eq!(s.puts, 1);
        assert_eq!(s.merges, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.distinct_keys, 2);
        assert_eq!(s.event_amplification(), Some(2.0));
        assert_eq!(s.key_amplification(), Some(1.0));
    }

    #[test]
    fn ratios_sum_to_one() {
        let s = sample_trace().stats();
        let sum: f64 = OpType::ALL.iter().map(|&op| s.ratio(op)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::new().stats();
        assert_eq!(s.total, 0);
        assert_eq!(s.ratio(OpType::Get), 0.0);
        assert_eq!(s.event_amplification(), None);
        assert_eq!(s.key_amplification(), None);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("gadget-types-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.trace");
        let t = sample_trace();
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(t, loaded);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("gadget-types-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        let t = sample_trace();
        t.save_csv(&path).unwrap();
        let loaded = Trace::load_csv(&path).unwrap();
        assert_eq!(t.accesses, loaded.accesses);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let dir = std::env::temp_dir().join("gadget-types-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "op,group,ns,value_size,ts\nfrobnicate,1,2,3,4\n").unwrap();
        assert!(Trace::load_csv(&path).is_err());
        std::fs::write(&path, "op,group,ns,value_size,ts\nget,1,notanumber,3,4\n").unwrap();
        assert!(Trace::load_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("gadget-types-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.trace");
        std::fs::write(&path, b"definitely not a trace header....").unwrap();
        assert!(Trace::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
