//! Event-time primitives.
//!
//! Gadget assigns 64-bit timestamps to events (paper §5.1) so that a single
//! generated stream can be replayed under different time units. Throughout
//! the workspace a [`Timestamp`] is interpreted as *milliseconds* of event
//! time unless a component documents otherwise.

/// Event time in milliseconds.
///
/// Event time is the time an event *occurred*, which is generally different
/// from the wall-clock time at which the event reaches an operator.
pub type Timestamp = u64;

/// Number of milliseconds in one second of event time.
pub const MILLIS_PER_SEC: Timestamp = 1_000;

/// Number of milliseconds in one minute of event time.
pub const MILLIS_PER_MIN: Timestamp = 60 * MILLIS_PER_SEC;

/// Number of milliseconds in one hour of event time.
pub const MILLIS_PER_HOUR: Timestamp = 60 * MILLIS_PER_MIN;

/// Returns the start timestamp of the window of the given `length` that
/// contains `ts`, with windows aligned to multiples of `length` shifted by
/// `offset`.
///
/// This mirrors Flink's `TimeWindow::getWindowStartWithOffset` and is the
/// basic building block of the W-ID windowing strategy: a tumbling or
/// sliding window is identified by its start timestamp.
///
/// # Examples
///
/// ```
/// use gadget_types::time::window_start;
/// assert_eq!(window_start(12_345, 5_000, 0), 10_000);
/// assert_eq!(window_start(9_999, 5_000, 0), 5_000);
/// ```
///
/// # Panics
///
/// Panics if `length` is zero.
pub fn window_start(ts: Timestamp, length: Timestamp, offset: Timestamp) -> Timestamp {
    assert!(length > 0, "window length must be positive");
    let shifted = ts.wrapping_sub(offset);
    offset + shifted - (shifted % length)
}

/// Returns the start timestamps of every sliding window of the given
/// `length` and `slide` that contains `ts`, latest window first.
///
/// An event belongs to `ceil(length / slide)` windows when `slide <= length`
/// (paper §3.2.2: "each incoming event is assigned to `length/slide` window
/// buckets").
///
/// # Examples
///
/// ```
/// use gadget_types::time::sliding_window_starts;
/// // 10s windows sliding every 5s: ts=12s belongs to [10s, 20s) and [5s, 15s).
/// assert_eq!(sliding_window_starts(12_000, 10_000, 5_000), vec![10_000, 5_000]);
/// ```
///
/// # Panics
///
/// Panics if `slide` is zero.
pub fn sliding_window_starts(ts: Timestamp, length: Timestamp, slide: Timestamp) -> Vec<Timestamp> {
    assert!(slide > 0, "window slide must be positive");
    let last_start = window_start(ts, slide, 0);
    let mut starts = Vec::with_capacity((length / slide) as usize + 1);
    let mut start = last_start;
    loop {
        // The window [start, start + length) contains ts iff start > ts - length.
        if start + length > ts {
            starts.push(start);
        } else {
            break;
        }
        match start.checked_sub(slide) {
            Some(prev) => start = prev,
            None => break,
        }
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_start_aligns_down() {
        assert_eq!(window_start(0, 5_000, 0), 0);
        assert_eq!(window_start(4_999, 5_000, 0), 0);
        assert_eq!(window_start(5_000, 5_000, 0), 5_000);
        assert_eq!(window_start(1_000_000, 7, 0), 1_000_000 - (1_000_000 % 7));
    }

    #[test]
    fn window_start_with_offset() {
        assert_eq!(window_start(12_345, 5_000, 1_000), 11_000);
        assert_eq!(window_start(1_000, 5_000, 1_000), 1_000);
    }

    #[test]
    fn sliding_assigns_length_over_slide_windows() {
        // length 30, slide 5 => 6 windows per event.
        let starts = sliding_window_starts(100_000, 30_000, 5_000);
        assert_eq!(starts.len(), 6);
        for w in &starts {
            assert!(*w <= 100_000 && w + 30_000 > 100_000);
        }
    }

    #[test]
    fn sliding_equals_tumbling_when_slide_is_length() {
        let starts = sliding_window_starts(12_345, 5_000, 5_000);
        assert_eq!(starts, vec![10_000]);
    }

    #[test]
    fn sliding_near_zero_does_not_underflow() {
        let starts = sliding_window_starts(1_000, 30_000, 5_000);
        assert!(!starts.is_empty());
        assert!(starts.iter().all(|w| w + 30_000 > 1_000));
    }
}
