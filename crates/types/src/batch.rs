//! Batched state operations.
//!
//! A materialized operation carries real payload bytes (unlike
//! [`StateAccess`](crate::StateAccess), which records only sizes), so a batch
//! can be handed to a store verbatim. [`OpBatch`] is the unit the replayer and
//! driver accumulate into before calling
//! `StateStore::apply_batch`; stores that implement batching natively
//! amortize lock acquisition and (for the WAL-backed LSM) fsync across the
//! whole batch.

use bytes::Bytes;

use crate::op::OpType;

/// One materialized state operation, ready to apply to a store.
///
/// Keys and payloads are [`Bytes`] so batches can be assembled from a shared
/// payload pool without copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: Bytes,
    },
    /// Blind write (insert or overwrite).
    Put {
        /// Key to write.
        key: Bytes,
        /// Value bytes.
        value: Bytes,
    },
    /// Lazy read-modify-write: append `operand` to the stored value.
    Merge {
        /// Key to merge into.
        key: Bytes,
        /// Operand bytes to append.
        operand: Bytes,
    },
    /// Point delete.
    Delete {
        /// Key to remove.
        key: Bytes,
    },
}

impl Op {
    /// Creates a `get`.
    pub fn get(key: impl Into<Bytes>) -> Self {
        Op::Get { key: key.into() }
    }

    /// Creates a `put`.
    pub fn put(key: impl Into<Bytes>, value: impl Into<Bytes>) -> Self {
        Op::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Creates a `merge`.
    pub fn merge(key: impl Into<Bytes>, operand: impl Into<Bytes>) -> Self {
        Op::Merge {
            key: key.into(),
            operand: operand.into(),
        }
    }

    /// Creates a `delete`.
    pub fn delete(key: impl Into<Bytes>) -> Self {
        Op::Delete { key: key.into() }
    }

    /// The operation type.
    pub fn op_type(&self) -> OpType {
        match self {
            Op::Get { .. } => OpType::Get,
            Op::Put { .. } => OpType::Put,
            Op::Merge { .. } => OpType::Merge,
            Op::Delete { .. } => OpType::Delete,
        }
    }

    /// The key this operation targets.
    pub fn key(&self) -> &[u8] {
        match self {
            Op::Get { key } | Op::Put { key, .. } | Op::Merge { key, .. } | Op::Delete { key } => {
                key
            }
        }
    }

    /// The payload bytes (value or merge operand; empty for `get`/`delete`).
    pub fn payload(&self) -> &[u8] {
        match self {
            Op::Put { value, .. } => value,
            Op::Merge { operand, .. } => operand,
            Op::Get { .. } | Op::Delete { .. } => &[],
        }
    }

    /// Returns true for operations that write to the store.
    pub fn is_write(&self) -> bool {
        self.op_type().is_write()
    }
}

/// An ordered batch of operations.
///
/// Semantically equivalent to applying each op in order; batching changes
/// only how the cost is paid (one lock acquisition, one group-commit fsync),
/// never the result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpBatch {
    ops: Vec<Op>,
}

impl OpBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        OpBatch::default()
    }

    /// Creates an empty batch with room for `cap` ops.
    pub fn with_capacity(cap: usize) -> Self {
        OpBatch {
            ops: Vec::with_capacity(cap),
        }
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns true if the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Clears the batch, retaining its allocation for reuse.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Total payload bytes carried by the batch (keys excluded).
    pub fn payload_bytes(&self) -> usize {
        self.ops.iter().map(|op| op.payload().len()).sum()
    }
}

impl From<Vec<Op>> for OpBatch {
    fn from(ops: Vec<Op>) -> Self {
        OpBatch { ops }
    }
}

impl std::ops::Deref for OpBatch {
    type Target = [Op];

    fn deref(&self) -> &[Op] {
        &self.ops
    }
}

impl<'a> IntoIterator for &'a OpBatch {
    type Item = &'a Op;
    type IntoIter = std::slice::Iter<'a, Op>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let ops = [
            Op::get(&b"k"[..]),
            Op::put(&b"k"[..], &b"vv"[..]),
            Op::merge(&b"k"[..], &b"mmm"[..]),
            Op::delete(&b"k"[..]),
        ];
        let types: Vec<OpType> = ops.iter().map(|o| o.op_type()).collect();
        assert_eq!(types, OpType::ALL.to_vec());
        for op in &ops {
            assert_eq!(op.key(), b"k");
        }
        assert_eq!(ops[0].payload(), b"");
        assert_eq!(ops[1].payload(), b"vv");
        assert_eq!(ops[2].payload(), b"mmm");
        assert_eq!(ops[3].payload(), b"");
        assert!(!ops[0].is_write());
        assert!(ops[1].is_write() && ops[2].is_write() && ops[3].is_write());
    }

    #[test]
    fn batch_push_len_clear() {
        let mut b = OpBatch::with_capacity(4);
        assert!(b.is_empty());
        b.push(Op::put(&b"a"[..], &b"12"[..]));
        b.push(Op::merge(&b"b"[..], &b"345"[..]));
        b.push(Op::get(&b"a"[..]));
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload_bytes(), 5);
        assert_eq!(b.ops()[2].op_type(), OpType::Get);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn batch_derefs_to_slice() {
        let b = OpBatch::from(vec![Op::get(&b"x"[..])]);
        let slice: &[Op] = &b;
        assert_eq!(slice.len(), 1);
        assert_eq!(b.iter().count(), 1);
    }
}
