//! Input-stream elements.

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;

/// Identifies which input of a multi-input operator an event belongs to.
///
/// Single-input operators only ever see [`StreamId::LEFT`]. Two-input
/// operators (joins) receive events tagged with [`StreamId::LEFT`] or
/// [`StreamId::RIGHT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StreamId(pub u8);

impl StreamId {
    /// The first (or only) input of an operator.
    pub const LEFT: StreamId = StreamId(0);
    /// The second input of a two-input operator.
    pub const RIGHT: StreamId = StreamId(1);
}

/// One data event of an input stream.
///
/// Events follow the key-value schema assumed by most stream processors
/// (paper §2.3): state is always associated with a key derived from the
/// event. Gadget never materializes event payloads; it tracks only the
/// payload *size* so generated state accesses can carry realistic value
/// sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// The event key (e.g. jobID for Borg, medallionID for Taxi).
    pub key: u64,
    /// Event time in milliseconds.
    pub timestamp: Timestamp,
    /// Size of the event payload in bytes.
    pub value_size: u32,
    /// Which operator input this event arrives on.
    pub stream: StreamId,
    /// Optional validity bound carried by the event itself.
    ///
    /// Continuous joins (paper §2.2) match events "before the drop-off
    /// timestamp": the stream encodes an expiration time per event. `None`
    /// for streams without validity semantics.
    pub expiry: Option<Timestamp>,
    /// Marks an event that *closes* the lifetime of its key.
    ///
    /// Dataset generators use this for Borg job-finished and Taxi drop-off
    /// events; the continuous join deletes state when it sees one.
    pub closes_key: bool,
}

impl Event {
    /// Creates a plain data event on the left stream with no expiry.
    pub fn new(key: u64, timestamp: Timestamp, value_size: u32) -> Self {
        Event {
            key,
            timestamp,
            value_size,
            stream: StreamId::LEFT,
            expiry: None,
            closes_key: false,
        }
    }

    /// Returns a copy of this event tagged with the given stream id.
    pub fn on_stream(mut self, stream: StreamId) -> Self {
        self.stream = stream;
        self
    }

    /// Returns a copy of this event carrying the given expiration timestamp.
    pub fn with_expiry(mut self, expiry: Timestamp) -> Self {
        self.expiry = Some(expiry);
        self
    }

    /// Returns a copy of this event marked as closing its key.
    pub fn closing(mut self) -> Self {
        self.closes_key = true;
        self
    }
}

/// An element of a physical data stream: either a data event or a watermark.
///
/// A watermark with event time `t` promises that no further event with
/// timestamp `<= t` will arrive (late events excepted, see the event
/// generator's lateness model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamElement {
    /// A data event.
    Event(Event),
    /// A low-watermark carrying the stream's event-time progress.
    Watermark(Timestamp),
}

impl StreamElement {
    /// Returns the contained event, if this element is one.
    pub fn as_event(&self) -> Option<&Event> {
        match self {
            StreamElement::Event(e) => Some(e),
            StreamElement::Watermark(_) => None,
        }
    }

    /// Returns the event-time timestamp of this element.
    pub fn timestamp(&self) -> Timestamp {
        match self {
            StreamElement::Event(e) => e.timestamp,
            StreamElement::Watermark(t) => *t,
        }
    }

    /// Returns true if this element is a watermark.
    pub fn is_watermark(&self) -> bool {
        matches!(self, StreamElement::Watermark(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let e = Event::new(7, 1_000, 64)
            .on_stream(StreamId::RIGHT)
            .with_expiry(9_000)
            .closing();
        assert_eq!(e.key, 7);
        assert_eq!(e.stream, StreamId::RIGHT);
        assert_eq!(e.expiry, Some(9_000));
        assert!(e.closes_key);
    }

    #[test]
    fn stream_element_accessors() {
        let e = StreamElement::Event(Event::new(1, 42, 8));
        let w = StreamElement::Watermark(100);
        assert_eq!(e.timestamp(), 42);
        assert_eq!(w.timestamp(), 100);
        assert!(!e.is_watermark());
        assert!(w.is_watermark());
        assert!(e.as_event().is_some());
        assert!(w.as_event().is_none());
    }
}
