//! State-access requests.

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;

/// The operation type of a state access.
///
/// These are the four operations supported by RocksDB (paper §5.5); stores
/// without native `merge` support translate it to a read-modify-write at the
/// connector layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpType {
    /// Point lookup.
    Get,
    /// Blind write (insert or overwrite).
    Put,
    /// Lazy read-modify-write: append a delta that is folded into the value
    /// on the next read or during compaction.
    Merge,
    /// Point delete.
    Delete,
}

impl OpType {
    /// All operation types, in a stable order used by reports.
    pub const ALL: [OpType; 4] = [OpType::Get, OpType::Put, OpType::Merge, OpType::Delete];

    /// Short lowercase name used in reports and config files.
    pub fn name(self) -> &'static str {
        match self {
            OpType::Get => "get",
            OpType::Put => "put",
            OpType::Merge => "merge",
            OpType::Delete => "delete",
        }
    }

    /// Returns true for operations that write to the store (`put`, `merge`,
    /// `delete`).
    pub fn is_write(self) -> bool {
        !matches!(self, OpType::Get)
    }
}

/// A state key: the key under which operator state is stored.
///
/// Streaming operators map event keys to state keys in operator-specific
/// ways (paper §5.2). Windowed operators use the W-ID strategy where each
/// window pane is a KV pair keyed by `(event key, window start)`; rolling
/// aggregations use the event key directly. We model this as a pair of a
/// `group` (derived from the event key, or a stream side for joins) and a
/// `ns` namespace (the window identifier, or an event sequence number for
/// join buffers; zero when unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateKey {
    /// Key-group component (event key or join-side tag).
    pub group: u64,
    /// Namespace component (window start timestamp, buffer slot, …).
    pub ns: u64,
}

impl StateKey {
    /// A state key with no namespace component.
    pub fn plain(group: u64) -> Self {
        StateKey { group, ns: 0 }
    }

    /// A state key scoped to a namespace (e.g. a window start timestamp).
    pub fn windowed(group: u64, ns: u64) -> Self {
        StateKey { group, ns }
    }

    /// Encodes the key as 16 big-endian bytes.
    ///
    /// Big-endian encoding makes the byte order match the numeric order of
    /// `(group, ns)`, so ordered stores (LSM, B+Tree) see meaningful key
    /// locality: all windows of one group are adjacent, ordered by window
    /// start.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.group.to_be_bytes());
        out[8..].copy_from_slice(&self.ns.to_be_bytes());
        out
    }

    /// Decodes a key previously produced by [`StateKey::encode`].
    ///
    /// Returns `None` if `bytes` is not exactly 16 bytes long.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 16 {
            return None;
        }
        let mut g = [0u8; 8];
        let mut n = [0u8; 8];
        g.copy_from_slice(&bytes[..8]);
        n.copy_from_slice(&bytes[8..]);
        Some(StateKey {
            group: u64::from_be_bytes(g),
            ns: u64::from_be_bytes(n),
        })
    }

    /// Packs the key into a single `u128` for use in hash sets and maps.
    pub fn as_u128(&self) -> u128 {
        ((self.group as u128) << 64) | self.ns as u128
    }
}

/// One state access: the tuple `a = (p, k, v, t)` of the paper (§2.3).
///
/// Traces store the value *size* rather than the value bytes; the
/// performance evaluator synthesizes payloads of the recorded size when the
/// trace is replayed against a real store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateAccess {
    /// The operation.
    pub op: OpType,
    /// The state key being accessed.
    pub key: StateKey,
    /// Payload size in bytes (zero for `get` and `delete`).
    pub value_size: u32,
    /// Event time at which the operation was issued.
    pub ts: Timestamp,
}

impl StateAccess {
    /// Creates a `get` access.
    pub fn get(key: StateKey, ts: Timestamp) -> Self {
        StateAccess {
            op: OpType::Get,
            key,
            value_size: 0,
            ts,
        }
    }

    /// Creates a `put` access carrying `value_size` bytes.
    pub fn put(key: StateKey, value_size: u32, ts: Timestamp) -> Self {
        StateAccess {
            op: OpType::Put,
            key,
            value_size,
            ts,
        }
    }

    /// Creates a `merge` access carrying `value_size` bytes.
    pub fn merge(key: StateKey, value_size: u32, ts: Timestamp) -> Self {
        StateAccess {
            op: OpType::Merge,
            key,
            value_size,
            ts,
        }
    }

    /// Creates a `delete` access.
    pub fn delete(key: StateKey, ts: Timestamp) -> Self {
        StateAccess {
            op: OpType::Delete,
            key,
            value_size: 0,
            ts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let k = StateKey::windowed(0xDEAD_BEEF, 42);
        assert_eq!(StateKey::decode(&k.encode()), Some(k));
        assert_eq!(StateKey::decode(&[0u8; 15]), None);
    }

    #[test]
    fn encoding_preserves_order() {
        let a = StateKey::windowed(1, 500).encode();
        let b = StateKey::windowed(1, 1_000).encode();
        let c = StateKey::windowed(2, 0).encode();
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn op_classification() {
        assert!(!OpType::Get.is_write());
        assert!(OpType::Put.is_write());
        assert!(OpType::Merge.is_write());
        assert!(OpType::Delete.is_write());
    }

    #[test]
    fn constructors_set_fields() {
        let k = StateKey::plain(9);
        assert_eq!(StateAccess::get(k, 5).op, OpType::Get);
        assert_eq!(StateAccess::put(k, 10, 5).value_size, 10);
        assert_eq!(StateAccess::merge(k, 10, 5).op, OpType::Merge);
        assert_eq!(StateAccess::delete(k, 5).value_size, 0);
    }

    #[test]
    fn as_u128_is_injective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for g in 0..20u64 {
            for n in 0..20u64 {
                assert!(seen.insert(StateKey::windowed(g, n).as_u128()));
            }
        }
    }
}
