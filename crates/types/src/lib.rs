//! Core data types shared by every Gadget crate.
//!
//! This crate defines the vocabulary of the benchmark harness:
//!
//! * [`Event`] — an element of an input data stream, carrying an event-time
//!   timestamp in the sense of the dataflow model.
//! * [`StreamElement`] — either a data [`Event`] or a
//!   [`Watermark`](StreamElement::Watermark).
//! * [`StateAccess`] — one request sent to a state store, the tuple
//!   `a = (p, k, v, t)` of the paper (§2.3).
//! * [`Trace`] — a recorded state-access stream that can be analyzed or
//!   replayed against a store.
//! * [`Op`] / [`OpBatch`] — materialized operations (with payload bytes)
//!   grouped into batches for `StateStore::apply_batch`.
//!
//! Everything here is plain data: no I/O beyond trace (de)serialization, no
//! randomness, no store logic.

pub mod batch;
pub mod event;
pub mod op;
pub mod time;
pub mod trace;

pub use batch::{Op, OpBatch};
pub use event::{Event, StreamElement, StreamId};
pub use op::{OpType, StateAccess, StateKey};
pub use time::Timestamp;
pub use trace::{Trace, TraceStats};
