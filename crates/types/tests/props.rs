//! Property-based tests for the core types.

use proptest::prelude::*;

use gadget_types::{OpType, StateAccess, StateKey, Trace};

proptest! {
    /// Encoding round-trips for every possible key.
    #[test]
    fn statekey_encode_decode_roundtrip(group in any::<u64>(), ns in any::<u64>()) {
        let key = StateKey::windowed(group, ns);
        prop_assert_eq!(StateKey::decode(&key.encode()), Some(key));
    }

    /// Byte-wise key order equals numeric (group, ns) order — the property
    /// ordered stores rely on for locality.
    #[test]
    fn statekey_encoding_preserves_order(
        a_group in any::<u64>(), a_ns in any::<u64>(),
        b_group in any::<u64>(), b_ns in any::<u64>(),
    ) {
        let a = StateKey::windowed(a_group, a_ns);
        let b = StateKey::windowed(b_group, b_ns);
        let numeric = (a.group, a.ns).cmp(&(b.group, b.ns));
        let bytes = a.encode().cmp(&b.encode());
        prop_assert_eq!(numeric, bytes);
    }

    /// `as_u128` is injective.
    #[test]
    fn statekey_as_u128_injective(
        a_group in any::<u64>(), a_ns in any::<u64>(),
        b_group in any::<u64>(), b_ns in any::<u64>(),
    ) {
        let a = StateKey::windowed(a_group, a_ns);
        let b = StateKey::windowed(b_group, b_ns);
        prop_assert_eq!(a.as_u128() == b.as_u128(), a == b);
    }

    /// Traces survive the binary format for arbitrary contents.
    #[test]
    fn trace_save_load_roundtrip(
        ops in proptest::collection::vec(
            (0u8..4, any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>()),
            0..200,
        ),
        input_events in any::<u64>(),
        input_keys in any::<u64>(),
    ) {
        let mut trace = Trace::new();
        for (tag, group, ns, size, ts) in ops {
            let key = StateKey::windowed(group, ns);
            trace.push(match tag {
                0 => StateAccess::get(key, ts),
                1 => StateAccess::put(key, size, ts),
                2 => StateAccess::merge(key, size, ts),
                _ => StateAccess::delete(key, ts),
            });
        }
        trace.input_events = input_events;
        trace.input_distinct_keys = input_keys;

        let path = std::env::temp_dir().join(format!(
            "gadget-props-{}-{}.gdt",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        trace.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(trace, loaded);
    }

    /// Stats ratios always sum to 1 for non-empty traces and every ratio
    /// is a probability.
    #[test]
    fn stats_ratios_are_probabilities(
        tags in proptest::collection::vec(0u8..4, 1..500),
    ) {
        let mut trace = Trace::new();
        for (i, tag) in tags.iter().enumerate() {
            let key = StateKey::plain(i as u64 % 17);
            trace.push(match tag {
                0 => StateAccess::get(key, i as u64),
                1 => StateAccess::put(key, 8, i as u64),
                2 => StateAccess::merge(key, 8, i as u64),
                _ => StateAccess::delete(key, i as u64),
            });
        }
        let stats = trace.stats();
        let sum: f64 = OpType::ALL.iter().map(|&op| stats.ratio(op)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        for op in OpType::ALL {
            prop_assert!((0.0..=1.0).contains(&stats.ratio(op)));
        }
        prop_assert!(stats.distinct_keys <= stats.total);
    }
}
