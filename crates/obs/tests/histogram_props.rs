//! Property-based tests: the log-bucketed histogram vs an exact oracle.

use proptest::prelude::*;

use gadget_obs::{bucket_bounds, AtomicHistogram, LogHistogram};

/// Exact nearest-rank percentile oracle.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    /// Every reported quantile lands within one bucket width of the
    /// exact sorted percentile: it never exceeds the exact value, and
    /// the exact value lies inside the bucket whose floor was reported.
    #[test]
    fn quantiles_within_one_bucket_of_exact(
        mut values in proptest::collection::vec(0u64..10_000_000_000, 1..500),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&values, p);
            let approx = h.percentile(p);
            prop_assert!(approx <= exact, "p{p}: approx {approx} > exact {exact}");
            let (lo, hi) = bucket_bounds(exact);
            prop_assert_eq!(approx, lo, "p{p}: reported floor is not the exact value's bucket");
            prop_assert!(
                hi - lo <= lo / 16 + 1,
                "bucket width {w} too wide at {exact}", w = hi - lo
            );
        }
        prop_assert_eq!(h.percentile(100.0), *values.last().unwrap());
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.max(), *values.last().unwrap());
        let exact_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - exact_mean).abs() < 1e-6);
    }

    /// merge(a, b) is exactly the histogram of the concatenated
    /// recordings — full structural equality, not just summary fields.
    #[test]
    fn merge_equals_concatenated_recording(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut ha = LogHistogram::new();
        let mut hb = LogHistogram::new();
        let mut concat = LogHistogram::new();
        for &v in &a {
            ha.record(v);
            concat.record(v);
        }
        for &v in &b {
            hb.record(v);
            concat.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(&ha, &concat);
        prop_assert_eq!(ha.mean(), concat.mean());
    }

    /// The atomic variant records identically to the single-writer one.
    #[test]
    fn atomic_snapshot_matches_plain(
        values in proptest::collection::vec(0u64..100_000_000, 0..200),
    ) {
        let atomic = AtomicHistogram::new();
        let mut plain = LogHistogram::new();
        for &v in &values {
            atomic.record(v);
            plain.record(v);
        }
        prop_assert_eq!(atomic.snapshot(), plain);
    }

    /// JSON round-trips are lossless despite the sparse encoding.
    #[test]
    fn json_round_trip_is_lossless(
        values in proptest::collection::vec(0u64..10_000_000_000, 0..300),
    ) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(h, back);
    }
}
