//! Live metrics publication: the bridge between the sampling side
//! (replayer, sweep driver) and the serving side (the `/metrics` HTTP
//! endpoint).
//!
//! The scrape endpoint needs a *current* snapshot on demand, from a
//! different thread than the one driving the benchmark. Rather than
//! teaching the hot loop about sockets, the loop publishes into a
//! [`SharedSnapshot`] whenever it samples anyway (the
//! [`SnapshotEmitter`](crate::emitter::SnapshotEmitter) tick), and the
//! endpoint's handler clones the latest value out. One mutex, touched
//! once per sampling interval — invisible at benchmark rates.

use std::sync::{Arc, Mutex};

use crate::snapshot::MetricsSnapshot;

/// A cloneable handle to the most recently published snapshot.
///
/// Starts empty; [`get`](SharedSnapshot::get) returns an empty snapshot
/// until the first [`publish`](SharedSnapshot::publish).
#[derive(Debug, Clone, Default)]
pub struct SharedSnapshot {
    latest: Arc<Mutex<MetricsSnapshot>>,
}

impl SharedSnapshot {
    /// Creates an empty handle.
    pub fn new() -> Self {
        SharedSnapshot::default()
    }

    /// Replaces the published snapshot.
    pub fn publish(&self, snapshot: MetricsSnapshot) {
        *self.latest.lock().unwrap_or_else(|e| e.into_inner()) = snapshot;
    }

    /// Clones the latest published snapshot.
    pub fn get(&self) -> MetricsSnapshot {
        self.latest
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Folds per-component registries into one flat snapshot, prefixing
/// every metric with its component (`store_wal_fsyncs`,
/// `replayer_scheduler_lag_ns`). This is the shape the OpenMetrics
/// endpoint serves: one namespace, stable names, no nested objects.
pub fn flatten_registries(registries: &[(String, MetricsSnapshot)]) -> MetricsSnapshot {
    let mut flat = MetricsSnapshot::new();
    for (component, snap) in registries {
        for (name, v) in &snap.counters {
            flat.push_counter(&format!("{component}_{name}"), *v);
        }
        for (name, v) in &snap.gauges {
            flat.push_gauge(&format!("{component}_{name}"), *v);
        }
        for (name, h) in &snap.histograms {
            flat.histograms
                .push((format!("{component}_{name}"), h.clone()));
        }
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    #[test]
    fn shared_snapshot_starts_empty_and_tracks_publishes() {
        let shared = SharedSnapshot::new();
        assert!(shared.get().counters.is_empty());

        let mut snap = MetricsSnapshot::new();
        snap.push_counter("ops", 7);
        shared.publish(snap);
        assert_eq!(shared.get().counter("ops"), Some(7));

        // A clone of the handle observes later publishes.
        let other = shared.clone();
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("ops", 9);
        shared.publish(snap);
        assert_eq!(other.get().counter("ops"), Some(9));
    }

    #[test]
    fn shared_snapshot_is_readable_across_threads() {
        let shared = SharedSnapshot::new();
        let writer = shared.clone();
        let handle = std::thread::spawn(move || {
            let mut snap = MetricsSnapshot::new();
            snap.push_gauge("achieved_rate", 4_321);
            writer.publish(snap);
        });
        handle.join().unwrap();
        assert_eq!(shared.get().gauge("achieved_rate"), Some(4_321));
    }

    #[test]
    fn flatten_prefixes_by_component() {
        let mut store = MetricsSnapshot::new();
        store.push_counter("wal_fsyncs", 3);
        store.push_gauge("memtable_bytes", 1_024);
        let mut replayer = MetricsSnapshot::new();
        replayer.push_counter("ops", 500);
        let mut lag = LogHistogram::new();
        lag.record(1_000);
        replayer
            .histograms
            .push(("scheduler_lag_ns".to_string(), lag));

        let flat = flatten_registries(&[
            ("store".to_string(), store),
            ("replayer".to_string(), replayer),
        ]);
        assert_eq!(flat.counter("store_wal_fsyncs"), Some(3));
        assert_eq!(flat.gauge("store_memtable_bytes"), Some(1_024));
        assert_eq!(flat.counter("replayer_ops"), Some(500));
        assert_eq!(flat.histograms.len(), 1);
        assert_eq!(flat.histograms[0].0, "replayer_scheduler_lag_ns");
        assert_eq!(flat.histograms[0].1.count(), 1);
    }
}
