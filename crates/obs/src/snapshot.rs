//! Point-in-time metric values, detached from their instruments.

use serde::{Deserialize, Error, Serialize, Value};

use crate::hist::LogHistogram;

/// All instrument values of one component at one instant.
///
/// Snapshots are plain data: mergeable, serializable, and safe to hold
/// across store restarts (unlike instrument handles). Entries are kept
/// sorted by name so JSON output and comparisons are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, by name.
    pub gauges: Vec<(String, i64)>,
    /// Latency histograms, by name.
    pub histograms: Vec<(String, LogHistogram)>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Adds a counter (or adds to it, if the name exists).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => self.counters.push((name.to_string(), value)),
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Sets a gauge (overwriting if the name exists).
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_string(), value)),
        }
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Merges `other` into `self`: counters add, same-name histograms
    /// merge, and gauges take `other`'s value (it is the newer reading).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v = *value,
                None => self.gauges.push((name.clone(), *value)),
            }
        }
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.histograms.push((name.clone(), hist.clone())),
            }
        }
        self.sort();
    }

    /// Sorts every section by name.
    pub(crate) fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Value::UInt(*v as u128)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), v.to_value()))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.to_value()))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "MetricsSnapshot";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        let section = |name: &str| -> Result<&Vec<(String, Value)>, Error> {
            serde::find_field(members, name)
                .ok_or_else(|| Error::missing_field(name, CTX))?
                .as_object()
                .ok_or_else(|| Error::custom(format!("section `{name}` must be an object")))
        };
        let mut snap = MetricsSnapshot::new();
        for (name, v) in section("counters")? {
            snap.counters.push((name.clone(), u64::from_value(v)?));
        }
        for (name, v) in section("gauges")? {
            snap.gauges.push((name.clone(), i64::from_value(v)?));
        }
        for (name, v) in section("histograms")? {
            snap.histograms
                .push((name.clone(), LogHistogram::from_value(v)?));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsSnapshot::new();
        a.push_counter("ops", 10);
        a.push_gauge("depth", 2);
        let mut ha = LogHistogram::new();
        ha.record(100);
        a.histograms.push(("lat".to_string(), ha));

        let mut b = MetricsSnapshot::new();
        b.push_counter("ops", 5);
        b.push_counter("errors", 1);
        b.push_gauge("depth", 7);
        let mut hb = LogHistogram::new();
        hb.record(2_000);
        b.histograms.push(("lat".to_string(), hb));

        a.merge(&b);
        assert_eq!(a.counter("ops"), Some(15));
        assert_eq!(a.counter("errors"), Some(1));
        assert_eq!(a.gauge("depth"), Some(7));
        let lat = a.histogram("lat").unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.max(), 2_000);
    }

    #[test]
    fn serde_round_trip() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("flushes", 3);
        snap.push_gauge("live_bytes", -1);
        let mut h = LogHistogram::new();
        h.record(42);
        h.record(9_999);
        snap.histograms.push(("fsync_ns".to_string(), h));
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn lookup_missing_names() {
        let snap = MetricsSnapshot::new();
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("nope"), None);
        assert!(snap.histogram("nope").is_none());
    }
}
