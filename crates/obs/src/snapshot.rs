//! Point-in-time metric values, detached from their instruments.

use serde::{Deserialize, Error, Serialize, Value};

use crate::hist::LogHistogram;

/// All instrument values of one component at one instant.
///
/// Snapshots are plain data: mergeable, serializable, and safe to hold
/// across store restarts (unlike instrument handles). Entries are kept
/// sorted by name so JSON output and comparisons are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, by name.
    pub gauges: Vec<(String, i64)>,
    /// Latency histograms, by name.
    pub histograms: Vec<(String, LogHistogram)>,
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Adds a counter (or adds to it, if the name exists).
    pub fn push_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += value,
            None => self.counters.push((name.to_string(), value)),
        }
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Sets a gauge (overwriting if the name exists).
    pub fn push_gauge(&mut self, name: &str, value: i64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.gauges.push((name.to_string(), value)),
        }
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// Merges `other` into `self` with *union* semantics over metric
    /// names: the result contains every name from either side.
    ///
    /// * counters — same-name values add; a name present on one side
    ///   only keeps that side's value (a shard that never compacted
    ///   simply contributes 0 compactions, not an error);
    /// * gauges — same-name entries take `other`'s value (it is the
    ///   newer reading); one-sided names are kept as-is;
    /// * histograms — same-name histograms merge bucket-wise (see
    ///   [`LogHistogram::merge`]; the bucket layout is a compile-time
    ///   invariant, and layout-mismatched files are rejected at decode
    ///   time); one-sided histograms are copied over.
    ///
    /// These rules make snapshots from heterogeneous runs — different
    /// shard counts, stores exposing different counter sets, reports
    /// written by different subcommands — mergeable without pre-aligning
    /// their shapes.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v += value,
                None => self.counters.push((name.clone(), *value)),
            }
        }
        for (name, value) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, v)) => *v = *value,
                None => self.gauges.push((name.clone(), *value)),
            }
        }
        for (name, hist) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, h)) => h.merge(hist),
                None => self.histograms.push((name.clone(), hist.clone())),
            }
        }
        self.sort();
    }

    /// Sorts every section by name.
    pub(crate) fn sort(&mut self) {
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Value::UInt(*v as u128)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), v.to_value()))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.to_value()))
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("histograms".to_string(), Value::Object(histograms)),
        ])
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "MetricsSnapshot";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        let section = |name: &str| -> Result<&Vec<(String, Value)>, Error> {
            serde::find_field(members, name)
                .ok_or_else(|| Error::missing_field(name, CTX))?
                .as_object()
                .ok_or_else(|| Error::custom(format!("section `{name}` must be an object")))
        };
        let mut snap = MetricsSnapshot::new();
        for (name, v) in section("counters")? {
            snap.counters.push((name.clone(), u64::from_value(v)?));
        }
        for (name, v) in section("gauges")? {
            snap.gauges.push((name.clone(), i64::from_value(v)?));
        }
        for (name, v) in section("histograms")? {
            snap.histograms
                .push((name.clone(), LogHistogram::from_value(v)?));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsSnapshot::new();
        a.push_counter("ops", 10);
        a.push_gauge("depth", 2);
        let mut ha = LogHistogram::new();
        ha.record(100);
        a.histograms.push(("lat".to_string(), ha));

        let mut b = MetricsSnapshot::new();
        b.push_counter("ops", 5);
        b.push_counter("errors", 1);
        b.push_gauge("depth", 7);
        let mut hb = LogHistogram::new();
        hb.record(2_000);
        b.histograms.push(("lat".to_string(), hb));

        a.merge(&b);
        assert_eq!(a.counter("ops"), Some(15));
        assert_eq!(a.counter("errors"), Some(1));
        assert_eq!(a.gauge("depth"), Some(7));
        let lat = a.histogram("lat").unwrap();
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.max(), 2_000);
    }

    #[test]
    fn serde_round_trip() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("flushes", 3);
        snap.push_gauge("live_bytes", -1);
        let mut h = LogHistogram::new();
        h.record(42);
        h.record(9_999);
        snap.histograms.push(("fsync_ns".to_string(), h));
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn merge_is_a_union_over_disjoint_names() {
        // Two shards exposing different counter sets (one compacted,
        // one GC'd) and different histogram names: the merge keeps
        // every name, adds nothing spurious, and stays sorted.
        let mut a = MetricsSnapshot::new();
        a.push_counter("compactions", 3);
        a.push_gauge("memtable_bytes", 100);
        let mut ha = LogHistogram::new();
        ha.record(500);
        a.histograms.push(("flush_ns".to_string(), ha));
        a.sort();

        let mut b = MetricsSnapshot::new();
        b.push_counter("gc_passes", 2);
        b.push_gauge("log_bytes", 9);
        let mut hb = LogHistogram::new();
        hb.record(7_000);
        b.histograms.push(("gc_ns".to_string(), hb));
        b.sort();

        a.merge(&b);
        assert_eq!(a.counter("compactions"), Some(3));
        assert_eq!(a.counter("gc_passes"), Some(2));
        assert_eq!(a.gauge("memtable_bytes"), Some(100));
        assert_eq!(a.gauge("log_bytes"), Some(9));
        assert_eq!(a.histogram("flush_ns").unwrap().count(), 1);
        assert_eq!(a.histogram("gc_ns").unwrap().count(), 1);
        assert_eq!(a.counters.len(), 2);
        assert_eq!(a.histograms.len(), 2);
        let mut sorted = a.histograms.clone();
        sorted.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a.histograms, sorted, "sections stay sorted after merge");
    }

    #[test]
    fn merge_unions_histograms_with_disjoint_buckets() {
        // Same metric name, disjoint value ranges (a fast shard and a
        // slow shard): the merged histogram holds both populations.
        let mut fast = MetricsSnapshot::new();
        let mut hf = LogHistogram::new();
        for _ in 0..10 {
            hf.record(100);
        }
        fast.histograms.push(("lat".to_string(), hf));
        let mut slow = MetricsSnapshot::new();
        let mut hs = LogHistogram::new();
        for _ in 0..10 {
            hs.record(50_000_000);
        }
        slow.histograms.push(("lat".to_string(), hs));
        fast.merge(&slow);
        let merged = fast.histogram("lat").unwrap();
        assert_eq!(merged.count(), 20);
        assert!(merged.percentile(25.0) <= 100);
        assert!(merged.percentile(75.0) >= 49_000_000);
    }

    #[test]
    fn lookup_missing_names() {
        let snap = MetricsSnapshot::new();
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("nope"), None);
        assert!(snap.histogram("nope").is_none());
    }
}
