//! Periodic snapshot collection into a JSON time series.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Error, Serialize, Value};

use crate::live::{flatten_registries, SharedSnapshot};
use crate::snapshot::MetricsSnapshot;

/// One sample of every observed registry at one moment of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPoint {
    /// Operations completed when the sample was taken.
    pub ops: u64,
    /// Milliseconds since the emitter was created.
    pub wall_ms: u64,
    /// Snapshots by component name (store label, "replayer", ...).
    pub registries: Vec<(String, MetricsSnapshot)>,
}

/// A whole run's worth of [`SnapshotPoint`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSeries {
    /// Sampling interval in operations.
    pub interval_ops: u64,
    /// Samples in collection order.
    pub points: Vec<SnapshotPoint>,
}

impl SnapshotPoint {
    /// The snapshot recorded for `component`, if present.
    pub fn registry(&self, component: &str) -> Option<&MetricsSnapshot> {
        self.registries
            .iter()
            .find(|(n, _)| n == component)
            .map(|(_, s)| s)
    }
}

// Manual impls so `registries` reads as a JSON object keyed by
// component name rather than an array of pairs.
impl Serialize for SnapshotPoint {
    fn to_value(&self) -> Value {
        let registries = self
            .registries
            .iter()
            .map(|(n, s)| (n.clone(), s.to_value()))
            .collect();
        Value::Object(vec![
            ("ops".to_string(), Value::UInt(self.ops as u128)),
            ("wall_ms".to_string(), Value::UInt(self.wall_ms as u128)),
            ("registries".to_string(), Value::Object(registries)),
        ])
    }
}

impl Deserialize for SnapshotPoint {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "SnapshotPoint";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        let field = |name: &str| {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        let registries = field("registries")?
            .as_object()
            .ok_or_else(|| Error::custom("`registries` must be an object"))?
            .iter()
            .map(|(n, v)| Ok((n.clone(), MetricsSnapshot::from_value(v)?)))
            .collect::<Result<_, Error>>()?;
        Ok(SnapshotPoint {
            ops: u64::from_value(field("ops")?)?,
            wall_ms: u64::from_value(field("wall_ms")?)?,
            registries,
        })
    }
}

impl Serialize for MetricsSeries {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "interval_ops".to_string(),
                Value::UInt(self.interval_ops as u128),
            ),
            (
                "points".to_string(),
                Value::Array(self.points.iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

impl Deserialize for MetricsSeries {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "MetricsSeries";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        let field = |name: &str| {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        let points = match field("points")? {
            Value::Array(entries) => entries
                .iter()
                .map(SnapshotPoint::from_value)
                .collect::<Result<_, Error>>()?,
            other => return Err(Error::expected("array", other, CTX)),
        };
        Ok(MetricsSeries {
            interval_ops: u64::from_value(field("interval_ops")?)?,
            points,
        })
    }
}

/// Samples metrics every `interval` operations.
///
/// The driving loop calls [`poll`](SnapshotEmitter::poll) after each
/// operation (or batch); collection only happens when the op counter
/// crosses the next threshold, so the common case is a single integer
/// compare. The closure passed to `poll` assembles the registries to
/// record — it runs only on sampling ticks, keeping snapshot assembly
/// off the hot path.
#[derive(Debug)]
pub struct SnapshotEmitter {
    interval: u64,
    next: u64,
    started: Instant,
    series: MetricsSeries,
    live: Option<SharedSnapshot>,
}

impl SnapshotEmitter {
    /// Creates an emitter sampling every `interval` operations
    /// (`interval = 0` is treated as 1).
    pub fn every(interval: u64) -> Self {
        let interval = interval.max(1);
        SnapshotEmitter {
            interval,
            next: interval,
            started: Instant::now(),
            series: MetricsSeries {
                interval_ops: interval,
                points: Vec::new(),
            },
            live: None,
        }
    }

    /// Publishes every recorded sample (flattened, component-prefixed)
    /// into `sink` as well — this is how a live `/metrics` endpoint
    /// sees mid-run state without touching the hot loop.
    pub fn with_live_sink(mut self, sink: SharedSnapshot) -> Self {
        self.live = Some(sink);
        self
    }

    /// Records a sample if `ops` has crossed the next threshold.
    /// Returns whether a sample was taken.
    pub fn poll(
        &mut self,
        ops: u64,
        collect: impl FnOnce() -> Vec<(String, MetricsSnapshot)>,
    ) -> bool {
        if ops < self.next {
            return false;
        }
        self.next = ops - ops % self.interval + self.interval;
        self.take(ops, collect());
        true
    }

    /// Records a final sample unconditionally (end-of-run totals).
    pub fn finish(&mut self, ops: u64, registries: Vec<(String, MetricsSnapshot)>) {
        self.take(ops, registries);
    }

    fn take(&mut self, ops: u64, registries: Vec<(String, MetricsSnapshot)>) {
        if let Some(sink) = &self.live {
            sink.publish(flatten_registries(&registries));
        }
        self.series.points.push(SnapshotPoint {
            ops,
            wall_ms: self.started.elapsed().as_millis() as u64,
            registries,
        });
    }

    /// Attaches an extra component snapshot to the most recent point —
    /// used for end-of-run derivations like the tail-latency
    /// attribution report, which only exists once the run is over.
    /// No-op when no point was recorded yet.
    pub fn annotate_last(&mut self, component: &str, snapshot: MetricsSnapshot) {
        if let Some(point) = self.series.points.last_mut() {
            point.registries.push((component.to_string(), snapshot));
        }
    }

    /// The series collected so far.
    pub fn series(&self) -> &MetricsSeries {
        &self.series
    }

    /// Writes the series as pretty-printed JSON to `path`.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        serde_json::to_writer_pretty(&mut file, &self.series)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        file.write_all(b"\n")?;
        file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_registry(n: u64) -> Vec<(String, MetricsSnapshot)> {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("ops", n);
        vec![("store".to_string(), snap)]
    }

    #[test]
    fn polls_fire_on_interval_boundaries() {
        let mut emitter = SnapshotEmitter::every(100);
        let mut collected = 0u32;
        for ops in 1..=350u64 {
            if emitter.poll(ops, || {
                collected += 1;
                one_registry(ops)
            }) {
                assert_eq!(ops % 100, 0);
            }
        }
        assert_eq!(collected, 3);
        let points = &emitter.series().points;
        assert_eq!(points.len(), 3);
        assert_eq!(
            points.iter().map(|p| p.ops).collect::<Vec<_>>(),
            vec![100, 200, 300]
        );
        assert_eq!(
            points[1].registry("store").unwrap().counter("ops"),
            Some(200)
        );
    }

    #[test]
    fn poll_skips_ahead_after_a_gap() {
        let mut emitter = SnapshotEmitter::every(10);
        assert!(emitter.poll(35, || one_registry(35)));
        // Next threshold is 40, not 20: missed windows are not replayed.
        assert!(!emitter.poll(39, || one_registry(39)));
        assert!(emitter.poll(40, || one_registry(40)));
    }

    #[test]
    fn finish_always_records() {
        let mut emitter = SnapshotEmitter::every(1_000);
        assert!(!emitter.poll(5, || one_registry(5)));
        emitter.finish(5, one_registry(5));
        assert_eq!(emitter.series().points.len(), 1);
        assert_eq!(emitter.series().points[0].ops, 5);
    }

    #[test]
    fn series_round_trips_through_json() {
        let mut emitter = SnapshotEmitter::every(2);
        emitter.poll(2, || one_registry(2));
        emitter.poll(4, || one_registry(4));
        let json = serde_json::to_string_pretty(emitter.series()).unwrap();
        let back: MetricsSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, emitter.series());
    }

    #[test]
    fn round_trip_preserves_non_decreasing_op_counts() {
        // A realistic multi-point series (poll ticks plus a finish
        // sample at the same op count) must come back from JSON with
        // its op axis intact and monotonically non-decreasing.
        let mut emitter = SnapshotEmitter::every(50);
        for ops in [50u64, 100, 150, 730] {
            emitter.poll(ops, || one_registry(ops));
        }
        emitter.finish(730, one_registry(730));
        let json = serde_json::to_string_pretty(emitter.series()).unwrap();
        let back: MetricsSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, emitter.series());
        let ops: Vec<u64> = back.points.iter().map(|p| p.ops).collect();
        assert_eq!(ops, vec![50, 100, 150, 730, 730]);
        assert!(ops.windows(2).all(|w| w[0] <= w[1]), "ops axis regressed");
        for point in &back.points {
            assert_eq!(
                point.registry("store").unwrap().counter("ops"),
                Some(point.ops)
            );
        }
    }

    #[test]
    fn annotate_last_appends_a_component() {
        let mut emitter = SnapshotEmitter::every(1);
        // Before any point exists, annotation is dropped, not panicking.
        emitter.annotate_last("extra", MetricsSnapshot::new());
        assert!(emitter.series().points.is_empty());

        emitter.poll(1, || one_registry(1));
        let mut extra = MetricsSnapshot::new();
        extra.push_counter("tail_ops", 7);
        emitter.annotate_last("trace_attribution", extra);
        let point = emitter.series().points.last().unwrap();
        assert_eq!(
            point
                .registry("trace_attribution")
                .unwrap()
                .counter("tail_ops"),
            Some(7)
        );
        // And it survives the JSON round trip.
        let json = serde_json::to_string(emitter.series()).unwrap();
        let back: MetricsSeries = serde_json::from_str(&json).unwrap();
        assert!(back.points[0].registry("trace_attribution").is_some());
    }

    #[test]
    fn live_sink_sees_every_sample() {
        let sink = crate::live::SharedSnapshot::new();
        let mut emitter = SnapshotEmitter::every(10).with_live_sink(sink.clone());
        emitter.poll(10, || one_registry(10));
        assert_eq!(sink.get().counter("store_ops"), Some(10));
        emitter.poll(20, || one_registry(20));
        assert_eq!(sink.get().counter("store_ops"), Some(20));
        emitter.finish(25, one_registry(25));
        assert_eq!(sink.get().counter("store_ops"), Some(25));
    }

    #[test]
    fn write_json_creates_the_file() {
        let mut emitter = SnapshotEmitter::every(1);
        emitter.poll(1, || one_registry(1));
        let dir = std::env::temp_dir().join("gadget-obs-emitter-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.json");
        emitter.write_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"interval_ops\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
