//! Named metric instruments and the registry that owns them.
//!
//! The hot path never takes a lock: instruments are `Arc`-wrapped
//! atomics handed out once at registration, and every update after that
//! is a relaxed atomic op. The registry's mutex is touched only when
//! registering an instrument or taking a snapshot.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::{AtomicHistogram, LogHistogram};
use crate::snapshot::MetricsSnapshot;

/// Monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates an unregistered counter (useful for tests and for
    /// instruments shared outside a registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed measurement (queue depth, live bytes, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates an unregistered gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Latency recorder backed by an [`AtomicHistogram`], with optional
/// sampling so timing cost stays off the hot path.
///
/// With `sample_shift = s`, only one in `2^s` calls takes the clock;
/// `s = 0` times every call (right when the operation itself dwarfs two
/// `Instant` reads, e.g. an fsync).
///
/// All accounting is exact *and* RMW-free: each thread owns a private
/// slot per timer (tick counter + sampled-latency histogram), every
/// update is a relaxed load/store with a single writer, and
/// [`Timer::calls`] / [`Timer::snapshot`] sum or merge the slots. An
/// earlier version raced a shared load/store pair — losing increments
/// and double-sampling ticks under concurrency — and the obvious
/// `fetch_add` fix costs ~10 ns per call on common hardware, blowing
/// the <5% wrapper budget on a ~55 ns in-memory get. Per-thread
/// single-writer slots keep the untimed path at about a nanosecond
/// while every increment lands, and each thread samples exactly one in
/// `2^s` of its own calls.
#[derive(Debug, Clone)]
pub struct Timer {
    shared: Arc<TimerShared>,
    /// Process-unique timer id; indexes each thread's slot table.
    /// Kept inline (not behind the `Arc`) so the per-call slot lookup
    /// never chases a pointer.
    id: usize,
    mask: u64,
}

/// Per-(thread, timer) state. Single-writer: only the owning thread
/// records; any thread may read.
#[derive(Debug, Default)]
struct TimerSlot {
    ticks: AtomicU64,
    hist: AtomicHistogram,
}

/// Slots are leaked so threads can hold `'static` references in plain
/// `Cell`s (no per-call refcounting or `RefCell` checks). The leak is
/// one small allocation per (thread, timer) pair that ever ticked,
/// bounded and deliberate.
type TickSlot = &'static TimerSlot;

#[derive(Debug)]
struct TimerShared {
    /// One slot per thread that ever used this timer. [`Timer::calls`]
    /// and [`Timer::snapshot`] aggregate them (slots of exited threads
    /// persist here, so their counts are never lost).
    slots: Mutex<Vec<TickSlot>>,
}

static NEXT_TIMER_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Most-recently-used (timer id, slot) on this thread. Hot loops
    /// hammer one timer (a get storm, a preload's put storm), so this
    /// one-entry cache turns the common tick into a handful of
    /// unshared loads and stores.
    static LAST_SLOT: std::cell::Cell<Option<(usize, TickSlot)>> =
        const { std::cell::Cell::new(None) };
    /// This thread's tick slots, indexed by timer id. Ids are never
    /// reused, so an entry can only ever belong to one timer.
    static TICK_SLOTS: std::cell::RefCell<Vec<Option<TickSlot>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

impl Timer {
    /// Creates an unregistered timer sampling one in `2^sample_shift`
    /// calls.
    pub fn new(sample_shift: u32) -> Self {
        Timer {
            shared: Arc::new(TimerShared {
                slots: Mutex::new(Vec::new()),
            }),
            id: NEXT_TIMER_ID.fetch_add(1, Ordering::Relaxed) as usize,
            mask: (1u64 << sample_shift.min(63)) - 1,
        }
    }

    /// The calling thread's slot for this timer.
    #[inline(always)]
    fn slot(&self) -> TickSlot {
        let id = self.id;
        if let Some((cached_id, slot)) = LAST_SLOT.with(std::cell::Cell::get) {
            if cached_id == id {
                return slot;
            }
        }
        self.slot_uncached(id)
    }

    /// Slot via the thread's full table (registering this thread with
    /// the timer on first contact), refreshing the MRU cache.
    #[cold]
    #[inline(never)]
    fn slot_uncached(&self, id: usize) -> TickSlot {
        TICK_SLOTS.with(|cell| {
            let mut local = cell.borrow_mut();
            let slot: TickSlot = match local.get(id) {
                Some(Some(slot)) => slot,
                _ => {
                    if local.len() <= id {
                        local.resize(id + 1, None);
                    }
                    let slot: TickSlot = Box::leak(Box::new(TimerSlot::default()));
                    self.shared.slots.lock().unwrap().push(slot);
                    local[id] = Some(slot);
                    slot
                }
            };
            LAST_SLOT.with(|cache| cache.set(Some((id, slot))));
            slot
        })
    }

    /// Claims the next tick on `slot` (single writer: the owning
    /// thread).
    #[inline(always)]
    fn tick(slot: TickSlot) -> u64 {
        let tick = slot.ticks.load(Ordering::Relaxed);
        slot.ticks.store(tick + 1, Ordering::Relaxed);
        tick
    }

    /// Runs `f`, recording its latency if this call is sampled.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let slot = self.slot();
        if Timer::tick(slot) & self.mask == 0 {
            let start = Instant::now();
            let out = f();
            slot.hist.record_unshared(start.elapsed().as_nanos() as u64);
            out
        } else {
            f()
        }
    }

    /// Like [`Timer::time`], but sampled calls additionally emit a
    /// trace span of `cat` (with `arg`) when a trace session is active.
    /// Unsampled calls never touch the tracer, so the hot path is
    /// identical to `time`.
    #[inline]
    pub fn time_traced<T>(
        &self,
        cat: crate::trace::Category,
        arg: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        let slot = self.slot();
        if Timer::tick(slot) & self.mask == 0 {
            let start = Instant::now();
            let out = f();
            let nanos = start.elapsed().as_nanos() as u64;
            slot.hist.record_unshared(nanos);
            crate::trace::record_ending_now(cat, arg, nanos);
            out
        } else {
            f()
        }
    }

    /// Records an externally measured latency in nanoseconds,
    /// bypassing sampling.
    pub fn record_ns(&self, nanos: u64) {
        let slot = self.slot();
        Timer::tick(slot);
        slot.hist.record_unshared(nanos);
    }

    /// Total calls observed (sampled or not), summed over every
    /// thread's slot. Exact once the counted threads are joined (or
    /// otherwise synchronized with the reader).
    pub fn calls(&self) -> u64 {
        self.shared
            .slots
            .lock()
            .unwrap()
            .iter()
            .map(|slot| slot.ticks.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of the sampled latencies, merged over every thread's
    /// slot. Exact under the same conditions as [`Timer::calls`].
    pub fn snapshot(&self) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for slot in self.shared.slots.lock().unwrap().iter() {
            merged.merge(&slot.hist.snapshot());
        }
        merged
    }
}

#[derive(Default)]
struct Inner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    timers: Vec<(String, Timer)>,
}

/// A named collection of instruments.
///
/// Cloning the registry (it is used behind `Arc`) or an instrument is
/// cheap; all clones observe the same values. Instrument lookup is
/// get-or-register by name, so independent components can share an
/// instrument by agreeing on its name.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let counter = Counter::new();
        inner.counters.push((name.to_string(), counter.clone()));
        counter
    }

    /// Returns the gauge named `name`, registering it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let gauge = Gauge::new();
        inner.gauges.push((name.to_string(), gauge.clone()));
        gauge
    }

    /// Returns the timer named `name`, registering it (sampling one in
    /// `2^sample_shift` calls) if absent. An existing timer keeps its
    /// original sampling rate.
    pub fn timer(&self, name: &str, sample_shift: u32) -> Timer {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, t)) = inner.timers.iter().find(|(n, _)| n == name) {
            return t.clone();
        }
        let timer = Timer::new(sample_shift);
        inner.timers.push((name.to_string(), timer.clone()));
        timer
    }

    /// Copies every instrument's current value into a snapshot.
    ///
    /// Counters and gauges are reported under their registered names;
    /// a timer contributes a `<name>_calls` counter and a `<name>_ns`
    /// histogram. Names are sorted for stable output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, counter) in &inner.counters {
            snap.counters.push((name.clone(), counter.get()));
        }
        for (name, gauge) in &inner.gauges {
            snap.gauges.push((name.clone(), gauge.get()));
        }
        for (name, timer) in &inner.timers {
            snap.counters.push((format!("{name}_calls"), timer.calls()));
            snap.histograms
                .push((format!("{name}_ns"), timer.snapshot()));
        }
        snap.sort();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ops");
        let b = reg.counter("ops");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("ops").get(), 4);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn timer_counts_every_call_and_samples_latency() {
        let timer = Timer::new(2); // one in four sampled
        for _ in 0..16 {
            timer.time(|| std::hint::black_box(1 + 1));
        }
        assert_eq!(timer.calls(), 16);
        assert_eq!(timer.snapshot().count(), 4);
    }

    #[test]
    fn timer_shift_zero_times_everything() {
        let timer = Timer::new(0);
        for _ in 0..5 {
            timer.time(|| ());
        }
        assert_eq!(timer.snapshot().count(), 5);
    }

    #[test]
    fn snapshot_includes_all_instruments_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(2);
        reg.gauge("live").set(-5);
        reg.timer("get", 0).record_ns(1_000);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "get_calls", "zeta"]);
        assert_eq!(snap.gauges, vec![("live".to_string(), -5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "get_ns");
        assert_eq!(snap.histograms[0].1.count(), 1);
    }

    #[test]
    fn concurrent_timers_sample_exactly() {
        // With single-writer per-thread tick slots, no increment can be
        // lost and each thread samples exactly one in 2^shift of its
        // own calls, so with per-thread counts divisible by 2^shift the
        // totals are exact — the old racy shared load/store pair could
        // collapse ticks and drift both.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 40_000;
        const SHIFT: u32 = 4;
        let timer = Timer::new(SHIFT);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let timer = timer.clone();
                scope.spawn(move || {
                    for _ in 0..PER_THREAD {
                        timer.time(|| std::hint::black_box(0u64));
                    }
                });
            }
        });
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(timer.calls(), total);
        assert_eq!(timer.snapshot().count(), total >> SHIFT);
    }

    #[test]
    fn time_traced_samples_like_time_and_spans_when_enabled() {
        let timer = Timer::new(2);
        let session = crate::trace::start_session();
        for _ in 0..16 {
            timer.time_traced(crate::trace::Category::OpGet, 0, || {
                std::hint::black_box(1 + 1)
            });
        }
        let log = session.finish();
        assert_eq!(timer.calls(), 16);
        assert_eq!(timer.snapshot().count(), 4);
        assert_eq!(
            log.spans_of(crate::trace::Category::OpGet).count(),
            4,
            "one span per sampled call"
        );
        // Disabled tracer: still samples, no spans.
        for _ in 0..16 {
            timer.time_traced(crate::trace::Category::OpGet, 0, || ());
        }
        assert_eq!(timer.snapshot().count(), 8);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let c2 = c.clone();
        c2.add(9);
        assert_eq!(c.get(), 9);
    }
}
