//! Named metric instruments and the registry that owns them.
//!
//! The hot path never takes a lock: instruments are `Arc`-wrapped
//! atomics handed out once at registration, and every update after that
//! is a relaxed atomic op. The registry's mutex is touched only when
//! registering an instrument or taking a snapshot.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::hist::{AtomicHistogram, LogHistogram};
use crate::snapshot::MetricsSnapshot;

/// Monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates an unregistered counter (useful for tests and for
    /// instruments shared outside a registry).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Point-in-time signed measurement (queue depth, live bytes, ...).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates an unregistered gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Latency recorder backed by an [`AtomicHistogram`], with optional
/// sampling so timing cost stays off the hot path.
///
/// With `sample_shift = s`, only one in `2^s` calls takes the clock;
/// `s = 0` times every call (right when the operation itself dwarfs two
/// `Instant` reads, e.g. an fsync). The untimed calls cost a relaxed
/// load/store pair — deliberately not an atomic RMW, which alone would
/// be a measurable share of a sub-100ns operation. Under concurrent use
/// of one timer, racing increments can be lost, so [`Timer::calls`] is
/// a slight undercount in the worst case; stores keep their own exact
/// operation counters, and latency is sampled by design.
#[derive(Debug, Clone)]
pub struct Timer {
    hist: Arc<AtomicHistogram>,
    calls: Arc<AtomicU64>,
    mask: u64,
}

impl Timer {
    /// Creates an unregistered timer sampling one in `2^sample_shift`
    /// calls.
    pub fn new(sample_shift: u32) -> Self {
        Timer {
            hist: Arc::new(AtomicHistogram::new()),
            calls: Arc::new(AtomicU64::new(0)),
            mask: (1u64 << sample_shift.min(63)) - 1,
        }
    }

    /// Runs `f`, recording its latency if this call is sampled.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        // Racy increment on purpose: see the type-level note on cost.
        let tick = self.calls.load(Ordering::Relaxed);
        self.calls.store(tick.wrapping_add(1), Ordering::Relaxed);
        if tick & self.mask == 0 {
            let start = Instant::now();
            let out = f();
            self.hist.record(start.elapsed().as_nanos() as u64);
            out
        } else {
            f()
        }
    }

    /// Records an externally measured latency in nanoseconds,
    /// bypassing sampling.
    pub fn record_ns(&self, nanos: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.hist.record(nanos);
    }

    /// Total calls observed (sampled or not).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Snapshot of the sampled latencies.
    pub fn snapshot(&self) -> LogHistogram {
        self.hist.snapshot()
    }
}

#[derive(Default)]
struct Inner {
    counters: Vec<(String, Counter)>,
    gauges: Vec<(String, Gauge)>,
    timers: Vec<(String, Timer)>,
}

/// A named collection of instruments.
///
/// Cloning the registry (it is used behind `Arc`) or an instrument is
/// cheap; all clones observe the same values. Instrument lookup is
/// get-or-register by name, so independent components can share an
/// instrument by agreeing on its name.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let counter = Counter::new();
        inner.counters.push((name.to_string(), counter.clone()));
        counter
    }

    /// Returns the gauge named `name`, registering it if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let gauge = Gauge::new();
        inner.gauges.push((name.to_string(), gauge.clone()));
        gauge
    }

    /// Returns the timer named `name`, registering it (sampling one in
    /// `2^sample_shift` calls) if absent. An existing timer keeps its
    /// original sampling rate.
    pub fn timer(&self, name: &str, sample_shift: u32) -> Timer {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, t)) = inner.timers.iter().find(|(n, _)| n == name) {
            return t.clone();
        }
        let timer = Timer::new(sample_shift);
        inner.timers.push((name.to_string(), timer.clone()));
        timer
    }

    /// Copies every instrument's current value into a snapshot.
    ///
    /// Counters and gauges are reported under their registered names;
    /// a timer contributes a `<name>_calls` counter and a `<name>_ns`
    /// histogram. Names are sorted for stable output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, counter) in &inner.counters {
            snap.counters.push((name.clone(), counter.get()));
        }
        for (name, gauge) in &inner.gauges {
            snap.gauges.push((name.clone(), gauge.get()));
        }
        for (name, timer) in &inner.timers {
            snap.counters.push((format!("{name}_calls"), timer.calls()));
            snap.histograms
                .push((format!("{name}_ns"), timer.snapshot()));
        }
        snap.sort();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ops");
        let b = reg.counter("ops");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("ops").get(), 4);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn timer_counts_every_call_and_samples_latency() {
        let timer = Timer::new(2); // one in four sampled
        for _ in 0..16 {
            timer.time(|| std::hint::black_box(1 + 1));
        }
        assert_eq!(timer.calls(), 16);
        assert_eq!(timer.snapshot().count(), 4);
    }

    #[test]
    fn timer_shift_zero_times_everything() {
        let timer = Timer::new(0);
        for _ in 0..5 {
            timer.time(|| ());
        }
        assert_eq!(timer.snapshot().count(), 5);
    }

    #[test]
    fn snapshot_includes_all_instruments_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(2);
        reg.gauge("live").set(-5);
        reg.timer("get", 0).record_ns(1_000);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha", "get_calls", "zeta"]);
        assert_eq!(snap.gauges, vec![("live".to_string(), -5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "get_ns");
        assert_eq!(snap.histograms[0].1.count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let c2 = c.clone();
        c2.add(9);
        assert_eq!(c.get(), 9);
    }
}
