//! Log-bucketed histograms.
//!
//! Values are bucketed by exponent and 5 mantissa bits, giving ~3%
//! relative error with a fixed, allocation-free footprint — the usual
//! HDR-histogram trade-off, reimplemented here to keep the dependency
//! surface minimal. Two flavours share the bucket layout:
//!
//! * [`LogHistogram`] — single-writer, mergeable, serializable. This is
//!   the snapshot/aggregation type (and backs the replayer's
//!   `LatencyHistogram`).
//! * [`AtomicHistogram`] — shared-writer recording with relaxed atomics,
//!   convertible to a [`LogHistogram`] via [`AtomicHistogram::snapshot`].

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Error, Serialize, Value};

const MANTISSA_BITS: u32 = 5;
const BUCKETS: usize = 64 << MANTISSA_BITS;

fn bucket_of(value: u64) -> usize {
    if value < (1 << (MANTISSA_BITS + 1)) {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let mantissa = (value >> (exp - MANTISSA_BITS)) & ((1 << MANTISSA_BITS) - 1);
    (((exp - MANTISSA_BITS) as usize) << MANTISSA_BITS | mantissa as usize) + (1 << MANTISSA_BITS)
}

fn bucket_floor(bucket: usize) -> u64 {
    if bucket < (1 << (MANTISSA_BITS + 1)) {
        return bucket as u64;
    }
    let b = bucket - (1 << MANTISSA_BITS);
    let exp = (b >> MANTISSA_BITS) as u32 + MANTISSA_BITS;
    let mantissa = (b & ((1 << MANTISSA_BITS) - 1)) as u64;
    (1u64 << exp) | (mantissa << (exp - MANTISSA_BITS))
}

/// The `[lo, hi)` range of the bucket `value` falls into.
///
/// Every value in that half-open range is indistinguishable after
/// recording, so `hi - lo` bounds the quantization error a reported
/// percentile can carry. Exposed for accuracy tests.
pub fn bucket_bounds(value: u64) -> (u64, u64) {
    let b = bucket_of(value).min(BUCKETS - 1);
    let lo = bucket_floor(b);
    let hi = if b + 1 < BUCKETS {
        bucket_floor(b + 1)
    } else {
        u64::MAX
    };
    (lo, hi)
}

/// A histogram of `u64` values (nanoseconds by convention).
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let b = bucket_of(value).min(BUCKETS - 1);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at percentile `p` in `[0, 100]` (bucket lower bound; exact
    /// max for `p = 100`).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if p >= 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(b);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    ///
    /// Merge semantics are a *union*: per-bucket counts add, `sum` adds,
    /// `max` takes the larger side. Buckets occupied on only one side
    /// keep that side's count — merging histograms over disjoint value
    /// ranges (e.g. per-shard latency profiles with different speeds) is
    /// well-defined and exact at bucket granularity. The bucket layout
    /// itself (`MANTISSA_BITS`, bucket count) is a compile-time
    /// invariant of this crate, so two in-process histograms always
    /// agree on shape; histograms deserialized from files written by a
    /// *different* layout are rejected at decode time (see the
    /// `mantissa_bits` wire field) rather than silently mis-merged.
    pub fn merge(&mut self, other: &LogHistogram) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Occupied buckets as `(bucket_floor, count)` pairs, ascending by
    /// value. `bucket_floor` is the lower bound of the bucket's value
    /// range (see [`bucket_bounds`]); together with the counts this is
    /// enough to reconstruct the empirical distribution at bucket
    /// granularity — the decoding used by `gadget-report`'s statistical
    /// comparison engine.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (bucket_floor(b), c))
    }
}

// A dense dump of 2048 buckets would dominate every snapshot file, so
// the wire form is sparse: only occupied buckets, as `[index, count]`
// pairs, plus derived summary fields for human readers (ignored on
// deserialize — they are recomputed from the buckets).
impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        let buckets: Vec<Value> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| Value::Array(vec![Value::UInt(b as u128), Value::UInt(c as u128)]))
            .collect();
        Value::Object(vec![
            (
                "mantissa_bits".to_string(),
                Value::UInt(MANTISSA_BITS as u128),
            ),
            ("count".to_string(), Value::UInt(self.total as u128)),
            ("sum".to_string(), Value::UInt(self.sum)),
            ("max".to_string(), Value::UInt(self.max as u128)),
            ("mean".to_string(), Value::Float(self.mean())),
            (
                "p50".to_string(),
                Value::UInt(self.percentile(50.0) as u128),
            ),
            (
                "p99".to_string(),
                Value::UInt(self.percentile(99.0) as u128),
            ),
            (
                "p999".to_string(),
                Value::UInt(self.percentile(99.9) as u128),
            ),
            ("buckets".to_string(), Value::Array(buckets)),
        ])
    }
}

impl Deserialize for LogHistogram {
    fn from_value(value: &Value) -> Result<Self, Error> {
        const CTX: &str = "LogHistogram";
        let members = value
            .as_object()
            .ok_or_else(|| Error::expected("object", value, CTX))?;
        let field = |name: &str| {
            serde::find_field(members, name).ok_or_else(|| Error::missing_field(name, CTX))
        };
        // Bucket indexes are only meaningful under the layout that wrote
        // them. Histograms serialized before the field existed carry no
        // marker and are accepted (they used today's layout); an explicit
        // mismatch is a hard error, not a silent mis-decode.
        if let Some(bits) = serde::find_field(members, "mantissa_bits") {
            let bits = u32::from_value(bits)?;
            if bits != MANTISSA_BITS {
                return Err(Error::custom(format!(
                    "{CTX} written with {bits} mantissa bits, this build uses {MANTISSA_BITS}"
                )));
            }
        }
        let mut hist = LogHistogram::new();
        hist.total = u64::from_value(field("count")?)?;
        hist.sum = u128::from_value(field("sum")?)?;
        hist.max = u64::from_value(field("max")?)?;
        let buckets = match field("buckets")? {
            Value::Array(entries) => entries,
            other => return Err(Error::expected("array", other, CTX)),
        };
        for entry in buckets {
            let (bucket, count) = <(usize, u64)>::from_value(entry)?;
            if bucket >= BUCKETS {
                return Err(Error::custom(format!(
                    "bucket index {bucket} out of range in {CTX}"
                )));
            }
            hist.counts[bucket] = count;
        }
        Ok(hist)
    }
}

/// A [`LogHistogram`] with interior mutability: any number of threads
/// may [`record`](AtomicHistogram::record) concurrently through a
/// shared reference, with one relaxed fetch-add per touched field.
///
/// `sum` lives in a `u64`: at one recorded millisecond (10^6 ns) per
/// operation it takes ~10^13 operations to overflow, far beyond any
/// run this harness drives.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        let b = bucket_of(value).min(BUCKETS - 1);
        self.counts[b].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one value through relaxed load/store pairs instead of
    /// RMWs — several times cheaper on common hardware. Only sound
    /// with a single writer (the per-thread timer slots); racing this
    /// against itself or [`record`](AtomicHistogram::record) loses
    /// updates.
    pub(crate) fn record_unshared(&self, value: u64) {
        let b = bucket_of(value).min(BUCKETS - 1);
        let count = self.counts[b].load(Ordering::Relaxed);
        self.counts[b].store(count + 1, Ordering::Relaxed);
        let total = self.total.load(Ordering::Relaxed);
        self.total.store(total + 1, Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        self.sum.store(sum + value, Ordering::Relaxed);
        if value > self.max.load(Ordering::Relaxed) {
            self.max.store(value, Ordering::Relaxed);
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Copies the current contents into a mergeable [`LogHistogram`].
    ///
    /// Concurrent writers may land between field reads, so a snapshot
    /// taken mid-traffic can be off by the few operations in flight;
    /// it is exact once writers quiesce.
    pub fn snapshot(&self) -> LogHistogram {
        let mut hist = LogHistogram::new();
        for (slot, count) in hist.counts.iter_mut().zip(&self.counts) {
            *slot = count.load(Ordering::Relaxed);
        }
        hist.total = hist.counts.iter().sum();
        hist.sum = self.sum.load(Ordering::Relaxed) as u128;
        hist.max = self.max.load(Ordering::Relaxed);
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.percentile(50.0), 31);
        assert_eq!(h.count(), 64);
    }

    #[test]
    fn relative_error_is_bounded() {
        for exp in 6..40u32 {
            let v = (1u64 << exp) + (1 << (exp - 2));
            let (lo, hi) = bucket_bounds(v);
            assert!(lo <= v && v < hi, "value outside its bucket at {v}");
            assert!(
                (v - lo) as f64 / v as f64 <= 0.04,
                "error too large at {v}: floor {lo}"
            );
        }
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LogHistogram::new();
        let mut x = 17u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 10_000_000);
        }
        let ps = [1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        for w in ps.windows(2) {
            assert!(h.percentile(w[0]) <= h.percentile(w[1]));
        }
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn empty_histogram_every_quantile_is_zero() {
        let h = LogHistogram::new();
        for p in [0.0, 0.1, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty histogram");
        }
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(1_234_567);
        let (lo, hi) = bucket_bounds(1_234_567);
        for p in [0.0, 1.0, 50.0, 99.0, 99.9] {
            let q = h.percentile(p);
            assert!(
                (lo..hi).contains(&q),
                "p{p} = {q} outside the sample's bucket [{lo}, {hi})"
            );
        }
        // p100 reports the exact max, not the bucket floor.
        assert_eq!(h.percentile(100.0), 1_234_567);
        assert_eq!(h.mean(), 1_234_567.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn merge_of_disjoint_bucket_ranges() {
        // `low` occupies only the exact small-value buckets, `high`
        // only large log buckets — no bucket is shared, so the merged
        // quantiles must straddle the gap without inventing mass.
        let mut low = LogHistogram::new();
        for v in 1..=50u64 {
            low.record(v);
        }
        let mut high = LogHistogram::new();
        for i in 0..50u64 {
            high.record(1_000_000_000 + i * 1_000_000);
        }
        let (low_alone, high_alone) = (low.clone(), high.clone());
        low.merge(&high);

        assert_eq!(low.count(), 100);
        assert_eq!(low.max(), high_alone.max());
        let expected_sum = low_alone.mean() * 50.0 + high_alone.mean() * 50.0;
        assert!((low.mean() * 100.0 - expected_sum).abs() < 1e-3);
        // Lower half comes from `low`, upper half from `high`.
        assert!(low.percentile(25.0) <= 50);
        assert!(low.percentile(75.0) >= bucket_bounds(1_000_000_000).0);
        // p50 sits at the boundary: still a small value.
        assert!(low.percentile(50.0) <= 50);
        for w in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0].windows(2) {
            assert!(low.percentile(w[0]) <= low.percentile(w[1]));
        }
    }

    #[test]
    fn serde_round_trip_is_lossless() {
        let mut h = LogHistogram::new();
        let mut x = 99u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x % 50_000_000);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn serde_output_is_sparse() {
        let mut h = LogHistogram::new();
        h.record(3);
        h.record(1_000_000);
        let json = serde_json::to_string(&h).unwrap();
        // Two occupied buckets → two [index, count] pairs, not 2048 slots.
        assert_eq!(json.matches('[').count(), 3, "json: {json}");
    }

    #[test]
    fn buckets_reconstruct_the_distribution() {
        let mut h = LogHistogram::new();
        let values = [3u64, 3, 70, 1_000_000, 1_000_000, 1_000_000];
        for v in values {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets.len(), 3, "{buckets:?}");
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 6);
        // Floors ascend and each recorded value falls in its bucket.
        for w in buckets.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        for v in values {
            let (lo, hi) = bucket_bounds(v);
            assert!(buckets.iter().any(|&(f, _)| f == lo && lo <= v && v < hi));
        }
        assert!(LogHistogram::new().buckets().next().is_none());
    }

    #[test]
    fn mismatched_bucket_layout_is_rejected() {
        let mut h = LogHistogram::new();
        h.record(1_000);
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("\"mantissa_bits\""));
        // A file written under a different layout must not decode.
        let foreign = json.replace(
            &format!("\"mantissa_bits\":{MANTISSA_BITS}"),
            "\"mantissa_bits\":7",
        );
        assert_ne!(json, foreign);
        let err = serde_json::from_str::<LogHistogram>(&foreign).unwrap_err();
        assert!(err.to_string().contains("mantissa bits"), "{err}");
        // Histograms written before the marker existed still decode.
        let legacy = json.replace(&format!("\"mantissa_bits\":{MANTISSA_BITS},"), "");
        let back: LogHistogram = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn atomic_matches_sequential() {
        let atomic = AtomicHistogram::new();
        let mut plain = LogHistogram::new();
        let mut x = 7u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = x % 3_000_000;
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn atomic_is_shareable_across_threads() {
        use std::sync::Arc;
        let hist = Arc::new(AtomicHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        hist.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(hist.count(), 4_000);
        assert_eq!(hist.snapshot().max(), 3_999);
    }
}
