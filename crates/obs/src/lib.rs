//! # gadget-obs — metrics and observability for the gadget harness
//!
//! A dependency-light metrics subsystem shared by the state stores, the
//! streaming driver, and the trace replayer. The design splits cleanly
//! into live instruments and dead data:
//!
//! * **Instruments** ([`Counter`], [`Gauge`], [`Timer`]) are
//!   `Arc`-wrapped atomics owned by a [`MetricsRegistry`]. Updating one
//!   is a single relaxed atomic operation — no locks on any hot path.
//!   [`Timer`] additionally supports power-of-two sampling so that
//!   clock reads stay off sub-microsecond operations.
//! * **Snapshots** ([`MetricsSnapshot`]) are plain values copied out of
//!   a registry (or assembled by hand). They merge, compare, and
//!   round-trip through JSON, which makes them the right currency for
//!   the `StateStore::metrics` hook: a store reports a snapshot of
//!   its internals without exposing live handles that could go stale
//!   across flushes or restarts.
//! * **Time series** ([`SnapshotEmitter`]) turns periodic snapshots
//!   into a [`MetricsSeries`] keyed by operation count, written as one
//!   JSON document per run — the raw material for "metric X versus
//!   ingested operations" plots.
//!
//! Latency distributions use [`LogHistogram`], a log-bucketed
//! (HDR-style) histogram with ~3% relative error and a fixed 2048-slot
//! footprint; [`AtomicHistogram`] is its concurrent twin.
//!
//! Aggregates explain *how much*; the re-exported [`trace`] subsystem
//! (`gadget-trace`) explains *when*: per-thread span timelines for
//! sampled ops and always-on background work, exportable as Chrome
//! trace JSON and reducible to a tail-latency attribution report.
//! [`Timer::time_traced`] bridges the two, emitting a span for exactly
//! the calls it samples.
//!
//! `StateStore::metrics` lives in `gadget-kv`; this crate deliberately
//! depends only on `gadget-trace` and the serde shims so every layer
//! of the workspace can use it.

pub mod emitter;
pub mod hist;
pub mod live;
pub mod openmetrics;
pub mod registry;
pub mod snapshot;

/// Span tracing and tail-latency attribution (re-export of
/// `gadget-trace`, so downstream crates need no extra dependency).
pub use gadget_trace as trace;

pub use emitter::{MetricsSeries, SnapshotEmitter, SnapshotPoint};
pub use hist::{bucket_bounds, AtomicHistogram, LogHistogram};
pub use live::{flatten_registries, SharedSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry, Timer};
pub use snapshot::MetricsSnapshot;

/// Flattens a tail-latency [`trace::AttributionReport`] into a
/// [`MetricsSnapshot`] so it can ride along in a metrics JSON series.
///
/// Counters: `tail_ops`, `total_ops`, `p99_ns`, `unattributed_tail`,
/// and one `tail_overlap_<category>` per background category seen.
/// Gauges: `tail_overlap_<category>_ppm`, the overlap fraction in
/// parts per million (snapshots carry integers, not floats).
pub fn attribution_snapshot(report: &trace::AttributionReport) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    snap.push_counter("total_ops", report.total_ops as u64);
    snap.push_counter("tail_ops", report.tail_ops as u64);
    snap.push_counter("p99_ns", report.p99_ns);
    snap.push_counter("unattributed_tail", report.unattributed as u64);
    for share in &report.shares {
        snap.push_counter(
            &format!("tail_overlap_{}", share.category.name()),
            share.overlapping as u64,
        );
        snap.push_gauge(
            &format!("tail_overlap_{}_ppm", share.category.name()),
            (share.fraction * 1_000_000.0).round() as i64,
        );
    }
    snap.sort();
    snap
}

/// Trace ring-buffer pressure as a [`MetricsSnapshot`], suitable for
/// merging into a server's scrape output: the rings silently overwrite
/// the oldest spans when a session outruns their capacity, and without
/// these counters that loss is invisible.
///
/// Counters: `trace_spans_recorded` / `trace_spans_dropped` aggregate
/// over every registered thread, plus one
/// `trace_spans_dropped_t<tid>_<thread name>` per thread that has
/// actually lost spans (bounded cardinality: threads with zero drops
/// are omitted).
pub fn trace_pressure_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    let stats = trace::ring_stats();
    snap.push_counter(
        "trace_spans_recorded",
        stats.iter().map(|s| s.recorded).sum(),
    );
    snap.push_counter("trace_spans_dropped", stats.iter().map(|s| s.dropped).sum());
    for s in &stats {
        if s.dropped > 0 {
            let name: String = s
                .thread_name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            snap.push_counter(
                &format!("trace_spans_dropped_t{}_{}", s.tid, name),
                s.dropped,
            );
        }
    }
    snap.sort();
    snap
}
