//! # gadget-obs — metrics and observability for the gadget harness
//!
//! A dependency-light metrics subsystem shared by the state stores, the
//! streaming driver, and the trace replayer. The design splits cleanly
//! into live instruments and dead data:
//!
//! * **Instruments** ([`Counter`], [`Gauge`], [`Timer`]) are
//!   `Arc`-wrapped atomics owned by a [`MetricsRegistry`]. Updating one
//!   is a single relaxed atomic operation — no locks on any hot path.
//!   [`Timer`] additionally supports power-of-two sampling so that
//!   clock reads stay off sub-microsecond operations.
//! * **Snapshots** ([`MetricsSnapshot`]) are plain values copied out of
//!   a registry (or assembled by hand). They merge, compare, and
//!   round-trip through JSON, which makes them the right currency for
//!   the `StateStore::metrics` hook: a store reports a snapshot of
//!   its internals without exposing live handles that could go stale
//!   across flushes or restarts.
//! * **Time series** ([`SnapshotEmitter`]) turns periodic snapshots
//!   into a [`MetricsSeries`] keyed by operation count, written as one
//!   JSON document per run — the raw material for "metric X versus
//!   ingested operations" plots.
//!
//! Latency distributions use [`LogHistogram`], a log-bucketed
//! (HDR-style) histogram with ~3% relative error and a fixed 2048-slot
//! footprint; [`AtomicHistogram`] is its concurrent twin.
//!
//! `StateStore::metrics` lives in `gadget-kv`; this crate deliberately
//! depends only on the serde shims so every layer of the workspace can
//! use it.

pub mod emitter;
pub mod hist;
pub mod registry;
pub mod snapshot;

pub use emitter::{MetricsSeries, SnapshotEmitter, SnapshotPoint};
pub use hist::{bucket_bounds, AtomicHistogram, LogHistogram};
pub use registry::{Counter, Gauge, MetricsRegistry, Timer};
pub use snapshot::MetricsSnapshot;
