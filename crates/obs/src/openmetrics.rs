//! Prometheus / OpenMetrics text exposition of a [`MetricsSnapshot`].
//!
//! Renders the text format version 0.0.4 that every Prometheus-family
//! scraper understands: `# TYPE` headers, one sample per line, and
//! histograms as cumulative `le`-labelled bucket series plus `_sum` and
//! `_count`. The renderer works from plain [`MetricsSnapshot`] values,
//! so anything that can produce a snapshot — a live registry, a store's
//! `metrics()` hook, a merged multi-connection aggregate — can be
//! scraped without holding instrument handles.
//!
//! Conventions:
//!
//! * every series is prefixed `gadget_` so scrapes from mixed fleets
//!   don't collide with other exporters;
//! * names are sanitized to the metric charset `[a-zA-Z0-9_:]`
//!   (anything else becomes `_`);
//! * counters map to `counter`, gauges to `gauge`, and
//!   [`LogHistogram`]s to `histogram`, with bucket upper bounds taken
//!   from the log-bucket layout (the `le` of an occupied bucket is its
//!   exclusive ceiling, which is the tightest bound the recording
//!   resolution supports).

use crate::hist::bucket_bounds;
use crate::snapshot::MetricsSnapshot;

/// Sanitizes `name` into the Prometheus metric-name charset and adds
/// the `gadget_` prefix.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("gadget_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders `snap` as Prometheus text exposition format 0.0.4.
///
/// The output is deterministic for a given snapshot (sections are
/// already name-sorted), ends with the `# EOF` terminator the
/// OpenMetrics spec requires (strict parsers treat a scrape without it
/// as truncated) followed by a trailing newline, and is directly
/// servable as the body of a `/metrics` response with content type
/// `text/plain; version=0.0.4`.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = metric_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let name = metric_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, hist) in &snap.histograms {
        let name = metric_name(name);
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (floor, count) in hist.buckets() {
            cumulative += count;
            let le = bucket_bounds(floor).1;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        let sum = hist.mean() * hist.count() as f64;
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {}\n", hist.count()));
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    #[test]
    fn counters_and_gauges_render_with_type_headers() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("wal_fsyncs", 12);
        snap.push_gauge("memtable_bytes", -7);
        let text = render(&snap);
        assert!(text.contains("# TYPE gadget_wal_fsyncs counter\n"));
        assert!(text.contains("gadget_wal_fsyncs 12\n"));
        assert!(text.contains("# TYPE gadget_memtable_bytes gauge\n"));
        assert!(text.contains("gadget_memtable_bytes -7\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn exposition_terminates_with_eof_marker() {
        // The OpenMetrics spec requires `# EOF` as the last line; a
        // strict parser rejects a scrape without it as truncated.
        let empty = render(&MetricsSnapshot::new());
        assert_eq!(empty, "# EOF\n");
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("reqs", 1);
        snap.push_gauge("depth", 2);
        let text = render(&snap);
        assert!(text.ends_with("# EOF\n"), "got:\n{text}");
        assert_eq!(
            text.matches("# EOF").count(),
            1,
            "exactly one terminator: {text}"
        );
    }

    #[test]
    fn names_are_sanitized_and_prefixed() {
        let mut snap = MetricsSnapshot::new();
        snap.push_counter("lsm.l0-files", 3);
        let text = render(&snap);
        assert!(text.contains("gadget_lsm_l0_files 3\n"), "got:\n{text}");
    }

    #[test]
    fn histograms_render_cumulative_buckets_sum_and_count() {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(10);
        h.record(5_000);
        let mut snap = MetricsSnapshot::new();
        snap.histograms.push(("get_ns".to_string(), h));
        let text = render(&snap);
        assert!(text.contains("# TYPE gadget_get_ns histogram\n"));
        // Small values land in exact buckets: le for value 10 is 11.
        assert!(
            text.contains("gadget_get_ns_bucket{le=\"11\"} 2\n"),
            "got:\n{text}"
        );
        // The +Inf bucket carries the total, cumulatively.
        assert!(text.contains("gadget_get_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("gadget_get_ns_count 3\n"));
        // Sum is approximate (bucketed) but must be present and positive.
        let sum_line = text
            .lines()
            .find(|l| l.starts_with("gadget_get_ns_sum "))
            .expect("sum line");
        let sum: f64 = sum_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(sum > 0.0);
    }

    #[test]
    fn bucket_counts_are_monotonic() {
        let mut h = LogHistogram::new();
        for i in 0..1_000u64 {
            h.record(i * 37 + 1);
        }
        let mut snap = MetricsSnapshot::new();
        snap.histograms.push(("ns".to_string(), h));
        let text = render(&snap);
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("gadget_ns_bucket{le=\"") {
                let count: u64 = rest.split("} ").nth(1).unwrap().parse().unwrap();
                assert!(count >= last, "cumulative counts must not decrease");
                last = count;
            }
        }
        assert_eq!(last, 1_000);
    }
}
