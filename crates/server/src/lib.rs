//! # gadget-server — network client/server mode for the gadget harness
//!
//! Everything else in the workspace benchmarks *embedded* state stores:
//! the store lives in the benchmark process and an operation is a
//! function call. This crate adds the other deployment shape the
//! paper's §8 sketches — an *external* state service — as a real
//! network subsystem rather than a simulation (for the simulated
//! variant, see `gadget_kv::RemoteStore`):
//!
//! * [`wire`] — the length-prefixed, versioned binary protocol. Strict
//!   decoding with typed errors; a malformed peer can't panic a server.
//! * [`Server`] — a TCP front-end over any
//!   [`StateStore`](gadget_kv::StateStore): thread-per-connection with
//!   bounded per-connection request queues (backpressure degrades to
//!   TCP flow control), graceful drain on shutdown, per-connection
//!   metrics, and an optional Prometheus scrape endpoint
//!   ([`MetricsServer`]).
//! * [`NetStore`] — the client side, itself a
//!   [`StateStore`](gadget_kv::StateStore): every existing consumer
//!   (replayer, driver, CLI) can point at a server unmodified.
//! * [`drive`] — massive connection fan-in: partitions a trace across N
//!   concurrent connections (key-hash affine, preserving per-key
//!   order), with deterministic session churn and exactly-merged
//!   per-connection latency histograms.
//!
//! The crate stays std-only on purpose — sockets, threads, and bounded
//! channels from the standard library are enough for tens of thousands
//! of connections on loopback, and there is nothing to vendor or shim.

pub mod client;
pub mod driver;
pub mod metrics_http;
pub mod server;
pub mod wire;

pub use client::{Decomposition, NetStore, RemoteCheckpoint, Topology, SEGMENT_NAMES};
pub use driver::{drive, DriveOptions, DriveSummary, ReshardTrigger};
pub use metrics_http::{MetricsServer, SnapshotFn};
pub use server::{Server, ServerConfig};
pub use wire::{Frame, WireError};
