//! The gadget wire protocol: length-prefixed, versioned binary frames.
//!
//! Every message on a gadget-server connection is one frame:
//!
//! ```text
//! +--------+---------+------+------------+-------------+----------+
//! | magic  | version | kind | request id | payload len | payload  |
//! | u16 LE |   u8    |  u8  |   u64 LE   |   u32 LE    | N bytes  |
//! +--------+---------+------+------------+-------------+----------+
//! ```
//!
//! The 16-byte header is fixed; the payload layout depends on `kind`:
//!
//! * **Request** — `u32` op count, then each op as a tag byte
//!   (0=get, 1=put, 2=merge, 3=delete), `u32` key length, key bytes,
//!   and for put/merge a `u32` payload length plus payload bytes.
//! * **Response** — `u32` result count, then each result as a tag byte:
//!   0=applied, 1=value-absent, 2=value-present followed by `u32`
//!   length and the value bytes. Results are positional: entry `i`
//!   answers op `i` of the request with the same id.
//! * **Error** — error code byte (see [`ErrorCode`]), `u32` message
//!   length, UTF-8 message bytes. An error answers the *whole* request:
//!   batches are transactional at the wire level, matching
//!   `StateStore::apply_batch`'s all-or-error contract.
//! * **Shutdown** — empty payload. Sent by a client to ask the server
//!   to drain and exit; the server acks with a `Shutdown` frame
//!   carrying the same id before closing.
//! * **Reshard** (v2) — control frame: `u32` source shard, `u32` target
//!   shard, `u64` op index of the trigger. Asks the server to live-split
//!   (`to == shard count`) or live-migrate half the source's slots. The
//!   server answers with a `ReshardDone` carrying the completed
//!   [`ReshardEvent`], or an `Error` frame.
//! * **ReshardDone** (v2) — one encoded [`ReshardEvent`]: `u64` at_op,
//!   `u32` from, `u32` to, `u32` slots, `u64` keys, `u64` pause µs,
//!   `u64` copy µs, `u64` map version.
//! * **Topology** (v2) — empty payload: ask the server for its current
//!   partition topology.
//! * **TopologyInfo** (v2) — `u32` shard count, `u64` partition-map
//!   version, `u64` partition-map digest, `u32` reshard-event count,
//!   then each event encoded as in `ReshardDone`. Drivers stamp this
//!   into run reports so topology provenance survives the wire.
//! * **Checkpoint** (v2) — control frame: `u32` path length plus UTF-8
//!   path bytes. Asks the server to checkpoint its served store into
//!   that *server-local* directory. Answered by a `CheckpointDone` or
//!   an `Error` frame.
//! * **CheckpointDone** (v2) — `u64` file count, `u64` total bytes,
//!   `u64` reused (incrementally skipped) files.
//! * **Restore** (v2) — same payload as `Checkpoint`: restore the
//!   served store from that server-local checkpoint directory.
//!   Answered by a `RestoreDone` or an `Error` frame.
//! * **RestoreDone** (v2) — empty payload.
//!
//! Integers are little-endian throughout. Decoding is strict: wrong
//! magic, unknown version/kind/tag, oversized payloads, short buffers,
//! and trailing bytes are all *typed* [`WireError`]s — a malformed or
//! hostile peer can never panic the process, only produce an error.
//! Version 2 added the reshard/topology control frames without touching
//! any v1 payload layout, so decoders accept both versions; encoders
//! always stamp the current one.
//!
//! Version 3 adds an *optional* trace-context extension to the two hot
//! frames, enabling cross-process tracing (see `gadget-trace`):
//!
//! * **Request** (v3) — after the ops, 16 extra bytes: `u64` trace
//!   sequence + `u64` client send timestamp (monotonic ns on the
//!   client's clock).
//! * **Response** (v3) — after the results, 48 extra bytes echoing the
//!   request's sequence and send timestamp plus the server-side
//!   request timeline: `u64` receive, `u64` dequeue, `u64` apply
//!   duration, `u64` reply-send — all monotonic ns on the *server's*
//!   clock, which is exactly what NTP-style offset estimation needs.
//!
//! The extension is present only when the frame is stamped v3 **and**
//! the payload carries it; encoders stamp v3 only for frames that do
//! ([`VERSION_UNTRACED`] otherwise), so with tracing off the bytes on
//! the wire are identical to a v2 build's and v1/v2 peers interoperate
//! unchanged.

use std::io::{self, Read, Write};

use bytes::Bytes;
use gadget_kv::{BatchResult, ReshardEvent, StoreError};
use gadget_types::Op;

/// Frame magic: `"SG"` little-endian. Catches cross-protocol traffic
/// (HTTP, TLS, stray redis-cli) before any length field is trusted.
pub const MAGIC: u16 = 0x4753;

/// Current protocol version. Bump on any layout change.
///
/// v1 → v2 added the reshard/topology control frames; v2 → v3 added
/// the optional request/response trace-context extension. Every older
/// payload layout is unchanged, so decoders accept all three (see
/// [`version_supported`]). Encoders stamp this value only on frames
/// that actually carry a trace extension; everything else is stamped
/// [`VERSION_UNTRACED`] so untraced traffic is byte-for-byte what a v2
/// build would emit.
pub const VERSION: u8 = 3;

/// What encoders stamp on frames without a trace extension — the
/// highest version whose layout they use.
pub const VERSION_UNTRACED: u8 = 2;

/// Whether a frame from protocol version `v` can be decoded by this
/// build.
pub fn version_supported(v: u8) -> bool {
    (1..=VERSION).contains(&v)
}

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a frame payload (32 MiB). A length prefix above this
/// is rejected before allocation, so a corrupt or malicious length
/// field cannot OOM the server.
pub const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;

/// Frame kind discriminants on the wire.
const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_SHUTDOWN: u8 = 4;
const KIND_RESHARD: u8 = 5;
const KIND_RESHARD_DONE: u8 = 6;
const KIND_TOPOLOGY: u8 = 7;
const KIND_TOPOLOGY_INFO: u8 = 8;
const KIND_CHECKPOINT: u8 = 9;
const KIND_CHECKPOINT_DONE: u8 = 10;
const KIND_RESTORE: u8 = 11;
const KIND_RESTORE_DONE: u8 = 12;

/// Store-error category carried in an Error frame.
///
/// Mirrors [`StoreError`]'s variants so the client can resurface a
/// server-side failure as the same typed error the embedded store
/// would have returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// `StoreError::Io`.
    Io = 0,
    /// `StoreError::Corruption`.
    Corruption = 1,
    /// `StoreError::Closed`.
    Closed = 2,
    /// `StoreError::InvalidArgument`.
    InvalidArgument = 3,
    /// `StoreError::Unsupported`.
    Unsupported = 4,
    /// `StoreError::Config`.
    Config = 5,
}

impl ErrorCode {
    fn from_wire(raw: u8) -> Result<Self, WireError> {
        match raw {
            0 => Ok(ErrorCode::Io),
            1 => Ok(ErrorCode::Corruption),
            2 => Ok(ErrorCode::Closed),
            3 => Ok(ErrorCode::InvalidArgument),
            4 => Ok(ErrorCode::Unsupported),
            5 => Ok(ErrorCode::Config),
            other => Err(WireError::BadTag(other)),
        }
    }
}

/// Splits a [`StoreError`] into its wire form.
pub fn encode_store_error(e: &StoreError) -> (ErrorCode, String) {
    match e {
        StoreError::Io(e) => (ErrorCode::Io, e.to_string()),
        // The path context folds into the message; the client gets the
        // category plus a human-readable "op path: cause" detail.
        StoreError::PathIo { .. } => (ErrorCode::Io, e.to_string()),
        StoreError::Corruption(m) => (ErrorCode::Corruption, m.clone()),
        StoreError::Closed => (ErrorCode::Closed, String::new()),
        StoreError::InvalidArgument(m) => (ErrorCode::InvalidArgument, m.clone()),
        StoreError::Unsupported(m) => (ErrorCode::Unsupported, m.to_string()),
        StoreError::Config(m) => (ErrorCode::Config, m.clone()),
    }
}

/// Rebuilds a [`StoreError`] from its wire form.
///
/// Lossless except for `Unsupported`, whose embedded message type
/// (`&'static str`) cannot carry a runtime string; the wire message is
/// folded into a fixed text there.
pub fn decode_store_error(code: ErrorCode, message: String) -> StoreError {
    match code {
        ErrorCode::Io => StoreError::Io(io::Error::other(message)),
        ErrorCode::Corruption => StoreError::Corruption(message),
        ErrorCode::Closed => StoreError::Closed,
        ErrorCode::InvalidArgument => StoreError::InvalidArgument(message),
        ErrorCode::Unsupported => {
            StoreError::Unsupported("operation not supported by remote store")
        }
        ErrorCode::Config => StoreError::Config(message),
    }
}

/// The v3 request trace extension: how a client marks a request for
/// cross-process tracing. 16 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-assigned trace sequence, unique across the client
    /// process — the join key between client and server trace files.
    pub seq: u64,
    /// Monotonic ns (client clock) when the frame was stamped for the
    /// wire; echoed back so the client need not remember it.
    pub send_ns: u64,
}

/// The v3 response trace extension: the server's per-request timeline,
/// echoed alongside the request's context. 48 bytes on the wire.
///
/// All server timestamps are monotonic ns on the *server's* clock —
/// the client combines them with its own send/receive instants for the
/// NTP-style offset estimate (`gadget_trace::clock`) and the latency
/// decomposition (client queue / outbound / service / return).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyTrace {
    /// Echoed request trace sequence.
    pub seq: u64,
    /// Echoed client send timestamp (client clock).
    pub client_send_ns: u64,
    /// Server: request frame decoded off the socket.
    pub recv_ns: u64,
    /// Server: request dequeued by the connection worker (= store
    /// apply start).
    pub dequeue_ns: u64,
    /// Server: how long `apply_batch` ran, in ns.
    pub apply_dur_ns: u64,
    /// Server: reply frame stamped for the wire.
    pub send_ns: u64,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → server: apply this op batch.
    Request {
        /// Client-chosen id echoed in the reply.
        id: u64,
        /// Operations to apply, in order.
        ops: Vec<Op>,
        /// v3 trace extension; `None` on untraced requests (the frame
        /// is then stamped and laid out exactly as v2).
        trace: Option<TraceContext>,
    },
    /// Server → client: per-op results for the request with this id.
    Response {
        /// Echoed request id.
        id: u64,
        /// One result per op, positionally.
        results: Vec<BatchResult>,
        /// v3 trace extension; `None` unless the request carried one.
        trace: Option<ReplyTrace>,
    },
    /// Server → client: the whole batch failed.
    Error {
        /// Echoed request id.
        id: u64,
        /// Error category.
        code: ErrorCode,
        /// Human-readable detail (may be empty).
        message: String,
    },
    /// Drain-and-exit handshake (client request and server ack).
    Shutdown {
        /// Request id (echoed in the ack).
        id: u64,
    },
    /// Client → server: live-reshard the served store (v2).
    Reshard {
        /// Request id (echoed in the `ReshardDone` or `Error` reply).
        id: u64,
        /// Source shard to take slots from.
        from: u32,
        /// Target shard; equal to the current shard count to split a
        /// brand-new shard into existence.
        to: u32,
        /// Driver-side op index at the moment of the trigger (0 when
        /// the trigger has no op counter in scope).
        at_op: u64,
    },
    /// Server → client: a reshard completed (v2).
    ReshardDone {
        /// Echoed request id.
        id: u64,
        /// What the migration moved and what it cost.
        event: ReshardEvent,
    },
    /// Client → server: describe your partition topology (v2).
    Topology {
        /// Request id (echoed in the `TopologyInfo` reply).
        id: u64,
    },
    /// Server → client: current partition topology (v2).
    TopologyInfo {
        /// Echoed request id.
        id: u64,
        /// Number of shards the served store routes across (1 for an
        /// unsharded store).
        shards: u32,
        /// Partition-map version (router epoch).
        map_version: u64,
        /// Partition-map content digest (see `Router::digest`).
        digest: u64,
        /// Completed reshard events, oldest first.
        events: Vec<ReshardEvent>,
    },
    /// Client → server: checkpoint the served store (v2).
    Checkpoint {
        /// Request id (echoed in the `CheckpointDone` or `Error` reply).
        id: u64,
        /// Server-local directory to write the checkpoint into.
        dir: String,
    },
    /// Server → client: a checkpoint completed (v2).
    CheckpointDone {
        /// Echoed request id.
        id: u64,
        /// Number of files the manifest records.
        files: u64,
        /// Total checkpoint payload in bytes.
        total_bytes: u64,
        /// Files an incremental cut reused from the previous checkpoint.
        reused: u64,
    },
    /// Client → server: restore the served store (v2).
    Restore {
        /// Request id (echoed in the `RestoreDone` or `Error` reply).
        id: u64,
        /// Server-local checkpoint directory to restore from.
        dir: String,
    },
    /// Server → client: a restore completed (v2).
    RestoreDone {
        /// Echoed request id.
        id: u64,
    },
}

/// Typed decode/transport failures. Never panics, never allocates
/// unboundedly — every arm is produced *before* trusting wire data.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame (or a length field promised more
    /// bytes than were present).
    Truncated,
    /// First two bytes were not [`MAGIC`].
    BadMagic(u16),
    /// Frame from an unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Unknown op/result/error tag byte inside a payload.
    BadTag(u8),
    /// Payload length field exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Payload decoded cleanly but left this many unread bytes.
    Trailing(usize),
    /// Underlying socket/file error.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadTag(t) => write!(f, "unknown payload tag {t}"),
            WireError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => StoreError::Io(e),
            other => StoreError::Corruption(format!("wire protocol: {other}")),
        }
    }
}

// ---- encoding ----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_reshard_event(out: &mut Vec<u8>, e: &ReshardEvent) {
    put_u64(out, e.at_op);
    put_u32(out, e.from as u32);
    put_u32(out, e.to as u32);
    put_u32(out, e.slots as u32);
    put_u64(out, e.keys);
    put_u64(out, e.pause_us);
    put_u64(out, e.copy_us);
    put_u64(out, e.map_version);
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        Frame::Request { ops, trace, .. } => {
            put_u32(&mut p, ops.len() as u32);
            for op in ops {
                match op {
                    Op::Get { key } => {
                        p.push(0);
                        put_bytes(&mut p, key);
                    }
                    Op::Put { key, value } => {
                        p.push(1);
                        put_bytes(&mut p, key);
                        put_bytes(&mut p, value);
                    }
                    Op::Merge { key, operand } => {
                        p.push(2);
                        put_bytes(&mut p, key);
                        put_bytes(&mut p, operand);
                    }
                    Op::Delete { key } => {
                        p.push(3);
                        put_bytes(&mut p, key);
                    }
                }
            }
            if let Some(t) = trace {
                put_u64(&mut p, t.seq);
                put_u64(&mut p, t.send_ns);
            }
        }
        Frame::Response { results, trace, .. } => {
            put_u32(&mut p, results.len() as u32);
            for r in results {
                match r {
                    BatchResult::Applied => p.push(0),
                    BatchResult::Value(None) => p.push(1),
                    BatchResult::Value(Some(v)) => {
                        p.push(2);
                        put_bytes(&mut p, v);
                    }
                }
            }
            if let Some(t) = trace {
                put_u64(&mut p, t.seq);
                put_u64(&mut p, t.client_send_ns);
                put_u64(&mut p, t.recv_ns);
                put_u64(&mut p, t.dequeue_ns);
                put_u64(&mut p, t.apply_dur_ns);
                put_u64(&mut p, t.send_ns);
            }
        }
        Frame::Error { code, message, .. } => {
            p.push(*code as u8);
            put_bytes(&mut p, message.as_bytes());
        }
        Frame::Shutdown { .. } => {}
        Frame::Reshard {
            from, to, at_op, ..
        } => {
            put_u32(&mut p, *from);
            put_u32(&mut p, *to);
            put_u64(&mut p, *at_op);
        }
        Frame::ReshardDone { event, .. } => put_reshard_event(&mut p, event),
        Frame::Topology { .. } => {}
        Frame::TopologyInfo {
            shards,
            map_version,
            digest,
            events,
            ..
        } => {
            put_u32(&mut p, *shards);
            put_u64(&mut p, *map_version);
            put_u64(&mut p, *digest);
            put_u32(&mut p, events.len() as u32);
            for event in events {
                put_reshard_event(&mut p, event);
            }
        }
        Frame::Checkpoint { dir, .. } | Frame::Restore { dir, .. } => {
            put_bytes(&mut p, dir.as_bytes());
        }
        Frame::CheckpointDone {
            files,
            total_bytes,
            reused,
            ..
        } => {
            put_u64(&mut p, *files);
            put_u64(&mut p, *total_bytes);
            put_u64(&mut p, *reused);
        }
        Frame::RestoreDone { .. } => {}
    }
    p
}

impl Frame {
    /// The id carried in the header, for any kind.
    pub fn id(&self) -> u64 {
        match self {
            Frame::Request { id, .. }
            | Frame::Response { id, .. }
            | Frame::Error { id, .. }
            | Frame::Shutdown { id }
            | Frame::Reshard { id, .. }
            | Frame::ReshardDone { id, .. }
            | Frame::Topology { id }
            | Frame::TopologyInfo { id, .. }
            | Frame::Checkpoint { id, .. }
            | Frame::CheckpointDone { id, .. }
            | Frame::Restore { id, .. }
            | Frame::RestoreDone { id } => *id,
        }
    }

    /// The version byte this frame's canonical encoding carries: v3
    /// only when a trace extension is present, [`VERSION_UNTRACED`]
    /// otherwise — so a tracing-capable build emits byte-for-byte v2
    /// traffic until tracing is switched on.
    pub fn wire_version(&self) -> u8 {
        match self {
            Frame::Request { trace: Some(_), .. } | Frame::Response { trace: Some(_), .. } => {
                VERSION
            }
            _ => VERSION_UNTRACED,
        }
    }

    /// Canonical byte encoding: header plus payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = encode_payload(self);
        let kind = match self {
            Frame::Request { .. } => KIND_REQUEST,
            Frame::Response { .. } => KIND_RESPONSE,
            Frame::Error { .. } => KIND_ERROR,
            Frame::Shutdown { .. } => KIND_SHUTDOWN,
            Frame::Reshard { .. } => KIND_RESHARD,
            Frame::ReshardDone { .. } => KIND_RESHARD_DONE,
            Frame::Topology { .. } => KIND_TOPOLOGY,
            Frame::TopologyInfo { .. } => KIND_TOPOLOGY_INFO,
            Frame::Checkpoint { .. } => KIND_CHECKPOINT,
            Frame::CheckpointDone { .. } => KIND_CHECKPOINT_DONE,
            Frame::Restore { .. } => KIND_RESTORE,
            Frame::RestoreDone { .. } => KIND_RESTORE_DONE,
        };
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.push(self.wire_version());
        out.push(kind);
        out.extend_from_slice(&self.id().to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Exact on-wire size of this frame's canonical encoding.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + encode_payload(self).len()
    }
}

// ---- decoding ----------------------------------------------------------

/// Byte-slice cursor used by the payload decoders.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.pos.checked_add(4).ok_or(WireError::Truncated)?;
        let raw = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(raw.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        let raw = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    fn reshard_event(&mut self) -> Result<ReshardEvent, WireError> {
        Ok(ReshardEvent {
            at_op: self.u64()?,
            from: self.u32()? as usize,
            to: self.u32()? as usize,
            slots: self.u32()? as usize,
            keys: self.u64()?,
            pause_us: self.u64()?,
            copy_us: self.u64()?,
            map_version: self.u64()?,
        })
    }

    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len).ok_or(WireError::Truncated)?;
        let raw = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        self.pos = end;
        Ok(raw)
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Size of the encoded request trace extension (v3).
pub const REQUEST_TRACE_LEN: usize = 16;
/// Size of the encoded response trace extension (v3).
pub const REPLY_TRACE_LEN: usize = 48;

fn decode_payload(version: u8, kind: u8, id: u64, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor::new(payload);
    let frame = match kind {
        KIND_REQUEST => {
            let count = c.u32()? as usize;
            // An op is at least 5 bytes (tag + empty-key length), so a
            // count beyond payload/5 is provably a lie — reject before
            // reserving capacity for it.
            if count > payload.len() / 5 + 1 {
                return Err(WireError::Truncated);
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                let tag = c.u8()?;
                let key = Bytes::copy_from_slice(c.bytes()?);
                ops.push(match tag {
                    0 => Op::Get { key },
                    1 => Op::Put {
                        key,
                        value: Bytes::copy_from_slice(c.bytes()?),
                    },
                    2 => Op::Merge {
                        key,
                        operand: Bytes::copy_from_slice(c.bytes()?),
                    },
                    3 => Op::Delete { key },
                    other => return Err(WireError::BadTag(other)),
                });
            }
            // The trace extension exists only in v3 frames, and even
            // there it is optional: exactly-absent and exactly-present
            // both decode, anything in between is trailing garbage.
            let trace = if version >= 3 && c.remaining() == REQUEST_TRACE_LEN {
                Some(TraceContext {
                    seq: c.u64()?,
                    send_ns: c.u64()?,
                })
            } else {
                None
            };
            Frame::Request { id, ops, trace }
        }
        KIND_RESPONSE => {
            let count = c.u32()? as usize;
            if count > payload.len() + 1 {
                return Err(WireError::Truncated);
            }
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                results.push(match c.u8()? {
                    0 => BatchResult::Applied,
                    1 => BatchResult::Value(None),
                    2 => BatchResult::Value(Some(Bytes::copy_from_slice(c.bytes()?))),
                    other => return Err(WireError::BadTag(other)),
                });
            }
            let trace = if version >= 3 && c.remaining() == REPLY_TRACE_LEN {
                Some(ReplyTrace {
                    seq: c.u64()?,
                    client_send_ns: c.u64()?,
                    recv_ns: c.u64()?,
                    dequeue_ns: c.u64()?,
                    apply_dur_ns: c.u64()?,
                    send_ns: c.u64()?,
                })
            } else {
                None
            };
            Frame::Response { id, results, trace }
        }
        KIND_ERROR => {
            let code = ErrorCode::from_wire(c.u8()?)?;
            let message = String::from_utf8_lossy(c.bytes()?).into_owned();
            Frame::Error { id, code, message }
        }
        KIND_SHUTDOWN => Frame::Shutdown { id },
        KIND_RESHARD => Frame::Reshard {
            id,
            from: c.u32()?,
            to: c.u32()?,
            at_op: c.u64()?,
        },
        KIND_RESHARD_DONE => Frame::ReshardDone {
            id,
            event: c.reshard_event()?,
        },
        KIND_TOPOLOGY => Frame::Topology { id },
        KIND_TOPOLOGY_INFO => {
            let shards = c.u32()?;
            let map_version = c.u64()?;
            let digest = c.u64()?;
            let count = c.u32()? as usize;
            // An encoded event is 44 bytes; reject impossible counts
            // before reserving capacity for them.
            if count > payload.len() / 44 + 1 {
                return Err(WireError::Truncated);
            }
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(c.reshard_event()?);
            }
            Frame::TopologyInfo {
                id,
                shards,
                map_version,
                digest,
                events,
            }
        }
        KIND_CHECKPOINT => Frame::Checkpoint {
            id,
            dir: String::from_utf8_lossy(c.bytes()?).into_owned(),
        },
        KIND_CHECKPOINT_DONE => Frame::CheckpointDone {
            id,
            files: c.u64()?,
            total_bytes: c.u64()?,
            reused: c.u64()?,
        },
        KIND_RESTORE => Frame::Restore {
            id,
            dir: String::from_utf8_lossy(c.bytes()?).into_owned(),
        },
        KIND_RESTORE_DONE => Frame::RestoreDone { id },
        other => return Err(WireError::BadKind(other)),
    };
    if c.remaining() != 0 {
        return Err(WireError::Trailing(c.remaining()));
    }
    Ok(frame)
}

/// Decodes one frame from a complete byte buffer.
///
/// The buffer must contain exactly one frame; leftover bytes after the
/// declared payload are a [`WireError::Trailing`] error. This is the
/// strict-parsing entry the proptests hammer; [`read_frame`] is the
/// streaming equivalent.
pub fn decode(buf: &[u8]) -> Result<Frame, WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic = u16::from_le_bytes([buf[0], buf[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if !version_supported(buf[2]) {
        return Err(WireError::BadVersion(buf[2]));
    }
    let kind = buf[3];
    let id = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    let len = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let body = &buf[HEADER_LEN..];
    match body.len().cmp(&(len as usize)) {
        std::cmp::Ordering::Less => Err(WireError::Truncated),
        std::cmp::Ordering::Greater => Err(WireError::Trailing(body.len() - len as usize)),
        std::cmp::Ordering::Equal => decode_payload(buf[2], kind, id, body),
    }
}

/// Reads one frame from a stream.
///
/// A clean EOF *before the first header byte* maps to
/// [`WireError::Truncated`] too — callers treat it as connection end.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if !version_supported(header[2]) {
        return Err(WireError::BadVersion(header[2]));
    }
    let kind = header[3];
    let id = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let len = u32::from_le_bytes(header[12..16].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode_payload(header[2], kind, id, &payload)
}

/// Writes a frame's canonical encoding to a stream (no flush).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Request {
                id: 7,
                ops: vec![
                    Op::get(b"k1".to_vec()),
                    Op::put(b"k2".to_vec(), b"v".to_vec()),
                    Op::merge(b"k3".to_vec(), vec![0u8; 100]),
                    Op::delete(b"".to_vec()),
                ],
                trace: None,
            },
            Frame::Response {
                id: 7,
                results: vec![
                    BatchResult::Value(None),
                    BatchResult::Applied,
                    BatchResult::Value(Some(Bytes::copy_from_slice(b"abc"))),
                ],
                trace: None,
            },
            Frame::Error {
                id: 9,
                code: ErrorCode::InvalidArgument,
                message: "empty key".to_string(),
            },
            Frame::Shutdown { id: u64::MAX },
            Frame::Reshard {
                id: 11,
                from: 0,
                to: 4,
                at_op: 5_000,
            },
            Frame::ReshardDone {
                id: 11,
                event: sample_event(),
            },
            Frame::Topology { id: 12 },
            Frame::TopologyInfo {
                id: 12,
                shards: 5,
                map_version: 2,
                digest: 0xDEAD_BEEF_CAFE_F00D,
                events: vec![sample_event()],
            },
            Frame::TopologyInfo {
                id: 13,
                shards: 1,
                map_version: 1,
                digest: 7,
                events: Vec::new(),
            },
            Frame::Checkpoint {
                id: 14,
                dir: "/tmp/ckpt-1".to_string(),
            },
            Frame::CheckpointDone {
                id: 14,
                files: 9,
                total_bytes: 123_456,
                reused: 4,
            },
            Frame::Restore {
                id: 15,
                dir: "/tmp/ckpt-1".to_string(),
            },
            Frame::RestoreDone { id: 15 },
            Frame::Request {
                id: 16,
                ops: vec![Op::get(b"traced".to_vec())],
                trace: Some(TraceContext {
                    seq: 42,
                    send_ns: 1_000_000,
                }),
            },
            Frame::Response {
                id: 16,
                results: vec![BatchResult::Value(None)],
                trace: Some(ReplyTrace {
                    seq: 42,
                    client_send_ns: 1_000_000,
                    recv_ns: 2_000_000,
                    dequeue_ns: 2_100_000,
                    apply_dur_ns: 30_000,
                    send_ns: 2_140_000,
                }),
            },
        ]
    }

    fn sample_event() -> ReshardEvent {
        ReshardEvent {
            at_op: 5_000,
            from: 0,
            to: 4,
            slots: 315,
            keys: 12_345,
            pause_us: 180,
            copy_us: 22_000,
            map_version: 2,
        }
    }

    #[test]
    fn frames_round_trip_byte_identically() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            assert_eq!(bytes.len(), frame.encoded_len());
            let decoded = decode(&bytes).expect("own encoding decodes");
            assert_eq!(decoded, frame);
            assert_eq!(decoded.encode(), bytes, "re-encoding is byte-identical");
        }
    }

    #[test]
    fn streaming_read_matches_buffer_decode() {
        let mut stream = Vec::new();
        for frame in sample_frames() {
            stream.extend_from_slice(&frame.encode());
        }
        let mut r = io::Cursor::new(stream);
        for expected in sample_frames() {
            assert_eq!(read_frame(&mut r).unwrap(), expected);
        }
        assert!(matches!(read_frame(&mut r), Err(WireError::Truncated)));
    }

    #[test]
    fn malformed_frames_produce_typed_errors() {
        let good = sample_frames().remove(0).encode();

        let mut bad_magic = good.clone();
        bad_magic[0] = 0xFF;
        assert!(matches!(decode(&bad_magic), Err(WireError::BadMagic(_))));

        let mut bad_version = good.clone();
        bad_version[2] = 99;
        assert!(matches!(
            decode(&bad_version),
            Err(WireError::BadVersion(99))
        ));

        let mut bad_kind = good.clone();
        bad_kind[3] = 200;
        assert!(matches!(decode(&bad_kind), Err(WireError::BadKind(200))));

        assert!(matches!(
            decode(&good[..good.len() - 1]),
            Err(WireError::Truncated)
        ));

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(decode(&trailing), Err(WireError::Trailing(1))));

        let mut oversized = good.clone();
        oversized[12..16].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(decode(&oversized), Err(WireError::Oversized(_))));

        // A truncated v2 control payload is typed, not a panic.
        let reshard = (Frame::Reshard {
            id: 1,
            from: 0,
            to: 1,
            at_op: 9,
        })
        .encode();
        assert!(matches!(
            decode(&reshard[..reshard.len() - 4]),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn v1_frames_still_decode_under_v3() {
        // The v1 payload layouts are unchanged; only the version byte
        // differs. A v1 peer's frame must decode, and an unknown future
        // version must not.
        for frame in sample_frames().into_iter().take(4) {
            let mut bytes = frame.encode();
            assert_eq!(bytes[2], VERSION_UNTRACED, "untraced frames stamp v2");
            bytes[2] = 1;
            assert_eq!(decode(&bytes).expect("v1 frame decodes"), frame);
            bytes[2] = 4;
            assert!(matches!(decode(&bytes), Err(WireError::BadVersion(4))));
        }
        assert!(version_supported(1));
        assert!(version_supported(2));
        assert!(version_supported(3));
        assert!(!version_supported(0));
        assert!(!version_supported(4));
    }

    #[test]
    fn trace_extension_rides_only_on_v3_frames() {
        let traced = Frame::Request {
            id: 1,
            ops: vec![Op::get(b"k".to_vec())],
            trace: Some(TraceContext {
                seq: 9,
                send_ns: 777,
            }),
        };
        let untraced = Frame::Request {
            id: 1,
            ops: vec![Op::get(b"k".to_vec())],
            trace: None,
        };
        let traced_bytes = traced.encode();
        let untraced_bytes = untraced.encode();
        // Tracing on: v3 stamp, 16 extension bytes; off: byte-identical
        // to a v2 build's encoding.
        assert_eq!(traced_bytes[2], 3);
        assert_eq!(untraced_bytes[2], 2);
        assert_eq!(traced_bytes.len(), untraced_bytes.len() + 16);
        assert_eq!(decode(&traced_bytes).unwrap(), traced);
        assert_eq!(decode(&untraced_bytes).unwrap(), untraced);

        // The same payload stamped v2 must NOT grow a trace context —
        // a v2 peer's 16 trailing bytes are garbage, not an extension.
        let mut downgraded = traced_bytes.clone();
        downgraded[2] = 2;
        assert!(
            matches!(decode(&downgraded), Err(WireError::Trailing(16))),
            "v2 frames cannot smuggle a v3 extension"
        );

        // A v3 request without the extension is a valid traced-capable
        // frame that simply was not traced.
        let mut upgraded = untraced_bytes.clone();
        upgraded[2] = 3;
        assert_eq!(decode(&upgraded).unwrap(), untraced);

        // Partial extensions are trailing garbage even under v3.
        let mut partial = traced_bytes.clone();
        partial.truncate(partial.len() - 8);
        let fixed_len = ((partial.len() - HEADER_LEN) as u32).to_le_bytes();
        partial[12..16].copy_from_slice(&fixed_len);
        assert!(matches!(decode(&partial), Err(WireError::Trailing(8))));
    }

    #[test]
    fn reply_trace_round_trips_all_six_words() {
        let trace = ReplyTrace {
            seq: u64::MAX,
            client_send_ns: 1,
            recv_ns: 2,
            dequeue_ns: 3,
            apply_dur_ns: 4,
            send_ns: 5,
        };
        let frame = Frame::Response {
            id: 3,
            results: vec![BatchResult::Applied],
            trace: Some(trace),
        };
        let bytes = frame.encode();
        assert_eq!(bytes[2], 3);
        match decode(&bytes).unwrap() {
            Frame::Response {
                trace: Some(back), ..
            } => assert_eq!(back, trace),
            other => panic!("decoded {other:?}"),
        }
        // And stripping the version stamp back to v2 rejects it.
        let mut downgraded = bytes.clone();
        downgraded[2] = 2;
        assert!(matches!(decode(&downgraded), Err(WireError::Trailing(48))));
    }

    #[test]
    fn v2_control_frames_reject_v1_stamp_gracefully() {
        // A v2 control frame stamped v1 still decodes (kind bytes are
        // orthogonal to version here — strictness lives in the payload
        // decoders), which keeps the decoder total. This pins that
        // behaviour so a future change is deliberate.
        let mut bytes = (Frame::Topology { id: 3 }).encode();
        bytes[2] = 1;
        assert_eq!(decode(&bytes).unwrap(), Frame::Topology { id: 3 });
    }

    #[test]
    fn store_errors_survive_the_wire() {
        let cases = vec![
            StoreError::Corruption("bad block".to_string()),
            StoreError::Closed,
            StoreError::InvalidArgument("empty key".to_string()),
            StoreError::Config("no shard factory".to_string()),
        ];
        for e in cases {
            let (code, msg) = encode_store_error(&e);
            let back = decode_store_error(code, msg);
            assert_eq!(format!("{e}"), format!("{back}"));
        }
        // Io and Unsupported preserve category (message may be rewrapped).
        let (code, msg) = encode_store_error(&StoreError::Io(io::Error::other("boom")));
        assert!(matches!(decode_store_error(code, msg), StoreError::Io(_)));
        let (code, msg) = encode_store_error(&StoreError::Unsupported("scan"));
        assert!(matches!(
            decode_store_error(code, msg),
            StoreError::Unsupported(_)
        ));
        // PathIo maps to the Io category with op + path in the message.
        let (code, msg) = encode_store_error(&StoreError::path_io(
            "fsync",
            "/data/wal_3.log",
            io::Error::other("short write"),
        ));
        assert_eq!(code, ErrorCode::Io);
        assert!(
            msg.contains("fsync") && msg.contains("/data/wal_3.log"),
            "{msg}"
        );
        assert!(matches!(decode_store_error(code, msg), StoreError::Io(_)));
    }
}
