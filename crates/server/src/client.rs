//! [`NetStore`]: a [`StateStore`] backed by a gadget-server over TCP.
//!
//! Because `NetStore` *is* a `StateStore`, every existing consumer —
//! the trace replayer, the streaming driver, the CLI's report plumbing
//! — works against a remote server unmodified; pointing a benchmark at
//! a network deployment is a constructor swap, not a code change. Each
//! `NetStore` owns one connection and issues requests synchronously
//! (one in flight at a time); fan-in comes from many `NetStore`s, as
//! driven by [`crate::driver::drive`].

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown as SockShutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use bytes::Bytes;
use gadget_kv::{
    BatchResult, CheckpointManifest, Durability, OpTimers, ReshardEvent, StateStore, StoreError,
};
use gadget_obs::trace::{self, record_complete2, Category, ClockSample, OffsetEstimator};
use gadget_obs::{Counter, LogHistogram, MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;

use crate::wire::{self, Frame, ReplyTrace, TraceContext};

/// Process-global trace sequence counter: every traced request in this
/// process gets a distinct `seq`, no matter which connection carries
/// it, so merged client/server timelines can join purely on `seq`.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(1);

/// A server's partition topology, as answered to a wire `Topology`
/// query: what drivers stamp into run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of shards the served store routes across.
    pub shards: u32,
    /// Partition-map version (router epoch).
    pub map_version: u64,
    /// Partition-map content digest.
    pub digest: u64,
    /// Completed reshard events, oldest first.
    pub events: Vec<ReshardEvent>,
}

impl Topology {
    /// The digest rendered the way reports record it.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

/// Summary of a server-side checkpoint, as carried by the wire: the
/// checkpoint bytes themselves stay in the server-local directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteCheckpoint {
    /// Number of files the server-side manifest records.
    pub files: u64,
    /// Total checkpoint payload in bytes.
    pub total_bytes: u64,
    /// Files an incremental cut reused from the previous checkpoint.
    pub reused: u64,
}

/// Client-side latency decomposition for one traced connection: where
/// a request's end-to-end time went, split along the wire boundary.
///
/// Segments telescope — for every sample they sum to exactly the
/// end-to-end latency, whatever the clock-offset estimate, because the
/// offset cancels between the outbound and return legs:
///
/// * `client_queue` — call entry to request stamped for the wire
///   (lock wait plus batch assembly);
/// * `outbound` — wire stamp to server dequeue, on the client clock
///   (socket write, network, server socket read, server queue);
/// * `service` — the store's `apply_batch`, as measured by the server;
/// * `return_path` — apply end to reply decoded (reply encode, network,
///   client read and decode);
/// * `end_to_end` — the whole request, for cross-checking the sum.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// Client-side connection ordinal (as passed to
    /// [`NetStore::enable_tracing`]), not the server's connection id.
    pub conn: u64,
    /// Requests that completed a full trace exchange.
    pub samples: u64,
    /// Estimated server-minus-client clock offset, nanoseconds.
    pub offset_ns: Option<i64>,
    /// Round-trip wire floor behind the offset estimate, nanoseconds.
    pub min_rtt_ns: Option<u64>,
    /// Per-segment latency histograms, in pipeline order.
    pub segments: Vec<(String, LogHistogram)>,
}

/// The five segment names, in pipeline order — shared by the report
/// layer so merged decompositions stay consistently keyed.
pub const SEGMENT_NAMES: [&str; 5] = [
    "client_queue",
    "outbound",
    "service",
    "return_path",
    "end_to_end",
];

/// Per-connection tracing state, armed by [`NetStore::enable_tracing`].
struct ClientTracing {
    conn_no: u64,
    stats: Mutex<TraceStats>,
}

#[derive(Default)]
struct TraceStats {
    samples: u64,
    estimator: OffsetEstimator,
    client_queue: LogHistogram,
    outbound: LogHistogram,
    service: LogHistogram,
    return_path: LogHistogram,
    end_to_end: LogHistogram,
}

impl ClientTracing {
    /// Folds one completed exchange into the estimator, the segment
    /// histograms, and — when a trace session is live — the span rings.
    fn absorb(&self, t0: u64, seq: u64, rt: ReplyTrace, t4: u64) {
        let t1 = rt.client_send_ns;
        let mut stats = self.stats.lock().unwrap();
        stats.estimator.record(ClockSample {
            t1,
            t2: rt.recv_ns,
            t3: rt.send_ns,
            t4,
        });
        let theta = stats.estimator.offset_ns().unwrap_or(0) as i128;
        // Dequeue mapped onto the client clock; clamping negatives (an
        // offset estimate worse than the one-way delay) costs at most
        // the clamp amount against the telescoping identity.
        let dequeue = rt.dequeue_ns as i128 - theta;
        let client_queue = t1.saturating_sub(t0);
        let outbound = (dequeue - t1 as i128).max(0) as u64;
        let service = rt.apply_dur_ns;
        let return_path = (t4 as i128 - (dequeue + service as i128)).max(0) as u64;
        let end_to_end = t4.saturating_sub(t0);
        stats.samples += 1;
        stats.client_queue.record(client_queue);
        stats.outbound.record(outbound);
        stats.service.record(service);
        stats.return_path.record(return_path);
        stats.end_to_end.record(end_to_end);
        drop(stats);
        record_complete2(Category::NetSend, self.conn_no, seq, t0, client_queue);
        record_complete2(
            Category::NetWait,
            self.conn_no,
            seq,
            t1,
            t4.saturating_sub(t1),
        );
        record_complete2(Category::NetOp, self.conn_no, seq, t0, end_to_end);
    }
}

/// One TCP connection's buffered halves.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, StoreError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn {
            reader,
            writer: BufWriter::new(stream),
        })
    }
}

/// A state store that forwards every operation to a gadget-server.
pub struct NetStore {
    addr: String,
    conn: Mutex<Conn>,
    next_id: AtomicU64,
    metrics: MetricsRegistry,
    timers: OpTimers,
    bytes_in: Counter,
    bytes_out: Counter,
    requests: Counter,
    reconnects: Counter,
    tracing: OnceLock<ClientTracing>,
}

impl NetStore {
    /// Connects to a running server at `addr` (`host:port`).
    ///
    /// Fails immediately — with the underlying socket error — if the
    /// address is unreachable; there is no retry loop, so an
    /// unreachable server is diagnosed at startup rather than midway
    /// through a benchmark.
    pub fn connect(addr: &str) -> Result<NetStore, StoreError> {
        let conn = Conn::open(addr)?;
        let metrics = MetricsRegistry::new();
        Ok(NetStore {
            addr: addr.to_string(),
            conn: Mutex::new(conn),
            next_id: AtomicU64::new(1),
            timers: OpTimers::registered(&metrics, 0),
            bytes_in: metrics.counter("net_bytes_in"),
            bytes_out: metrics.counter("net_bytes_out"),
            requests: metrics.counter("net_requests"),
            reconnects: metrics.counter("net_reconnects"),
            tracing: OnceLock::new(),
            metrics,
        })
    }

    /// Arms per-request tracing on this connection: every subsequent
    /// request carries a wire-v3 trace context (frames grow by 16
    /// bytes), replies are harvested into a clock-offset estimator and
    /// segment histograms, and `NetOp`/`NetSend`/`NetWait` spans are
    /// recorded when a trace session is live. `conn_no` is the caller's
    /// connection ordinal, stamped into spans for timeline grouping.
    /// Idempotent; tracing cannot be disarmed once enabled.
    pub fn enable_tracing(&self, conn_no: u64) {
        let _ = self.tracing.set(ClientTracing {
            conn_no,
            stats: Mutex::new(TraceStats::default()),
        });
    }

    /// The latency decomposition gathered so far, or `None` when
    /// tracing was never enabled. Callable mid-run; histograms are
    /// copied out under the stats lock.
    pub fn decomposition(&self) -> Option<Decomposition> {
        let tr = self.tracing.get()?;
        let stats = tr.stats.lock().unwrap();
        Some(Decomposition {
            conn: tr.conn_no,
            samples: stats.samples,
            offset_ns: stats.estimator.offset_ns(),
            min_rtt_ns: stats.estimator.min_rtt_ns(),
            segments: vec![
                (SEGMENT_NAMES[0].to_string(), stats.client_queue.clone()),
                (SEGMENT_NAMES[1].to_string(), stats.outbound.clone()),
                (SEGMENT_NAMES[2].to_string(), stats.service.clone()),
                (SEGMENT_NAMES[3].to_string(), stats.return_path.clone()),
                (SEGMENT_NAMES[4].to_string(), stats.end_to_end.clone()),
            ],
        })
    }

    /// The server address this store talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Number of reconnects performed (churn accounting).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Drops the current connection and dials a fresh one — the churn
    /// primitive: session state on the old connection (socket buffers,
    /// server-side threads) is torn down exactly as a departing client
    /// would tear it down.
    pub fn reconnect(&self) -> Result<(), StoreError> {
        let mut conn = self.conn.lock().unwrap();
        *conn = Conn::open(&self.addr)?;
        self.reconnects.inc();
        Ok(())
    }

    /// Asks the server to drain and exit; returns once the server has
    /// acknowledged (at which point in-flight work is already answered
    /// and the listener no longer accepts).
    pub fn shutdown_server(&self) -> Result<(), StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Shutdown { id };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::Shutdown { id: ack } if ack == id => {
                // Politely close our half; the server is draining.
                if let Ok(stream) = conn.writer.get_ref().try_clone() {
                    let _ = stream.shutdown(SockShutdown::Both);
                }
                Ok(())
            }
            other => Err(StoreError::Corruption(format!(
                "expected shutdown ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the server to live-reshard its store: take slots from shard
    /// `from` and move them to shard `to` (pass the server's current
    /// shard count as `to` to split a brand-new shard into existence).
    /// Blocks until the migration completes and returns what it did.
    ///
    /// Issue this on a *dedicated control connection*: the request
    /// occupies this connection's server-side worker for the whole
    /// migration, while traffic on other connections keeps flowing
    /// through the transfer window.
    pub fn reshard(&self, from: u32, to: u32, at_op: u64) -> Result<ReshardEvent, StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Reshard {
            id,
            from,
            to,
            at_op,
        };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::ReshardDone { id: got, event } if got == id => Ok(event),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected reshard ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Queries the server's current partition topology.
    pub fn topology(&self) -> Result<Topology, StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Topology { id };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::TopologyInfo {
                id: got,
                shards,
                map_version,
                digest,
                events,
            } if got == id => Ok(Topology {
                shards,
                map_version,
                digest,
                events,
            }),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected topology info for {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the server to checkpoint its served store into the
    /// *server-local* directory `dir`, blocking until the cut lands.
    /// Like [`NetStore::reshard`], issue this on a dedicated control
    /// connection so traffic connections keep flowing meanwhile.
    pub fn checkpoint_server(&self, dir: &str) -> Result<RemoteCheckpoint, StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Checkpoint {
            id,
            dir: dir.to_string(),
        };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::CheckpointDone {
                id: got,
                files,
                total_bytes,
                reused,
            } if got == id => Ok(RemoteCheckpoint {
                files,
                total_bytes,
                reused,
            }),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected checkpoint ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the server to restore its served store from the
    /// server-local checkpoint directory `dir`.
    pub fn restore_server(&self, dir: &str) -> Result<(), StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Restore {
            id,
            dir: dir.to_string(),
        };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::RestoreDone { id: got } if got == id => Ok(()),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected restore ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Sends one request batch and awaits its reply.
    fn call(&self, ops: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        let tracing = self.tracing.get();
        let t0 = tracing.map(|_| trace::now_ns());
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // The send stamp (`t1`) is taken as late as the borrow rules
        // allow — immediately before the frame is assembled for the
        // encoder — so `client_queue` covers the lock wait while the
        // batch copy and encode land on the outbound leg.
        let trace_ctx = tracing.map(|_| TraceContext {
            seq: NEXT_SEQ.fetch_add(1, Ordering::Relaxed),
            send_ns: trace::now_ns(),
        });
        let request = Frame::Request {
            id,
            ops: ops.to_vec(),
            trace: trace_ctx,
        };
        wire::write_frame(&mut conn.writer, &request)?;
        conn.writer.flush().map_err(StoreError::Io)?;
        self.bytes_out.add(request.encoded_len() as u64);
        self.requests.inc();
        let reply = wire::read_frame(&mut conn.reader)?;
        self.bytes_in.add(reply.encoded_len() as u64);
        match reply {
            Frame::Response {
                id: got,
                results,
                trace: reply_trace,
            } => {
                if got != id {
                    return Err(StoreError::Corruption(format!(
                        "response id {got} does not match request id {id}"
                    )));
                }
                if results.len() != ops.len() {
                    return Err(StoreError::Corruption(format!(
                        "{} results for {} ops",
                        results.len(),
                        ops.len()
                    )));
                }
                if let (Some(tr), Some(ctx), Some(t0), Some(rt)) =
                    (tracing, trace_ctx, t0, reply_trace)
                {
                    if rt.seq == ctx.seq {
                        tr.absorb(t0, ctx.seq, rt, trace::now_ns());
                    }
                }
                Ok(results)
            }
            Frame::Error {
                id: got,
                code,
                message,
            } => {
                if got != id && got != 0 {
                    return Err(StoreError::Corruption(format!(
                        "error id {got} does not match request id {id}"
                    )));
                }
                Err(wire::decode_store_error(code, message))
            }
            other => Err(StoreError::Corruption(format!(
                "unexpected reply frame: {other:?}"
            ))),
        }
    }

    /// One-op convenience around [`NetStore::call`].
    fn call_one(&self, op: Op) -> Result<BatchResult, StoreError> {
        let mut results = self.call(std::slice::from_ref(&op))?;
        Ok(results.pop().expect("length checked in call"))
    }
}

impl StateStore for NetStore {
    fn name(&self) -> &'static str {
        "net"
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        match self
            .timers
            .get
            .time(|| self.call_one(Op::get(key.to_vec())))?
        {
            BatchResult::Value(v) => Ok(v),
            BatchResult::Applied => {
                Err(StoreError::Corruption("write result for a get".to_string()))
            }
        }
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.timers
            .put
            .time(|| self.call_one(Op::put(key.to_vec(), value.to_vec())))?;
        Ok(())
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.timers
            .merge
            .time(|| self.call_one(Op::merge(key.to_vec(), operand.to_vec())))?;
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.timers
            .delete
            .time(|| self.call_one(Op::delete(key.to_vec())))?;
        Ok(())
    }

    fn supports_scan(&self) -> bool {
        false
    }

    fn supports_merge(&self) -> bool {
        true
    }

    /// The wire does not carry the backend's WAL mode; from the
    /// client's perspective the checkpoint RPC is the durability
    /// primitive this handle can exercise.
    fn durability(&self) -> Durability {
        Durability::SnapshotOnly
    }

    /// Checkpoints the *server-side* store into a server-local `dir`.
    /// The returned manifest is the wire summary (one aggregate entry);
    /// the authoritative manifest lives next to the checkpoint files on
    /// the server.
    fn checkpoint(&self, dir: &std::path::Path) -> Result<CheckpointManifest, StoreError> {
        let summary = self.checkpoint_server(&dir.to_string_lossy())?;
        let mut manifest = CheckpointManifest::new(self.name());
        manifest.push_file("remote", summary.total_bytes);
        manifest.reused_files = summary.reused;
        Ok(manifest)
    }

    fn restore(&self, dir: &std::path::Path) -> Result<(), StoreError> {
        self.restore_server(&dir.to_string_lossy())
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        let started = Instant::now();
        let results = self.call(batch)?;
        self.timers
            .record_batch(batch, started.elapsed().as_nanos() as u64);
        Ok(results)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_address_fails_fast_with_io_error() {
        // Port 1 on loopback: nothing listens there.
        let err = match NetStore::connect("127.0.0.1:1") {
            Err(e) => e,
            Ok(_) => panic!("connected to a port nothing listens on"),
        };
        assert!(matches!(err, StoreError::Io(_)), "got: {err:?}");
    }
}
