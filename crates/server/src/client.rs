//! [`NetStore`]: a [`StateStore`] backed by a gadget-server over TCP.
//!
//! Because `NetStore` *is* a `StateStore`, every existing consumer —
//! the trace replayer, the streaming driver, the CLI's report plumbing
//! — works against a remote server unmodified; pointing a benchmark at
//! a network deployment is a constructor swap, not a code change. Each
//! `NetStore` owns one connection and issues requests synchronously
//! (one in flight at a time); fan-in comes from many `NetStore`s, as
//! driven by [`crate::driver::drive`].

use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown as SockShutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bytes::Bytes;
use gadget_kv::{
    BatchResult, CheckpointManifest, Durability, OpTimers, ReshardEvent, StateStore, StoreError,
};
use gadget_obs::{Counter, MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;

use crate::wire::{self, Frame};

/// A server's partition topology, as answered to a wire `Topology`
/// query: what drivers stamp into run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of shards the served store routes across.
    pub shards: u32,
    /// Partition-map version (router epoch).
    pub map_version: u64,
    /// Partition-map content digest.
    pub digest: u64,
    /// Completed reshard events, oldest first.
    pub events: Vec<ReshardEvent>,
}

impl Topology {
    /// The digest rendered the way reports record it.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

/// Summary of a server-side checkpoint, as carried by the wire: the
/// checkpoint bytes themselves stay in the server-local directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteCheckpoint {
    /// Number of files the server-side manifest records.
    pub files: u64,
    /// Total checkpoint payload in bytes.
    pub total_bytes: u64,
    /// Files an incremental cut reused from the previous checkpoint.
    pub reused: u64,
}

/// One TCP connection's buffered halves.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, StoreError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn {
            reader,
            writer: BufWriter::new(stream),
        })
    }
}

/// A state store that forwards every operation to a gadget-server.
pub struct NetStore {
    addr: String,
    conn: Mutex<Conn>,
    next_id: AtomicU64,
    metrics: MetricsRegistry,
    timers: OpTimers,
    bytes_in: Counter,
    bytes_out: Counter,
    requests: Counter,
    reconnects: Counter,
}

impl NetStore {
    /// Connects to a running server at `addr` (`host:port`).
    ///
    /// Fails immediately — with the underlying socket error — if the
    /// address is unreachable; there is no retry loop, so an
    /// unreachable server is diagnosed at startup rather than midway
    /// through a benchmark.
    pub fn connect(addr: &str) -> Result<NetStore, StoreError> {
        let conn = Conn::open(addr)?;
        let metrics = MetricsRegistry::new();
        Ok(NetStore {
            addr: addr.to_string(),
            conn: Mutex::new(conn),
            next_id: AtomicU64::new(1),
            timers: OpTimers::registered(&metrics, 0),
            bytes_in: metrics.counter("net_bytes_in"),
            bytes_out: metrics.counter("net_bytes_out"),
            requests: metrics.counter("net_requests"),
            reconnects: metrics.counter("net_reconnects"),
            metrics,
        })
    }

    /// The server address this store talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Number of reconnects performed (churn accounting).
    pub fn reconnects(&self) -> u64 {
        self.reconnects.get()
    }

    /// Drops the current connection and dials a fresh one — the churn
    /// primitive: session state on the old connection (socket buffers,
    /// server-side threads) is torn down exactly as a departing client
    /// would tear it down.
    pub fn reconnect(&self) -> Result<(), StoreError> {
        let mut conn = self.conn.lock().unwrap();
        *conn = Conn::open(&self.addr)?;
        self.reconnects.inc();
        Ok(())
    }

    /// Asks the server to drain and exit; returns once the server has
    /// acknowledged (at which point in-flight work is already answered
    /// and the listener no longer accepts).
    pub fn shutdown_server(&self) -> Result<(), StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Shutdown { id };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::Shutdown { id: ack } if ack == id => {
                // Politely close our half; the server is draining.
                if let Ok(stream) = conn.writer.get_ref().try_clone() {
                    let _ = stream.shutdown(SockShutdown::Both);
                }
                Ok(())
            }
            other => Err(StoreError::Corruption(format!(
                "expected shutdown ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the server to live-reshard its store: take slots from shard
    /// `from` and move them to shard `to` (pass the server's current
    /// shard count as `to` to split a brand-new shard into existence).
    /// Blocks until the migration completes and returns what it did.
    ///
    /// Issue this on a *dedicated control connection*: the request
    /// occupies this connection's server-side worker for the whole
    /// migration, while traffic on other connections keeps flowing
    /// through the transfer window.
    pub fn reshard(&self, from: u32, to: u32, at_op: u64) -> Result<ReshardEvent, StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Reshard {
            id,
            from,
            to,
            at_op,
        };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::ReshardDone { id: got, event } if got == id => Ok(event),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected reshard ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Queries the server's current partition topology.
    pub fn topology(&self) -> Result<Topology, StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Topology { id };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::TopologyInfo {
                id: got,
                shards,
                map_version,
                digest,
                events,
            } if got == id => Ok(Topology {
                shards,
                map_version,
                digest,
                events,
            }),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected topology info for {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the server to checkpoint its served store into the
    /// *server-local* directory `dir`, blocking until the cut lands.
    /// Like [`NetStore::reshard`], issue this on a dedicated control
    /// connection so traffic connections keep flowing meanwhile.
    pub fn checkpoint_server(&self, dir: &str) -> Result<RemoteCheckpoint, StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Checkpoint {
            id,
            dir: dir.to_string(),
        };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::CheckpointDone {
                id: got,
                files,
                total_bytes,
                reused,
            } if got == id => Ok(RemoteCheckpoint {
                files,
                total_bytes,
                reused,
            }),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected checkpoint ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Asks the server to restore its served store from the
    /// server-local checkpoint directory `dir`.
    pub fn restore_server(&self, dir: &str) -> Result<(), StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let frame = Frame::Restore {
            id,
            dir: dir.to_string(),
        };
        wire::write_frame(&mut conn.writer, &frame)?;
        conn.writer.flush()?;
        match wire::read_frame(&mut conn.reader)? {
            Frame::RestoreDone { id: got } if got == id => Ok(()),
            Frame::Error { code, message, .. } => Err(wire::decode_store_error(code, message)),
            other => Err(StoreError::Corruption(format!(
                "expected restore ack for {id}, got {other:?}"
            ))),
        }
    }

    /// Sends one request batch and awaits its reply.
    fn call(&self, ops: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        let mut conn = self.conn.lock().unwrap();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let request = Frame::Request {
            id,
            ops: ops.to_vec(),
        };
        wire::write_frame(&mut conn.writer, &request)?;
        conn.writer.flush().map_err(StoreError::Io)?;
        self.bytes_out.add(request.encoded_len() as u64);
        self.requests.inc();
        let reply = wire::read_frame(&mut conn.reader)?;
        self.bytes_in.add(reply.encoded_len() as u64);
        match reply {
            Frame::Response { id: got, results } => {
                if got != id {
                    return Err(StoreError::Corruption(format!(
                        "response id {got} does not match request id {id}"
                    )));
                }
                if results.len() != ops.len() {
                    return Err(StoreError::Corruption(format!(
                        "{} results for {} ops",
                        results.len(),
                        ops.len()
                    )));
                }
                Ok(results)
            }
            Frame::Error {
                id: got,
                code,
                message,
            } => {
                if got != id && got != 0 {
                    return Err(StoreError::Corruption(format!(
                        "error id {got} does not match request id {id}"
                    )));
                }
                Err(wire::decode_store_error(code, message))
            }
            other => Err(StoreError::Corruption(format!(
                "unexpected reply frame: {other:?}"
            ))),
        }
    }

    /// One-op convenience around [`NetStore::call`].
    fn call_one(&self, op: Op) -> Result<BatchResult, StoreError> {
        let mut results = self.call(std::slice::from_ref(&op))?;
        Ok(results.pop().expect("length checked in call"))
    }
}

impl StateStore for NetStore {
    fn name(&self) -> &'static str {
        "net"
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        match self
            .timers
            .get
            .time(|| self.call_one(Op::get(key.to_vec())))?
        {
            BatchResult::Value(v) => Ok(v),
            BatchResult::Applied => {
                Err(StoreError::Corruption("write result for a get".to_string()))
            }
        }
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.timers
            .put
            .time(|| self.call_one(Op::put(key.to_vec(), value.to_vec())))?;
        Ok(())
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.timers
            .merge
            .time(|| self.call_one(Op::merge(key.to_vec(), operand.to_vec())))?;
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.timers
            .delete
            .time(|| self.call_one(Op::delete(key.to_vec())))?;
        Ok(())
    }

    fn supports_scan(&self) -> bool {
        false
    }

    fn supports_merge(&self) -> bool {
        true
    }

    /// The wire does not carry the backend's WAL mode; from the
    /// client's perspective the checkpoint RPC is the durability
    /// primitive this handle can exercise.
    fn durability(&self) -> Durability {
        Durability::SnapshotOnly
    }

    /// Checkpoints the *server-side* store into a server-local `dir`.
    /// The returned manifest is the wire summary (one aggregate entry);
    /// the authoritative manifest lives next to the checkpoint files on
    /// the server.
    fn checkpoint(&self, dir: &std::path::Path) -> Result<CheckpointManifest, StoreError> {
        let summary = self.checkpoint_server(&dir.to_string_lossy())?;
        let mut manifest = CheckpointManifest::new(self.name());
        manifest.push_file("remote", summary.total_bytes);
        manifest.reused_files = summary.reused;
        Ok(manifest)
    }

    fn restore(&self, dir: &std::path::Path) -> Result<(), StoreError> {
        self.restore_server(&dir.to_string_lossy())
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        let started = Instant::now();
        let results = self.call(batch)?;
        self.timers
            .record_batch(batch, started.elapsed().as_nanos() as u64);
        Ok(results)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        Some(self.metrics.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreachable_address_fails_fast_with_io_error() {
        // Port 1 on loopback: nothing listens there.
        let err = match NetStore::connect("127.0.0.1:1") {
            Err(e) => e,
            Ok(_) => panic!("connected to a port nothing listens on"),
        };
        assert!(matches!(err, StoreError::Io(_)), "got: {err:?}");
    }
}
