//! Multi-connection fan-in driver with session churn.
//!
//! Simulates a fleet of streaming workers hammering one state server:
//! the trace is partitioned across N connections by key hash (every
//! access to a given key stays on one connection, preserving the
//! per-key ordering keyed streaming state relies on), each connection
//! replays its slice through its own [`NetStore`], and at deterministic
//! segment boundaries a connection may *churn* — drop its TCP session
//! and dial a fresh one, the way autoscaled workers, rebalanced
//! partitions, and flaky networks do in production. Per-connection
//! latency histograms merge exactly ([`Measured::absorb`]), so the
//! summary distribution is the true union of every connection's
//! samples, not an average of averages.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use gadget_kv::{shard_of, ReshardEvent};
use gadget_obs::trace::{phase, span, Category};
use gadget_replay::{Measured, ReplayOptions, RunReport, TraceReplayer};
use gadget_types::{StateAccess, Trace};

use gadget_kv::{StateStore, StoreError};

use crate::client::{NetStore, Topology};

/// Tunables for [`drive`].
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Concurrent client connections.
    pub connections: usize,
    /// Probability, at each segment boundary, that a connection drops
    /// its TCP session and reconnects. `0.0` disables churn; `0.1`
    /// models a fairly turbulent fleet.
    pub churn: f64,
    /// Operations replayed between churn decision points.
    pub segment_ops: usize,
    /// Replay pacing/batching. `service_rate` is the *aggregate* target
    /// across all connections (split evenly); `max_ops` caps the total
    /// before partitioning; `replay_threads` is ignored (the connection
    /// fan-out replaces it).
    pub replay: ReplayOptions,
    /// Seed for the deterministic churn coin-flips. Same seed, same
    /// trace, same options → same reconnect schedule.
    pub seed: u64,
    /// Trigger a live reshard mid-drive: once the fleet has executed
    /// `frac` of the trace's ops, a dedicated control connection asks
    /// the server to move slots from shard `from` to shard `to` while
    /// the traffic connections keep replaying. `None` disables.
    pub reshard_at: Option<ReshardTrigger>,
    /// Arm client-side tracing on every connection: requests carry the
    /// wire-v3 trace context, each connection estimates its clock
    /// offset to the server, and the merged report gains the
    /// end-to-end latency decomposition
    /// ([`RunReport::decomposition`](gadget_replay::RunReport)).
    pub client_trace: bool,
}

/// When and what a mid-drive reshard moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReshardTrigger {
    /// Fraction of total ops executed before the trigger fires,
    /// clamped to `0.0..=1.0`.
    pub frac: f64,
    /// Source shard.
    pub from: u32,
    /// Target shard (the server's current shard count to split a new
    /// shard into existence).
    pub to: u32,
}

impl Default for DriveOptions {
    fn default() -> Self {
        DriveOptions {
            connections: 1,
            churn: 0.0,
            segment_ops: 1_000,
            replay: ReplayOptions::default(),
            seed: 0x9ad9e,
            reshard_at: None,
            client_trace: false,
        }
    }
}

/// What a drive measured, beyond the standard replay report.
#[derive(Debug, Clone)]
pub struct DriveSummary {
    /// Merged replay measurements (store name `"net"`).
    pub report: RunReport,
    /// Connections driven.
    pub connections: usize,
    /// Total reconnects across all connections (churn events).
    pub reconnects: u64,
    /// Wire bytes received by clients (responses).
    pub bytes_in: u64,
    /// Wire bytes sent by clients (requests).
    pub bytes_out: u64,
    /// Ops executed per connection, indexed by connection number.
    pub per_connection_ops: Vec<u64>,
    /// The mid-drive reshard, if one was triggered.
    pub reshard: Option<ReshardEvent>,
    /// The server's partition topology after the drive (shard count,
    /// map digest, full reshard history) — what reports stamp as
    /// topology provenance. `None` only if the post-drive query failed.
    pub topology: Option<Topology>,
    /// Per-connection server-minus-client clock-offset estimates in
    /// nanoseconds, `(connection number, offset)`. Empty unless
    /// [`DriveOptions::client_trace`] was set; on loopback every entry
    /// should sit within a round trip of zero.
    pub clock_offsets_ns: Vec<(u64, i64)>,
}

/// What one connection's worth of the drive produced.
struct ConnOutcome {
    measured: Measured,
    reconnects: u64,
    bytes_in: u64,
    bytes_out: u64,
    ops: u64,
    decomposition: Option<crate::client::Decomposition>,
}

/// splitmix64 step — the standard 64-bit mixer; deterministic churn
/// decisions without pulling a rand dependency into the server crate.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the top 53 bits of a splitmix64 step.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Drives `trace` against the server at `addr` over
/// `options.connections` concurrent TCP sessions. `workload` labels
/// the resulting report.
///
/// Fails fast if any connection cannot be established (unreachable
/// address, server at fd limit) and propagates the first store error
/// any connection hits; a clean return means every issued request was
/// answered.
pub fn drive(
    addr: &str,
    trace: &Trace,
    workload: &str,
    options: &DriveOptions,
) -> Result<DriveSummary, StoreError> {
    let connections = options.connections.max(1);
    let _phase = span(Category::Phase, phase::DRIVE);

    // Partition by key hash so per-key order survives the fan-out.
    let limit = options.replay.max_ops.unwrap_or(u64::MAX);
    let mut parts: Vec<Vec<StateAccess>> = vec![Vec::new(); connections];
    for access in trace.iter().take(limit.min(usize::MAX as u64) as usize) {
        parts[shard_of(&access.key.encode(), connections)].push(*access);
    }

    let per_conn_options = ReplayOptions {
        service_rate: options.replay.service_rate.map(|r| r / connections as f64),
        max_ops: None, // the partition is already limited
        batch_size: options.replay.batch_size,
        replay_threads: 1,
        arrival: options.replay.arrival,
        arrival_seed: options.replay.arrival_seed,
    };
    let segment_ops = options.segment_ops.max(1);
    let total_ops: u64 = parts.iter().map(|p| p.len() as u64).sum();

    // Fleet-wide progress, bumped per completed segment; the reshard
    // trigger watches it to fire at the requested op fraction.
    let progress = AtomicU64::new(0);
    let drive_done = AtomicBool::new(false);
    let reshard_outcome: Mutex<Option<Result<ReshardEvent, StoreError>>> = Mutex::new(None);

    let started = std::time::Instant::now();
    let outcomes: Vec<Result<ConnOutcome, StoreError>> = std::thread::scope(|s| {
        let control = options.reshard_at.map(|trigger| {
            let progress = &progress;
            let drive_done = &drive_done;
            let reshard_outcome = &reshard_outcome;
            s.spawn(move || {
                let threshold = (trigger.frac.clamp(0.0, 1.0) * total_ops as f64) as u64;
                while progress.load(Ordering::Relaxed) < threshold
                    && !drive_done.load(Ordering::Relaxed)
                {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                let at_op = progress.load(Ordering::Relaxed);
                let result = NetStore::connect(addr)
                    .and_then(|control| control.reshard(trigger.from, trigger.to, at_op));
                *reshard_outcome.lock().unwrap() = Some(result);
            })
        });
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(conn_no, part)| {
                let mut per_conn_options = per_conn_options.clone();
                // Decorrelate the Poisson streams: identical seeds
                // would make every connection's arrival bursts land in
                // lockstep, an aggregate no real fleet produces.
                per_conn_options.arrival_seed = per_conn_options
                    .arrival_seed
                    .wrapping_add((conn_no as u64).wrapping_mul(0xA076_1D64_78BD_642F));
                let progress = &progress;
                s.spawn(move || {
                    drive_connection(
                        addr,
                        part,
                        conn_no,
                        options,
                        per_conn_options,
                        segment_ops,
                        progress,
                    )
                })
            })
            .collect();
        let outcomes = handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(StoreError::Corruption(
                        "drive connection thread panicked".to_string(),
                    ))
                })
            })
            .collect();
        drive_done.store(true, Ordering::Relaxed);
        if let Some(c) = control {
            let _ = c.join();
        }
        outcomes
    });
    let seconds = started.elapsed().as_secs_f64();

    // A requested reshard that failed fails the drive: the measurement
    // the caller asked for (tail latency under migration) did not
    // happen.
    let reshard = match reshard_outcome.into_inner().unwrap() {
        Some(result) => Some(result?),
        None => None,
    };

    let mut merged = Measured::new();
    let mut reconnects = 0;
    let mut bytes_in = 0;
    let mut bytes_out = 0;
    let mut per_connection_ops = Vec::with_capacity(connections);
    let mut clock_offsets_ns = Vec::new();
    for outcome in outcomes {
        let conn = outcome?;
        merged.absorb(&conn.measured);
        reconnects += conn.reconnects;
        bytes_in += conn.bytes_in;
        bytes_out += conn.bytes_out;
        per_connection_ops.push(conn.ops);
        if let Some(decomp) = conn.decomposition {
            merged.absorb_decomposition(&decomp.segments);
            if let Some(offset) = decomp.offset_ns {
                clock_offsets_ns.push((decomp.conn, offset));
            }
        }
    }
    clock_offsets_ns.sort_unstable();

    let mut report = merged.to_report("net", workload, seconds);
    report.arrival = Some(options.replay.arrival.name().to_string());
    report.offered_rate = options.replay.service_rate;
    let topology = NetStore::connect(addr)
        .and_then(|control| control.topology())
        .ok();
    Ok(DriveSummary {
        report,
        connections,
        reconnects,
        bytes_in,
        bytes_out,
        per_connection_ops,
        reshard,
        topology,
        clock_offsets_ns,
    })
}

/// One connection's worth of the drive: replay the slice segment by
/// segment, flipping the churn coin between segments.
fn drive_connection(
    addr: &str,
    part: &[StateAccess],
    conn_no: usize,
    options: &DriveOptions,
    replay_options: ReplayOptions,
    segment_ops: usize,
    progress: &AtomicU64,
) -> Result<ConnOutcome, StoreError> {
    let store = NetStore::connect(addr)?;
    if options.client_trace {
        store.enable_tracing(conn_no as u64);
    }
    let replayer = TraceReplayer::new(replay_options);
    let mut rng = options.seed ^ (conn_no as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let mut measured = Measured::new();
    // One pacer across every segment: the arrival schedule is anchored
    // once per connection, so pacing stays on the absolute schedule (no
    // per-segment re-anchor drift) and, in open-loop modes, ops delayed
    // by a churn reconnect are charged the full wait from their
    // intended arrival.
    let mut pacer = replayer.pacer(std::time::Instant::now());
    for (i, segment) in part.chunks(segment_ops).enumerate() {
        if i > 0 && options.churn > 0.0 && unit_f64(&mut rng) < options.churn {
            store.reconnect()?;
        }
        measured.absorb(&replayer.replay_accesses_paced(segment, &store, &mut pacer)?);
        progress.fetch_add(segment.len() as u64, Ordering::Relaxed);
    }
    let snap = store.metrics().unwrap_or_default();
    let ops = measured.executed;
    Ok(ConnOutcome {
        measured,
        reconnects: store.reconnects(),
        bytes_in: snap.counter("net_bytes_in").unwrap_or(0),
        bytes_out: snap.counter("net_bytes_out").unwrap_or(0),
        ops,
        decomposition: store.decomposition(),
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gadget_kv::MemStore;
    use gadget_types::StateKey;

    use crate::server::{Server, ServerConfig};

    use super::*;

    fn synthetic_trace(ops: usize, keys: u64) -> Trace {
        let mut trace = Trace::new();
        for i in 0..ops {
            let key = StateKey {
                group: (i as u64) % keys,
                ns: 0,
            };
            let ts = i as u64;
            trace.push(match i % 3 {
                0 => StateAccess::put(key, 64, ts),
                1 => StateAccess::get(key, ts),
                _ => StateAccess::delete(key, ts),
            });
        }
        trace
    }

    #[test]
    fn drive_replays_every_op_across_connections() {
        let server = Server::start(
            "127.0.0.1:0",
            Arc::new(MemStore::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let trace = synthetic_trace(600, 37);
        let options = DriveOptions {
            connections: 4,
            ..DriveOptions::default()
        };
        let summary = drive(
            &server.local_addr().to_string(),
            &trace,
            "synthetic",
            &options,
        )
        .unwrap();
        assert_eq!(summary.report.operations, 600);
        assert_eq!(summary.per_connection_ops.iter().sum::<u64>(), 600);
        assert_eq!(summary.connections, 4);
        assert_eq!(summary.reconnects, 0, "no churn requested");
        assert!(summary.bytes_in > 0 && summary.bytes_out > 0);
        server.stop().unwrap();
    }

    #[test]
    fn traced_drive_merges_decomposition_across_connections() {
        let server = Server::start(
            "127.0.0.1:0",
            Arc::new(MemStore::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let trace = synthetic_trace(900, 53);
        let options = DriveOptions {
            connections: 3,
            client_trace: true,
            ..DriveOptions::default()
        };
        let summary = drive(
            &server.local_addr().to_string(),
            &trace,
            "synthetic",
            &options,
        )
        .unwrap();
        assert_eq!(summary.report.operations, 900);
        // Every connection contributed an offset estimate...
        assert_eq!(summary.clock_offsets_ns.len(), 3);
        let conns: Vec<u64> = summary.clock_offsets_ns.iter().map(|(c, _)| *c).collect();
        assert_eq!(conns, vec![0, 1, 2]);
        // ...and the merged decomposition covers every traced request:
        // each segment histogram holds exactly `operations` samples.
        let decomp = &summary.report.decomposition;
        let names: Vec<&str> = decomp.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "client_queue",
                "outbound",
                "service",
                "return_path",
                "end_to_end"
            ]
        );
        for (name, hist) in decomp {
            assert_eq!(hist.count(), 900, "segment {name} is missing samples");
        }
        // An untraced drive leaves the section empty.
        let plain = drive(
            &server.local_addr().to_string(),
            &trace,
            "synthetic",
            &DriveOptions::default(),
        )
        .unwrap();
        assert!(plain.report.decomposition.is_empty());
        assert!(plain.clock_offsets_ns.is_empty());
        server.stop().unwrap();
    }

    #[test]
    fn mid_drive_reshard_loses_no_ops_and_stamps_topology() {
        use gadget_kv::ShardedStore;
        let sharded = Arc::new(
            ShardedStore::from_factory(4, |_| {
                Ok(Arc::new(MemStore::new()) as Arc<dyn gadget_kv::StateStore>)
            })
            .unwrap(),
        );
        let server =
            Server::start_sharded("127.0.0.1:0", sharded, ServerConfig::default()).unwrap();
        let trace = synthetic_trace(4_000, 97);
        let options = DriveOptions {
            connections: 3,
            segment_ops: 50,
            reshard_at: Some(ReshardTrigger {
                frac: 0.25,
                from: 0,
                to: 4,
            }),
            ..DriveOptions::default()
        };
        let summary = drive(
            &server.local_addr().to_string(),
            &trace,
            "synthetic",
            &options,
        )
        .unwrap();
        assert_eq!(summary.report.operations, 4_000, "reshard lost ops");
        let event = summary.reshard.expect("trigger fired");
        assert_eq!(event.from, 0);
        assert_eq!(event.to, 4);
        let topo = summary.topology.expect("topology query answered");
        assert_eq!(topo.shards, 5);
        assert_eq!(topo.map_version, 2);
        assert_eq!(topo.events, vec![event]);
        server.stop().unwrap();
    }

    #[test]
    fn reshard_trigger_against_unsharded_server_fails_the_drive() {
        let server = Server::start(
            "127.0.0.1:0",
            Arc::new(MemStore::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let trace = synthetic_trace(200, 11);
        let options = DriveOptions {
            reshard_at: Some(ReshardTrigger {
                frac: 0.5,
                from: 0,
                to: 1,
            }),
            ..DriveOptions::default()
        };
        let err = drive(
            &server.local_addr().to_string(),
            &trace,
            "synthetic",
            &options,
        )
        .unwrap_err();
        assert!(
            matches!(err, StoreError::Config(_)),
            "expected the server's Config refusal, got {err:?}"
        );
        server.stop().unwrap();
    }

    #[test]
    fn churn_reconnects_deterministically_without_losing_ops() {
        let server = Server::start(
            "127.0.0.1:0",
            Arc::new(MemStore::new()),
            ServerConfig::default(),
        )
        .unwrap();
        let addr = server.local_addr().to_string();
        let trace = synthetic_trace(2_000, 101);
        let options = DriveOptions {
            connections: 3,
            churn: 0.5,
            segment_ops: 100,
            seed: 42,
            ..DriveOptions::default()
        };
        let a = drive(&addr, &trace, "synthetic", &options).unwrap();
        let b = drive(&addr, &trace, "synthetic", &options).unwrap();
        assert_eq!(a.report.operations, 2_000, "churn lost operations");
        assert!(a.reconnects > 0, "p=0.5 over ~20 segments should churn");
        assert_eq!(
            a.reconnects, b.reconnects,
            "same seed must give the same churn schedule"
        );
        server.stop().unwrap();
    }
}
