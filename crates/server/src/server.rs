//! The gadget network server: a TCP front-end over any [`StateStore`].
//!
//! Threading model: one accept thread, plus a **reader** and a
//! **worker** thread per connection. The reader decodes frames off the
//! socket into a bounded queue; the worker drains the queue, applies
//! each batch to the store, and writes replies in arrival order. The
//! queue (`queue_depth` frames) is the backpressure mechanism: when a
//! connection has that many requests in flight the reader blocks, the
//! kernel receive buffer fills, and the client's writes stall — flow
//! control degrades to TCP's own, and server memory per connection
//! stays bounded no matter how fast the client pipelines.
//!
//! Shutdown is a drain, not a drop: the listener stops accepting, every
//! connection's *read* side is shut down (readers see EOF and stop
//! enqueueing), and workers finish answering everything already queued
//! before exiting — a request that was accepted is always answered.
//! Shutdown triggers are [`Server::shutdown`] (in-process) and the wire
//! `Shutdown` frame (remote, acked before the drain starts).

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use gadget_kv::{Router, ShardedStore, SlotTable, StateStore, StoreError};
use gadget_obs::trace::{self, record_complete2, span, Category};
use gadget_obs::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};

use crate::wire::{self, Frame, ReplyTrace, WireError};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Per-connection bound on decoded-but-unanswered requests. When
    /// full, the connection's reader stops pulling from the socket and
    /// backpressure propagates to the client via TCP flow control.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { queue_depth: 64 }
    }
}

/// What a reader hands its worker: a decoded frame (plus the
/// monotonic-ns instant it came off the socket, 0 when untraced — the
/// queue-enter timestamp of the per-request server timeline), or proof
/// that the peer is speaking garbage (answered once, then the
/// connection dies).
enum ConnEvent {
    Frame(Frame, u64),
    Malformed(WireError),
}

/// State shared by the accept loop, connection threads, and the handle.
struct Shared {
    store: Arc<dyn StateStore>,
    /// The same store as a [`ShardedStore`], when the server was
    /// started with [`Server::start_sharded`] — the handle the wire
    /// `Reshard`/`Topology` control frames operate on. `None` means
    /// control frames answer with a `Config` error / trivial topology.
    sharded: Option<Arc<ShardedStore>>,
    addr: SocketAddr,
    queue_depth: usize,
    shutting_down: AtomicBool,
    next_conn_id: AtomicU64,
    /// Read-half clones of live connections, by id; shut down to make
    /// readers see EOF during drain. Entries are removed as connections
    /// close so churn does not leak file descriptors.
    live: Mutex<HashMap<u64, TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    metrics: MetricsRegistry,
    connections: Counter,
    active: Gauge,
    bytes_in: Counter,
    bytes_out: Counter,
    requests: Counter,
    ops: Counter,
    inflight: Gauge,
}

impl Shared {
    /// Server-side metrics merged with the fronted store's own, plus
    /// trace ring-buffer pressure so span loss is visible on the
    /// Prometheus endpoint.
    fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(store) = self.store.metrics() {
            snap.merge(&store);
        }
        for (name, value) in self.store.internal_counters() {
            snap.push_counter(&name, value);
        }
        snap.merge(&gadget_obs::trace_pressure_snapshot());
        snap
    }

    /// Starts the drain exactly once: stop the accept loop and EOF
    /// every connection's read side. Idempotent and callable from any
    /// thread (including a connection's own worker).
    fn begin_shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection to
        // ourselves; the loop re-checks the flag after every accept.
        let _ = TcpStream::connect(self.addr);
        let live = self.live.lock().unwrap();
        for stream in live.values() {
            let _ = stream.shutdown(SockShutdown::Read);
        }
    }
}

/// A running gadget server. Dropping the handle without calling
/// [`Server::stop`] leaves the server running until process exit.
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `store`.
    pub fn start(
        addr: impl ToSocketAddrs,
        store: Arc<dyn StateStore>,
        config: ServerConfig,
    ) -> Result<Server, StoreError> {
        Self::start_inner(addr, store, None, config)
    }

    /// Like [`Server::start`], but keeps hold of the store's sharded
    /// topology so wire `Reshard` frames can trigger live slot
    /// migrations and `Topology` frames can describe the partition map.
    pub fn start_sharded(
        addr: impl ToSocketAddrs,
        store: Arc<ShardedStore>,
        config: ServerConfig,
    ) -> Result<Server, StoreError> {
        Self::start_inner(addr, store.clone(), Some(store), config)
    }

    fn start_inner(
        addr: impl ToSocketAddrs,
        store: Arc<dyn StateStore>,
        sharded: Option<Arc<ShardedStore>>,
        config: ServerConfig,
    ) -> Result<Server, StoreError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = MetricsRegistry::new();
        let shared = Arc::new(Shared {
            store,
            sharded,
            addr,
            queue_depth: config.queue_depth.max(1),
            shutting_down: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(0),
            live: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
            connections: metrics.counter("net_connections"),
            active: metrics.gauge("net_active_connections"),
            bytes_in: metrics.counter("net_bytes_in"),
            bytes_out: metrics.counter("net_bytes_out"),
            requests: metrics.counter("net_requests"),
            ops: metrics.counter("net_ops"),
            inflight: metrics.gauge("net_inflight"),
            metrics,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("gadget-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(StoreError::Io)?;
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Server-side metrics merged with the fronted store's own.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.snapshot()
    }

    /// A cloneable metrics source that outlives this handle — what a
    /// [`crate::MetricsServer`] scrapes while the server runs.
    pub fn snapshot_source(&self) -> Arc<dyn Fn() -> MetricsSnapshot + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move || shared.snapshot())
    }

    /// Begins the graceful drain without waiting for it to finish.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether a drain has been triggered (locally or over the wire).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Drains and waits for every connection to finish, then flushes
    /// the underlying store.
    pub fn stop(self) -> Result<(), StoreError> {
        self.shared.begin_shutdown();
        self.join()
    }

    /// Blocks until the server shuts down (via [`Server::shutdown`] or
    /// a wire `Shutdown` frame), then completes the drain.
    pub fn join(mut self) -> Result<(), StoreError> {
        // The accept thread exits only after a drain has begun and all
        // connection threads have been joined, so waiting on it both
        // waits for the trigger and finishes the cleanup.
        if let Some(h) = self.accept_thread.take() {
            h.join()
                .map_err(|_| StoreError::Corruption("accept thread panicked".to_string()))?;
        }
        self.shared.store.flush()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        shared.connections.inc();
        shared.active.add(1);
        if let Ok(read_half) = stream.try_clone() {
            shared.live.lock().unwrap().insert(conn_id, read_half);
        }
        spawn_connection(&shared, conn_id, stream);
    }
    // Drain: join every connection thread so `stop` returning means no
    // request is still in flight anywhere.
    let threads = std::mem::take(&mut *shared.threads.lock().unwrap());
    for t in threads {
        let _ = t.join();
    }
}

fn spawn_connection(shared: &Arc<Shared>, conn_id: u64, stream: TcpStream) {
    let (tx, rx) = sync_channel::<ConnEvent>(shared.queue_depth);
    let reader_shared = Arc::clone(shared);
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.active.add(-1);
            shared.live.lock().unwrap().remove(&conn_id);
            return;
        }
    };
    // Small stacks: with thousands of connections (two threads each)
    // the default 8 MiB stacks would reserve absurd address space.
    let reader = std::thread::Builder::new()
        .name(format!("gadget-conn-{conn_id}-r"))
        .stack_size(256 * 1024)
        .spawn(move || reader_loop(reader_stream, tx, reader_shared));
    let worker_shared = Arc::clone(shared);
    let worker = std::thread::Builder::new()
        .name(format!("gadget-conn-{conn_id}-w"))
        .stack_size(256 * 1024)
        .spawn(move || worker_loop(stream, rx, conn_id, worker_shared));
    let mut threads = shared.threads.lock().unwrap();
    if let Ok(h) = reader {
        threads.push(h);
    }
    if let Ok(h) = worker {
        threads.push(h);
    }
}

/// Pulls frames off the socket into the bounded queue. Exits on EOF,
/// socket error, or the first malformed frame (forwarded so the worker
/// can answer it before closing).
fn reader_loop(stream: TcpStream, tx: SyncSender<ConnEvent>, shared: Arc<Shared>) {
    let mut reader = BufReader::new(stream);
    loop {
        match wire::read_frame(&mut reader) {
            Ok(frame) => {
                shared.bytes_in.add(frame.encoded_len() as u64);
                shared.inflight.add(1);
                // Queue-enter stamp for traced requests only; the
                // untraced hot path pays no clock read here.
                let recv_ns = match &frame {
                    Frame::Request { trace: Some(_), .. } => trace::now_ns(),
                    _ => 0,
                };
                if tx.send(ConnEvent::Frame(frame, recv_ns)).is_err() {
                    shared.inflight.add(-1);
                    break;
                }
            }
            Err(WireError::Truncated) => break, // EOF / drain
            Err(WireError::Io(_)) => break,
            Err(e) => {
                let _ = tx.send(ConnEvent::Malformed(e));
                break;
            }
        }
    }
    // Dropping `tx` lets the worker drain the queue and exit.
}

/// Applies queued requests to the store and writes replies in order.
fn worker_loop(stream: TcpStream, rx: Receiver<ConnEvent>, conn_id: u64, shared: Arc<Shared>) {
    let mut writer = BufWriter::new(stream);
    while let Ok(event) = rx.recv() {
        let mut reply = match event {
            ConnEvent::Frame(
                Frame::Request {
                    id,
                    ops,
                    trace: None,
                },
                _,
            ) => {
                shared.requests.inc();
                shared.ops.add(ops.len() as u64);
                let result = {
                    let _span = span(Category::NetRequest, conn_id);
                    shared.store.apply_batch(&ops)
                };
                match result {
                    Ok(results) => Frame::Response {
                        id,
                        results,
                        trace: None,
                    },
                    Err(e) => {
                        let (code, message) = wire::encode_store_error(&e);
                        Frame::Error { id, code, message }
                    }
                }
            }
            ConnEvent::Frame(
                Frame::Request {
                    id,
                    ops,
                    trace: Some(ctx),
                },
                recv_ns,
            ) => {
                // Traced request: stamp the server-side timeline and
                // echo it in the reply. `send_ns` is stamped at the
                // last moment before the frame hits the wire (below),
                // and the spans are recorded after the flush so the
                // response-write segment is complete.
                shared.requests.inc();
                shared.ops.add(ops.len() as u64);
                let dequeue_ns = trace::now_ns();
                let result = shared.store.apply_batch(&ops);
                let apply_dur_ns = trace::now_ns().saturating_sub(dequeue_ns);
                match result {
                    Ok(results) => Frame::Response {
                        id,
                        results,
                        trace: Some(ReplyTrace {
                            seq: ctx.seq,
                            client_send_ns: ctx.send_ns,
                            recv_ns,
                            dequeue_ns,
                            apply_dur_ns,
                            send_ns: 0, // stamped just before the write
                        }),
                    },
                    Err(e) => {
                        let (code, message) = wire::encode_store_error(&e);
                        Frame::Error { id, code, message }
                    }
                }
            }
            ConnEvent::Frame(Frame::Shutdown { id }, _) => {
                // Ack first so the requester sees the drain begin, then
                // trigger it (which EOFs our own reader too).
                let ack = Frame::Shutdown { id };
                shared.inflight.add(-1);
                if wire::write_frame(&mut writer, &ack).is_ok() {
                    shared.bytes_out.add(ack.encoded_len() as u64);
                    let _ = writer.flush();
                }
                shared.begin_shutdown();
                continue;
            }
            ConnEvent::Frame(
                Frame::Reshard {
                    id,
                    from,
                    to,
                    at_op,
                },
                _,
            ) => {
                // Runs on this connection's worker thread: a dedicated
                // control connection reshards without stalling traffic
                // connections, whose workers keep applying batches
                // against the open transfer window.
                match shared.sharded.as_ref() {
                    Some(sharded) => match sharded.reshard(from as usize, to as usize, at_op) {
                        Ok(event) => Frame::ReshardDone { id, event },
                        Err(e) => {
                            let (code, message) = wire::encode_store_error(&e);
                            Frame::Error { id, code, message }
                        }
                    },
                    None => Frame::Error {
                        id,
                        code: wire::ErrorCode::Config,
                        message: "server is not fronting a sharded store".to_string(),
                    },
                }
            }
            ConnEvent::Frame(Frame::Topology { id }, _) => match shared.sharded.as_ref() {
                Some(sharded) => {
                    let router = sharded.router();
                    Frame::TopologyInfo {
                        id,
                        shards: sharded.shard_count() as u32,
                        map_version: router.version(),
                        digest: router.digest(),
                        events: sharded.reshard_events(),
                    }
                }
                None => {
                    // An unsharded store is a fixed one-shard topology.
                    let trivial = SlotTable::identity(1);
                    Frame::TopologyInfo {
                        id,
                        shards: 1,
                        map_version: trivial.version(),
                        digest: trivial.digest(),
                        events: Vec::new(),
                    }
                }
            },
            ConnEvent::Frame(Frame::Checkpoint { id, dir }, _) => {
                // Runs on this connection's worker like a reshard: a
                // dedicated control connection checkpoints while traffic
                // connections keep applying batches (each backend's
                // checkpoint takes its own consistent cut internally).
                // The directory is server-local by design — checkpoint
                // bytes never cross the wire, only the manifest summary.
                match shared.store.checkpoint(std::path::Path::new(&dir)) {
                    Ok(manifest) => Frame::CheckpointDone {
                        id,
                        files: manifest.files.len() as u64,
                        total_bytes: manifest.total_bytes,
                        reused: manifest.reused_files,
                    },
                    Err(e) => {
                        let (code, message) = wire::encode_store_error(&e);
                        Frame::Error { id, code, message }
                    }
                }
            }
            ConnEvent::Frame(Frame::Restore { id, dir }, _) => {
                match shared.store.restore(std::path::Path::new(&dir)) {
                    Ok(()) => Frame::RestoreDone { id },
                    Err(e) => {
                        let (code, message) = wire::encode_store_error(&e);
                        Frame::Error { id, code, message }
                    }
                }
            }
            ConnEvent::Frame(other, _) => {
                // Clients must not send server-kind frames.
                let id = other.id();
                Frame::Error {
                    id,
                    code: wire::ErrorCode::InvalidArgument,
                    message: "unexpected frame kind from client".to_string(),
                }
            }
            ConnEvent::Malformed(e) => {
                let reply = Frame::Error {
                    id: 0,
                    code: wire::ErrorCode::InvalidArgument,
                    message: format!("malformed frame: {e}"),
                };
                if wire::write_frame(&mut writer, &reply).is_ok() {
                    shared.bytes_out.add(reply.encoded_len() as u64);
                    let _ = writer.flush();
                }
                break;
            }
        };
        shared.inflight.add(-1);
        // Traced replies get their send timestamp at the last moment
        // before the bytes leave, so the client's return-path segment
        // excludes none of the write.
        let traced = match &mut reply {
            Frame::Response { trace: Some(t), .. } => {
                t.send_ns = trace::now_ns();
                Some(*t)
            }
            _ => None,
        };
        if wire::write_frame(&mut writer, &reply).is_err() {
            break;
        }
        shared.bytes_out.add(reply.encoded_len() as u64);
        if writer.flush().is_err() {
            break;
        }
        if let Some(t) = traced {
            // Child spans of the request, keyed (conn, seq): queue
            // wait, store apply, response write, and the whole-request
            // envelope. Recorded only while a trace session runs.
            let write_end = trace::now_ns();
            record_complete2(
                Category::NetQueue,
                conn_id,
                t.seq,
                t.recv_ns,
                t.dequeue_ns.saturating_sub(t.recv_ns),
            );
            record_complete2(
                Category::NetApply,
                conn_id,
                t.seq,
                t.dequeue_ns,
                t.apply_dur_ns,
            );
            record_complete2(
                Category::NetWrite,
                conn_id,
                t.seq,
                t.send_ns,
                write_end.saturating_sub(t.send_ns),
            );
            record_complete2(
                Category::NetRequest,
                conn_id,
                t.seq,
                t.recv_ns,
                write_end.saturating_sub(t.recv_ns),
            );
        }
    }
    shared.active.add(-1);
    shared.live.lock().unwrap().remove(&conn_id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadget_kv::MemStore;

    use crate::client::NetStore;

    fn serve_mem() -> Server {
        Server::start(
            "127.0.0.1:0",
            Arc::new(MemStore::new()),
            ServerConfig::default(),
        )
        .expect("bind loopback")
    }

    #[test]
    fn serves_basic_operations_over_loopback() {
        let server = serve_mem();
        let store = NetStore::connect(&server.local_addr().to_string()).unwrap();
        store.put(b"k", b"v").unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
        store.merge(b"k", b"w").unwrap();
        assert_eq!(store.get(b"k").unwrap().as_deref(), Some(&b"vw"[..]));
        store.delete(b"k").unwrap();
        assert_eq!(store.get(b"k").unwrap(), None);
        server.stop().unwrap();
    }

    /// The tentpole's loopback acceptance check at unit scale: with
    /// client tracing armed, the four decomposition segments must sum
    /// to (nearly) the measured end-to-end latency — the telescoping
    /// identity holds sample-by-sample up to negative-clamp slack, so
    /// the *means* must agree within the 5% budget, and the offset
    /// estimate between two threads of one process must be small
    /// relative to the observed round trips.
    #[test]
    fn traced_loopback_decomposition_sums_to_end_to_end() {
        let server = serve_mem();
        let store = NetStore::connect(&server.local_addr().to_string()).unwrap();
        store.enable_tracing(7);
        for i in 0u32..400 {
            let key = i.to_le_bytes().to_vec();
            store.put(&key, b"value").unwrap();
            store.get(&key).unwrap();
        }
        let decomp = store.decomposition().expect("tracing was enabled");
        assert_eq!(decomp.conn, 7);
        assert_eq!(decomp.samples, 800);
        let mean = |name: &str| {
            decomp
                .segments
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, h)| h.mean())
                .expect("segment present")
        };
        let sum: f64 = ["client_queue", "outbound", "service", "return_path"]
            .iter()
            .map(|n| mean(n))
            .sum();
        let e2e = mean("end_to_end");
        assert!(e2e > 0.0, "loopback round trips take nonzero time");
        let dev = (sum - e2e).abs() / e2e;
        assert!(
            dev < 0.05,
            "segment means sum to {sum:.0}ns vs end-to-end {e2e:.0}ns ({dev:.3} off)"
        );
        // Same process, same monotonic clock: the estimated offset is
        // bounded by the wire floor, not by epoch skew.
        let offset = decomp.offset_ns.expect("samples were recorded");
        let floor = decomp.min_rtt_ns.expect("samples were recorded");
        assert!(
            offset.unsigned_abs() <= floor.max(1),
            "offset {offset}ns exceeds min RTT {floor}ns"
        );
        server.stop().unwrap();
    }

    /// A store whose writes always fail, for error-path testing.
    struct RejectingStore(MemStore);

    impl StateStore for RejectingStore {
        fn name(&self) -> &'static str {
            "rejecting"
        }
        fn get(&self, key: &[u8]) -> Result<Option<bytes::Bytes>, StoreError> {
            self.0.get(key)
        }
        fn put(&self, _key: &[u8], _value: &[u8]) -> Result<(), StoreError> {
            Err(StoreError::InvalidArgument("writes rejected".to_string()))
        }
        fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
            self.0.merge(key, operand)
        }
        fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
            self.0.delete(key)
        }
    }

    #[test]
    fn server_errors_come_back_typed() {
        let server = Server::start(
            "127.0.0.1:0",
            Arc::new(RejectingStore(MemStore::new())),
            ServerConfig::default(),
        )
        .unwrap();
        let store = NetStore::connect(&server.local_addr().to_string()).unwrap();
        let err = store.put(b"k", b"v").unwrap_err();
        assert!(
            matches!(err, StoreError::InvalidArgument(_)),
            "got: {err:?}"
        );
        // The connection survives an application-level error.
        assert_eq!(store.get(b"k").unwrap(), None);
        server.stop().unwrap();
    }

    #[test]
    fn many_concurrent_connections_see_consistent_state() {
        let server = serve_mem();
        let addr = server.local_addr().to_string();
        std::thread::scope(|s| {
            for t in 0..8 {
                let addr = &addr;
                s.spawn(move || {
                    let store = NetStore::connect(addr).unwrap();
                    for i in 0..50 {
                        let key = format!("t{t}-k{i}");
                        store.put(key.as_bytes(), key.as_bytes()).unwrap();
                        assert_eq!(
                            store.get(key.as_bytes()).unwrap().as_deref(),
                            Some(key.as_bytes())
                        );
                    }
                });
            }
        });
        let snap = server.metrics();
        assert_eq!(snap.counter("net_connections"), Some(8));
        assert!(snap.counter("net_requests").unwrap() >= 8 * 100);
        server.stop().unwrap();
    }

    #[test]
    fn wire_shutdown_drains_and_unblocks_join() {
        let server = serve_mem();
        let addr = server.local_addr().to_string();
        let store = NetStore::connect(&addr).unwrap();
        store.put(b"a", b"1").unwrap();
        store.shutdown_server().unwrap();
        // join() returns because the wire frame triggered the drain.
        server.join().unwrap();
        // New connections are refused or die immediately after drain.
        let refused = match NetStore::connect(&addr) {
            Err(_) => true,
            Ok(s) => s.put(b"b", b"2").is_err(),
        };
        assert!(refused, "server still serving after shutdown");
    }

    #[test]
    fn wire_reshard_splits_a_sharded_store_under_traffic() {
        let sharded = Arc::new(
            ShardedStore::from_factory(4, |_| Ok(Arc::new(MemStore::new()) as Arc<dyn StateStore>))
                .unwrap(),
        );
        let server =
            Server::start_sharded("127.0.0.1:0", sharded, ServerConfig::default()).unwrap();
        let addr = server.local_addr().to_string();

        let control = NetStore::connect(&addr).unwrap();
        let before = control.topology().unwrap();
        assert_eq!(before.shards, 4);
        assert_eq!(before.map_version, 1);
        assert!(before.events.is_empty());

        // Traffic on a second connection while the control connection
        // splits shard 0 into a brand-new shard 4.
        let traffic = NetStore::connect(&addr).unwrap();
        for i in 0..300u64 {
            traffic.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let stop = stop.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                let conn = NetStore::connect(&addr).unwrap();
                let mut writes = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for i in 0..300u64 {
                        conn.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
                        writes += 1;
                    }
                }
                writes
            })
        };
        let event = control.reshard(0, 4, 300).unwrap();
        stop.store(true, Ordering::Relaxed);
        let writes = writer.join().unwrap();
        assert!(writes > 0, "writer made progress during the migration");
        assert_eq!(event.from, 0);
        assert_eq!(event.to, 4);
        assert_eq!(event.at_op, 300);
        assert!(event.keys > 0);

        let after = control.topology().unwrap();
        assert_eq!(after.shards, 5);
        assert_eq!(after.map_version, 2);
        assert_ne!(after.digest, before.digest);
        assert_eq!(after.events, vec![event]);
        assert_eq!(after.digest_hex().len(), 16);

        // Zero lost ops: every key reads back through the new topology.
        for i in 0..300u64 {
            assert_eq!(
                traffic.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(&i.to_le_bytes()[..]),
                "key {i} lost in migration"
            );
        }
        server.stop().unwrap();
    }

    #[test]
    fn wire_checkpoint_and_restore_round_trip_server_side() {
        let server = serve_mem();
        let store = NetStore::connect(&server.local_addr().to_string()).unwrap();
        for i in 0..100u64 {
            store.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        let dir = std::env::temp_dir().join(format!("gadget-net-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let summary = store
            .checkpoint_server(&dir.to_string_lossy())
            .expect("server-side checkpoint");
        assert!(summary.files > 0);
        assert!(summary.total_bytes > 0);
        // Diverge, then restore to the cut — all server-side.
        for i in 0..100u64 {
            store.put(&i.to_be_bytes(), b"diverged").unwrap();
        }
        store.restore_server(&dir.to_string_lossy()).unwrap();
        for i in 0..100u64 {
            assert_eq!(
                store.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(&i.to_le_bytes()[..]),
                "key {i}"
            );
        }
        // A bad directory surfaces as a typed error, not a dead conn.
        let err = store.restore_server("/nonexistent/ckpt").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)), "got {err:?}");
        assert!(store.get(&1u64.to_be_bytes()).unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
        server.stop().unwrap();
    }

    #[test]
    fn wire_reshard_against_unsharded_store_is_a_typed_error() {
        let server = serve_mem();
        let store = NetStore::connect(&server.local_addr().to_string()).unwrap();
        let err = store.reshard(0, 1, 0).unwrap_err();
        assert!(matches!(err, StoreError::Config(_)), "got {err:?}");
        // Topology still answers: one shard, no history.
        let topo = store.topology().unwrap();
        assert_eq!(topo.shards, 1);
        assert!(topo.events.is_empty());
        server.stop().unwrap();
    }

    #[test]
    fn malformed_bytes_get_an_error_frame_not_a_crash() {
        use std::io::{Read, Write};
        let server = serve_mem();
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        raw.flush().unwrap();
        let mut buf = Vec::new();
        raw.read_to_end(&mut buf).ok();
        let frame = wire::decode(&buf).expect("server answered with a frame");
        assert!(
            matches!(frame, Frame::Error { .. }),
            "expected error frame, got {frame:?}"
        );
        // The server is still healthy for well-formed clients.
        let store = NetStore::connect(&server.local_addr().to_string()).unwrap();
        store.put(b"x", b"y").unwrap();
        server.stop().unwrap();
    }
}
