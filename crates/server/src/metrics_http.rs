//! Minimal HTTP endpoint exposing metrics in Prometheus text format.
//!
//! `gadget serve --metrics-addr 127.0.0.1:9100` starts one of these
//! alongside the wire-protocol listener; `curl` or any Prometheus
//! scraper then reads the merged server + store snapshot from any
//! path. The HTTP support is deliberately tiny — read one request,
//! answer `200` with `text/plain; version=0.0.4`, close — because the
//! only client that matters speaks exactly that much HTTP.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use gadget_obs::{openmetrics, MetricsSnapshot};

/// Produces the snapshot served on each scrape.
pub type SnapshotFn = dyn Fn() -> MetricsSnapshot + Send + Sync;

/// A running metrics endpoint.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and serves `source()` to every HTTP request.
    pub fn start(addr: impl ToSocketAddrs, source: Arc<SnapshotFn>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("gadget-metrics".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if thread_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        let _ = serve_one(stream, &source);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and waits for its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Answers one scrape: drain the request head, write the exposition.
fn serve_one(mut stream: TcpStream, source: &Arc<SnapshotFn>) -> io::Result<()> {
    // Read until the end of the request head (or the peer stops
    // sending). The request itself is irrelevant: every path serves
    // the same document, exactly like a single-purpose exporter.
    let mut head = [0u8; 1024];
    let mut read = 0;
    while read < head.len() {
        let n = stream.read(&mut head[read..])?;
        if n == 0 {
            break;
        }
        read += n;
        if head[..read].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let body = openmetrics::render(&source());
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scrapes `addr` with a raw HTTP GET, returning (status line, body).
    fn scrape(addr: SocketAddr) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn scrape_parses_as_prometheus_exposition() {
        let server = MetricsServer::start("127.0.0.1:0", {
            Arc::new(|| {
                let mut snap = MetricsSnapshot::new();
                snap.push_counter("net_requests", 42);
                snap.push_gauge("net_active_connections", 3);
                snap
            })
        })
        .unwrap();

        let (status, body) = scrape(server.local_addr());
        assert_eq!(status, "HTTP/1.1 200 OK");

        // Parse the exposition: every non-comment line must be
        // `name[{labels}] value`, and our series must be present.
        let mut series = std::collections::HashMap::new();
        for line in body.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("sample line shape");
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_:{}=\"+.".contains(c)),
                "bad metric name: {name}"
            );
            series.insert(name.to_string(), value.to_string());
        }
        assert_eq!(
            series.get("gadget_net_requests").map(String::as_str),
            Some("42")
        );
        assert_eq!(
            series
                .get("gadget_net_active_connections")
                .map(String::as_str),
            Some("3")
        );
        assert!(body.contains("# TYPE gadget_net_requests counter"));
        assert!(
            body.ends_with("# EOF\n"),
            "scrape must carry the OpenMetrics terminator"
        );

        // Scrapes are repeatable (fresh connection each time).
        let (status, _) = scrape(server.local_addr());
        assert_eq!(status, "HTTP/1.1 200 OK");
        server.stop();
    }
}
