//! Wire-protocol robustness properties.
//!
//! Two invariants hold for every frame the protocol can express:
//!
//! 1. **Canonical round-trip** — `decode(frame.encode())` returns an
//!    equal frame, and re-encoding it reproduces the original bytes
//!    exactly. The encoding is a bijection on its image, which is what
//!    lets the equivalence tests compare server and embedded runs
//!    without worrying about codec drift.
//! 2. **Strict rejection** — truncations, trailing garbage, flipped
//!    version/kind/tag bytes, and oversized length fields all come back
//!    as typed [`WireError`]s. Decoding arbitrary attacker-controlled
//!    bytes must never panic or allocate unboundedly.

use bytes::Bytes;
use gadget_kv::BatchResult;
use gadget_server::wire::{
    self, ErrorCode, Frame, ReplyTrace, TraceContext, WireError, MAX_PAYLOAD,
};
use gadget_types::Op;
use proptest::prelude::*;

/// (kind, key, payload length) triples decoded into ops; payload bytes
/// derive from the op index so the strategy stays cheap.
fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..64, 0u8..48), 0..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, key, len))| {
                let key = vec![key, (i % 251) as u8];
                let payload = vec![(i * 17 + 3) as u8; len as usize];
                match kind {
                    0 => Op::get(key),
                    1 => Op::put(key, payload),
                    2 => Op::merge(key, payload),
                    _ => Op::delete(key),
                }
            })
            .collect()
    })
}

/// (tag, value length) pairs decoded into batch results.
fn results() -> impl Strategy<Value = Vec<BatchResult>> {
    proptest::collection::vec((0u8..3, 0u8..48), 0..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (tag, len))| match tag {
                0 => BatchResult::Applied,
                1 => BatchResult::Value(None),
                _ => BatchResult::Value(Some(Bytes::from(vec![(i * 13) as u8; len as usize]))),
            })
            .collect()
    })
}

/// One frame of any kind, with ids across the u64 range. Kinds 4 and 5
/// are the v3-traced twins of Request and Response, with trace words
/// derived from `id` so the strategy stays cheap.
fn frames() -> impl Strategy<Value = Frame> {
    (0u8..6, any::<u64>(), ops(), results(), 0u8..5, 0u8..40).prop_map(
        |(kind, id, ops, results, code, msg_len)| match kind {
            0 => Frame::Request {
                id,
                ops,
                trace: None,
            },
            1 => Frame::Response {
                id,
                results,
                trace: None,
            },
            2 => Frame::Error {
                id,
                code: match code {
                    0 => ErrorCode::Io,
                    1 => ErrorCode::Corruption,
                    2 => ErrorCode::Closed,
                    3 => ErrorCode::InvalidArgument,
                    _ => ErrorCode::Unsupported,
                },
                message: "e".repeat(msg_len as usize),
            },
            3 => Frame::Shutdown { id },
            4 => Frame::Request {
                id,
                ops,
                trace: Some(TraceContext {
                    seq: id ^ 0x9E37_79B9_7F4A_7C15,
                    send_ns: id.wrapping_mul(31),
                }),
            },
            _ => Frame::Response {
                id,
                results,
                trace: Some(ReplyTrace {
                    seq: id,
                    client_send_ns: id.wrapping_add(1),
                    recv_ns: id.wrapping_add(2),
                    dequeue_ns: id.wrapping_add(3),
                    apply_dur_ns: id % 1_000_000,
                    send_ns: id.wrapping_add(5),
                }),
            },
        },
    )
}

proptest! {
    #[test]
    fn encode_decode_is_byte_identical(frame in frames()) {
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let decoded = wire::decode(&bytes).expect("canonical encoding decodes");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error(frame in frames(), cut_ppm in 0u32..1_000_000) {
        let bytes = frame.encode();
        // Cut somewhere strictly inside the frame.
        let cut = (bytes.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let err = wire::decode(&bytes[..cut.min(bytes.len() - 1)]).unwrap_err();
        prop_assert!(
            matches!(err, WireError::Truncated),
            "cut at {} of {}: {:?}", cut, bytes.len(), err
        );
    }

    #[test]
    fn trailing_bytes_are_rejected(frame in frames(), extra in 1u8..32) {
        let mut bytes = frame.encode();
        bytes.extend(std::iter::repeat_n(0xAB, extra as usize));
        let err = wire::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, WireError::Trailing(_)), "{err:?}");
    }

    #[test]
    fn wrong_version_is_rejected(frame in frames(), version in 0u8..255) {
        // Skip every version the decoder accepts (1..=VERSION), not
        // just the current one: stamping a *supported* older version
        // on these bytes is an interop case, not a rejection case.
        if wire::version_supported(version) {
            continue;
        }
        let mut bytes = frame.encode();
        bytes[2] = version;
        let err = wire::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, WireError::BadVersion(v) if v == version), "{err:?}");
    }

    #[test]
    fn trace_extension_strips_to_the_untraced_v2_encoding(frame in frames()) {
        // Interop: a traced frame minus its extension, re-stamped with
        // the untraced version and a fixed-up length, must be
        // byte-identical to encoding the same frame with no trace —
        // v2 and v3 peers agree on every untraced byte, and untraced
        // frames never stamp v3.
        let (untraced, ext_len) = match frame.clone() {
            Frame::Request { id, ops, trace: Some(_) } => (
                Frame::Request { id, ops, trace: None },
                wire::REQUEST_TRACE_LEN,
            ),
            Frame::Response { id, results, trace: Some(_) } => (
                Frame::Response { id, results, trace: None },
                wire::REPLY_TRACE_LEN,
            ),
            other => {
                prop_assert_eq!(other.encode()[2], wire::VERSION_UNTRACED);
                continue;
            }
        };
        let mut bytes = frame.encode();
        prop_assert_eq!(bytes[2], wire::VERSION);
        bytes.truncate(bytes.len() - ext_len);
        bytes[2] = wire::VERSION_UNTRACED;
        let len = (bytes.len() - 16) as u32;
        bytes[12..16].copy_from_slice(&len.to_le_bytes());
        prop_assert_eq!(&bytes, &untraced.encode());
        prop_assert_eq!(wire::decode(&bytes).expect("stripped frame decodes"), untraced);
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation(frame in frames(), over in 1u32..1_000) {
        let mut bytes = frame.encode();
        bytes[12..16].copy_from_slice(&(MAX_PAYLOAD + over).to_le_bytes());
        let err = wire::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, WireError::Oversized(_)), "{err:?}");
    }

    #[test]
    fn arbitrary_bytes_never_panic(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking or aborting is not.
        let _ = wire::decode(&noise);
    }

    #[test]
    fn flipped_byte_never_panics(frame in frames(), pos_ppm in 0u32..1_000_000, xor in 1u8..=255) {
        let mut bytes = frame.encode();
        let pos = (bytes.len() as u64 * pos_ppm as u64 / 1_000_000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= xor;
        // Either it still decodes (flip hit payload filler) or it is a
        // typed error — never a panic.
        let _ = wire::decode(&bytes);
    }
}
