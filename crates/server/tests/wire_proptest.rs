//! Wire-protocol robustness properties.
//!
//! Two invariants hold for every frame the protocol can express:
//!
//! 1. **Canonical round-trip** — `decode(frame.encode())` returns an
//!    equal frame, and re-encoding it reproduces the original bytes
//!    exactly. The encoding is a bijection on its image, which is what
//!    lets the equivalence tests compare server and embedded runs
//!    without worrying about codec drift.
//! 2. **Strict rejection** — truncations, trailing garbage, flipped
//!    version/kind/tag bytes, and oversized length fields all come back
//!    as typed [`WireError`]s. Decoding arbitrary attacker-controlled
//!    bytes must never panic or allocate unboundedly.

use bytes::Bytes;
use gadget_kv::BatchResult;
use gadget_server::wire::{self, ErrorCode, Frame, WireError, MAX_PAYLOAD};
use gadget_types::Op;
use proptest::prelude::*;

/// (kind, key, payload length) triples decoded into ops; payload bytes
/// derive from the op index so the strategy stays cheap.
fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..4, 0u8..64, 0u8..48), 0..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (kind, key, len))| {
                let key = vec![key, (i % 251) as u8];
                let payload = vec![(i * 17 + 3) as u8; len as usize];
                match kind {
                    0 => Op::get(key),
                    1 => Op::put(key, payload),
                    2 => Op::merge(key, payload),
                    _ => Op::delete(key),
                }
            })
            .collect()
    })
}

/// (tag, value length) pairs decoded into batch results.
fn results() -> impl Strategy<Value = Vec<BatchResult>> {
    proptest::collection::vec((0u8..3, 0u8..48), 0..40).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (tag, len))| match tag {
                0 => BatchResult::Applied,
                1 => BatchResult::Value(None),
                _ => BatchResult::Value(Some(Bytes::from(vec![(i * 13) as u8; len as usize]))),
            })
            .collect()
    })
}

/// One frame of any kind, with ids across the u64 range.
fn frames() -> impl Strategy<Value = Frame> {
    (0u8..4, any::<u64>(), ops(), results(), 0u8..5, 0u8..40).prop_map(
        |(kind, id, ops, results, code, msg_len)| match kind {
            0 => Frame::Request { id, ops },
            1 => Frame::Response { id, results },
            2 => Frame::Error {
                id,
                code: match code {
                    0 => ErrorCode::Io,
                    1 => ErrorCode::Corruption,
                    2 => ErrorCode::Closed,
                    3 => ErrorCode::InvalidArgument,
                    _ => ErrorCode::Unsupported,
                },
                message: "e".repeat(msg_len as usize),
            },
            _ => Frame::Shutdown { id },
        },
    )
}

proptest! {
    #[test]
    fn encode_decode_is_byte_identical(frame in frames()) {
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), frame.encoded_len());
        let decoded = wire::decode(&bytes).expect("canonical encoding decodes");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn truncation_at_any_point_is_a_typed_error(frame in frames(), cut_ppm in 0u32..1_000_000) {
        let bytes = frame.encode();
        // Cut somewhere strictly inside the frame.
        let cut = (bytes.len() as u64 * cut_ppm as u64 / 1_000_000) as usize;
        let err = wire::decode(&bytes[..cut.min(bytes.len() - 1)]).unwrap_err();
        prop_assert!(
            matches!(err, WireError::Truncated),
            "cut at {} of {}: {:?}", cut, bytes.len(), err
        );
    }

    #[test]
    fn trailing_bytes_are_rejected(frame in frames(), extra in 1u8..32) {
        let mut bytes = frame.encode();
        bytes.extend(std::iter::repeat_n(0xAB, extra as usize));
        let err = wire::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, WireError::Trailing(_)), "{err:?}");
    }

    #[test]
    fn wrong_version_is_rejected(frame in frames(), version in 0u8..255) {
        if version == wire::VERSION {
            continue;
        }
        let mut bytes = frame.encode();
        bytes[2] = version;
        let err = wire::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, WireError::BadVersion(v) if v == version), "{err:?}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation(frame in frames(), over in 1u32..1_000) {
        let mut bytes = frame.encode();
        bytes[12..16].copy_from_slice(&(MAX_PAYLOAD + over).to_le_bytes());
        let err = wire::decode(&bytes).unwrap_err();
        prop_assert!(matches!(err, WireError::Oversized(_)), "{err:?}");
    }

    #[test]
    fn arbitrary_bytes_never_panic(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Any outcome is fine; panicking or aborting is not.
        let _ = wire::decode(&noise);
    }

    #[test]
    fn flipped_byte_never_panics(frame in frames(), pos_ppm in 0u32..1_000_000, xor in 1u8..=255) {
        let mut bytes = frame.encode();
        let pos = (bytes.len() as u64 * pos_ppm as u64 / 1_000_000) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= xor;
        // Either it still decodes (flip hit payload filler) or it is a
        // typed error — never a panic.
        let _ = wire::decode(&bytes);
    }
}
