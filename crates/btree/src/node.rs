//! B+Tree node representation and page (de)serialization.

use std::io;

/// Fixed page size of the data file.
pub const PAGE_SIZE: usize = 4096;

/// Page kind tags.
pub const KIND_INTERNAL: u8 = 1;
/// Leaf page tag.
pub const KIND_LEAF: u8 = 2;
/// Overflow page tag.
pub const KIND_OVERFLOW: u8 = 3;

/// A value stored in a leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafValue {
    /// Small value stored inline in the leaf page.
    Inline(Vec<u8>),
    /// Large value stored in an overflow page chain.
    Overflow {
        /// Total value length in bytes.
        len: u32,
        /// First overflow page id.
        head: u32,
    },
}

impl LeafValue {
    fn encoded_size(&self) -> usize {
        match self {
            LeafValue::Inline(v) => 1 + 2 + v.len(),
            LeafValue::Overflow { .. } => 1 + 4 + 4,
        }
    }
}

/// A decoded B+Tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Router node: `children.len() == keys.len() + 1`; keys separate the
    /// children (`child[i]` covers keys `< keys[i]`).
    Internal {
        /// Separator keys, sorted.
        keys: Vec<Vec<u8>>,
        /// Child page ids.
        children: Vec<u32>,
    },
    /// Leaf node: sorted `(key, value)` entries plus a right-sibling link.
    Leaf {
        /// Sorted entries.
        entries: Vec<(Vec<u8>, LeafValue)>,
        /// Right sibling page id (0 = none).
        next: u32,
    },
}

impl Node {
    /// Bytes this node would occupy when encoded (page header included).
    pub fn encoded_size(&self) -> usize {
        match self {
            Node::Internal { keys, children } => {
                1 + 2 + children.len() * 4 + keys.iter().map(|k| 1 + k.len()).sum::<usize>()
            }
            Node::Leaf { entries, .. } => {
                1 + 2
                    + 4
                    + entries
                        .iter()
                        .map(|(k, v)| 1 + k.len() + v.encoded_size())
                        .sum::<usize>()
            }
        }
    }

    /// Encodes the node into a fixed-size page buffer.
    ///
    /// # Panics
    ///
    /// Panics if the node exceeds [`PAGE_SIZE`]; callers must split first.
    pub fn encode(&self) -> [u8; PAGE_SIZE] {
        assert!(
            self.encoded_size() <= PAGE_SIZE,
            "node of {} bytes exceeds page size",
            self.encoded_size()
        );
        let mut page = [0u8; PAGE_SIZE];
        let mut p = 0usize;
        match self {
            Node::Internal { keys, children } => {
                page[p] = KIND_INTERNAL;
                p += 1;
                page[p..p + 2].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                p += 2;
                for c in children {
                    page[p..p + 4].copy_from_slice(&c.to_le_bytes());
                    p += 4;
                }
                for k in keys {
                    page[p] = k.len() as u8;
                    p += 1;
                    page[p..p + k.len()].copy_from_slice(k);
                    p += k.len();
                }
            }
            Node::Leaf { entries, next } => {
                page[p] = KIND_LEAF;
                p += 1;
                page[p..p + 2].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                p += 2;
                page[p..p + 4].copy_from_slice(&next.to_le_bytes());
                p += 4;
                for (k, v) in entries {
                    page[p] = k.len() as u8;
                    p += 1;
                    page[p..p + k.len()].copy_from_slice(k);
                    p += k.len();
                    match v {
                        LeafValue::Inline(data) => {
                            page[p] = 0;
                            p += 1;
                            page[p..p + 2].copy_from_slice(&(data.len() as u16).to_le_bytes());
                            p += 2;
                            page[p..p + data.len()].copy_from_slice(data);
                            p += data.len();
                        }
                        LeafValue::Overflow { len, head } => {
                            page[p] = 1;
                            p += 1;
                            page[p..p + 4].copy_from_slice(&len.to_le_bytes());
                            p += 4;
                            page[p..p + 4].copy_from_slice(&head.to_le_bytes());
                            p += 4;
                        }
                    }
                }
            }
        }
        page
    }

    /// Decodes a page buffer back into a node.
    pub fn decode(page: &[u8]) -> io::Result<Node> {
        let bad = || io::Error::new(io::ErrorKind::InvalidData, "corrupt btree page");
        if page.len() != PAGE_SIZE {
            return Err(bad());
        }
        let mut p = 0usize;
        let kind = page[p];
        p += 1;
        match kind {
            KIND_INTERNAL => {
                let nkeys = u16::from_le_bytes(page[p..p + 2].try_into().unwrap()) as usize;
                p += 2;
                let mut children = Vec::with_capacity(nkeys + 1);
                for _ in 0..nkeys + 1 {
                    children.push(u32::from_le_bytes(page[p..p + 4].try_into().unwrap()));
                    p += 4;
                }
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    let klen = page[p] as usize;
                    p += 1;
                    if p + klen > PAGE_SIZE {
                        return Err(bad());
                    }
                    keys.push(page[p..p + klen].to_vec());
                    p += klen;
                }
                Ok(Node::Internal { keys, children })
            }
            KIND_LEAF => {
                let nentries = u16::from_le_bytes(page[p..p + 2].try_into().unwrap()) as usize;
                p += 2;
                let next = u32::from_le_bytes(page[p..p + 4].try_into().unwrap());
                p += 4;
                let mut entries = Vec::with_capacity(nentries);
                for _ in 0..nentries {
                    let klen = page[p] as usize;
                    p += 1;
                    if p + klen + 1 > PAGE_SIZE {
                        return Err(bad());
                    }
                    let key = page[p..p + klen].to_vec();
                    p += klen;
                    let tag = page[p];
                    p += 1;
                    let value = match tag {
                        0 => {
                            let vlen =
                                u16::from_le_bytes(page[p..p + 2].try_into().unwrap()) as usize;
                            p += 2;
                            if p + vlen > PAGE_SIZE {
                                return Err(bad());
                            }
                            let v = page[p..p + vlen].to_vec();
                            p += vlen;
                            LeafValue::Inline(v)
                        }
                        1 => {
                            let len = u32::from_le_bytes(page[p..p + 4].try_into().unwrap());
                            p += 4;
                            let head = u32::from_le_bytes(page[p..p + 4].try_into().unwrap());
                            p += 4;
                            LeafValue::Overflow { len, head }
                        }
                        _ => return Err(bad()),
                    };
                    entries.push((key, value));
                }
                Ok(Node::Leaf { entries, next })
            }
            _ => Err(bad()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let node = Node::Leaf {
            entries: vec![
                (b"alpha".to_vec(), LeafValue::Inline(b"one".to_vec())),
                (
                    b"beta".to_vec(),
                    LeafValue::Overflow {
                        len: 99_999,
                        head: 42,
                    },
                ),
            ],
            next: 7,
        };
        let decoded = Node::decode(&node.encode()).unwrap();
        assert_eq!(node, decoded);
    }

    #[test]
    fn internal_roundtrip() {
        let node = Node::Internal {
            keys: vec![b"m".to_vec(), b"t".to_vec()],
            children: vec![10, 11, 12],
        };
        assert_eq!(node, Node::decode(&node.encode()).unwrap());
    }

    #[test]
    fn encoded_size_matches_actual_usage() {
        let node = Node::Leaf {
            entries: vec![(b"key".to_vec(), LeafValue::Inline(vec![9; 100]))],
            next: 0,
        };
        // Header 7 + klen 1 + 3 + tag 1 + vlen 2 + 100.
        assert_eq!(node.encoded_size(), 7 + 1 + 3 + 1 + 2 + 100);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut page = [0u8; PAGE_SIZE];
        page[0] = 99;
        assert!(Node::decode(&page).is_err());
        assert!(Node::decode(&[0u8; 10]).is_err());
    }

    #[test]
    #[should_panic(expected = "exceeds page size")]
    fn encode_panics_on_oversized_node() {
        let node = Node::Leaf {
            entries: (0..40)
                .map(|i| (vec![i as u8; 100], LeafValue::Inline(vec![0; 100])))
                .collect(),
            next: 0,
        };
        let _ = node.encode();
    }
}
