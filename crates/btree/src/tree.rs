//! The B+Tree logic: search, insert with splits, lazy delete.

use std::io;
use std::path::Path;

use crate::node::{LeafValue, Node, PAGE_SIZE};
use crate::pager::Pager;

/// Configuration for [`BTreeStore`](crate::BTreeStore).
#[derive(Debug, Clone)]
pub struct BTreeConfig {
    /// Page cache budget in bytes. Paper setup: 256 MiB.
    pub page_cache_bytes: usize,
    /// Values larger than this are moved to overflow page chains.
    pub overflow_threshold: usize,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            page_cache_bytes: 256 << 20,
            overflow_threshold: PAGE_SIZE / 4,
        }
    }
}

impl BTreeConfig {
    /// A small configuration for tests: tiny cache so eviction paths run.
    pub fn small() -> Self {
        BTreeConfig {
            page_cache_bytes: 64 << 10,
            overflow_threshold: PAGE_SIZE / 4,
        }
    }
}

/// The tree. All operations take `&mut self`; the store wraps it in a
/// mutex (BerkeleyDB-style page latching is approximated by one latch).
pub struct Tree {
    pager: Pager,
    config: BTreeConfig,
}

/// Result of a recursive insert: `Some` means the child split and the
/// parent must add a separator.
type SplitResult = Option<(Vec<u8>, u32)>;

impl Tree {
    /// Opens (or creates) a tree at `path`.
    pub fn open(path: &Path, config: BTreeConfig) -> io::Result<Self> {
        let pager = Pager::open(path, config.page_cache_bytes)?;
        Ok(Tree { pager, config })
    }

    /// Registers the pager's counters in `registry`; see
    /// [`Pager::attach_metrics`].
    pub fn attach_metrics(&mut self, registry: &gadget_obs::MetricsRegistry) {
        self.pager.attach_metrics(registry);
    }

    /// Number of pages resident in the page cache.
    pub fn cached_pages(&self) -> usize {
        self.pager.cached_pages()
    }

    /// Descends to the leaf page covering `key`.
    fn find_leaf(&mut self, key: &[u8]) -> io::Result<u32> {
        let mut pid = self.pager.root;
        loop {
            match &*self.pager.read_node(pid)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    pid = children[idx];
                }
                Node::Leaf { .. } => return Ok(pid),
            }
        }
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        if self.pager.root == 0 {
            return Ok(None);
        }
        let pid = self.find_leaf(key)?;
        let node = self.pager.read_node(pid)?;
        let Node::Leaf { entries, .. } = &*node else {
            unreachable!("find_leaf returns a leaf")
        };
        match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => match &entries[i].1 {
                LeafValue::Inline(v) => Ok(Some(v.clone())),
                LeafValue::Overflow { len, head } => {
                    let (len, head) = (*len, *head);
                    drop(node);
                    Ok(Some(self.pager.read_overflow(head, len)?))
                }
            },
            Err(_) => Ok(None),
        }
    }

    /// Inserts or overwrites a key.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        if key.is_empty() || key.len() > 255 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "btree keys must be 1..=255 bytes",
            ));
        }
        // Fast path: in-place overwrite of an existing inline value when
        // the leaf stays within the page (BerkeleyDB-style in-place
        // update, the property that wins update-heavy workloads).
        if self.pager.root != 0 && value.len() <= self.config.overflow_threshold {
            let pid = self.find_leaf(key)?;
            let node = self.pager.read_node(pid)?;
            let Node::Leaf { entries, .. } = &*node else {
                unreachable!("find_leaf returns a leaf")
            };
            if let Ok(i) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                if let LeafValue::Inline(old) = &entries[i].1 {
                    let grows = value.len().saturating_sub(old.len());
                    if node.encoded_size() + grows <= PAGE_SIZE {
                        drop(node);
                        self.pager.mutate_node(pid, |n| {
                            if let Node::Leaf { entries, .. } = n {
                                entries[i].1 = LeafValue::Inline(value.to_vec());
                            }
                        })?;
                        return Ok(());
                    }
                }
            }
        }

        let leaf_value = self.make_leaf_value(value)?;
        if self.pager.root == 0 {
            let root = self.pager.alloc();
            self.pager.write_node(
                root,
                Node::Leaf {
                    entries: vec![(key.to_vec(), leaf_value)],
                    next: 0,
                },
            )?;
            self.pager.set_root(root);
            return Ok(());
        }
        let root = self.pager.root;
        if let Some((sep, right)) = self.insert_rec(root, key, leaf_value)? {
            let new_root = self.pager.alloc();
            self.pager.write_node(
                new_root,
                Node::Internal {
                    keys: vec![sep],
                    children: vec![root, right],
                },
            )?;
            self.pager.set_root(new_root);
        }
        Ok(())
    }

    fn make_leaf_value(&mut self, value: &[u8]) -> io::Result<LeafValue> {
        if value.len() > self.config.overflow_threshold {
            let head = self.pager.write_overflow(value)?;
            Ok(LeafValue::Overflow {
                len: value.len() as u32,
                head,
            })
        } else {
            Ok(LeafValue::Inline(value.to_vec()))
        }
    }

    fn insert_rec(&mut self, pid: u32, key: &[u8], value: LeafValue) -> io::Result<SplitResult> {
        match (*self.pager.read_node(pid)?).clone() {
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = children[idx];
                if let Some((sep, right)) = self.insert_rec(child, key, value)? {
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                }
                let node = Node::Internal { keys, children };
                if node.encoded_size() > PAGE_SIZE {
                    self.pager.note_split();
                    let (left, sep, right) = split_internal(node);
                    let right_pid = self.pager.alloc();
                    self.pager.write_node(right_pid, right)?;
                    self.pager.write_node(pid, left)?;
                    Ok(Some((sep, right_pid)))
                } else {
                    self.pager.write_node(pid, node)?;
                    Ok(None)
                }
            }
            Node::Leaf { mut entries, next } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        // In-place overwrite; free any replaced overflow chain.
                        let old = std::mem::replace(&mut entries[i].1, value);
                        if let LeafValue::Overflow { head, .. } = old {
                            self.pager.free_overflow(head)?;
                        }
                    }
                    Err(i) => entries.insert(i, (key.to_vec(), value)),
                }
                let node = Node::Leaf { entries, next };
                if node.encoded_size() > PAGE_SIZE {
                    self.pager.note_split();
                    let (left, sep, right) = split_leaf(node, pid, &mut self.pager)?;
                    self.pager.write_node(pid, left)?;
                    Ok(Some((sep, right)))
                } else {
                    self.pager.write_node(pid, node)?;
                    Ok(None)
                }
            }
        }
    }

    /// Range scan: every `(key, value)` with `lo <= key <= hi`, sorted.
    pub fn scan(&mut self, lo: &[u8], hi: &[u8]) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        if self.pager.root == 0 || lo > hi {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut pid = self.find_leaf(lo)?;
        loop {
            let node = self.pager.read_node(pid)?;
            let Node::Leaf { entries, next } = &*node else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "leaf chain reached an internal page",
                ));
            };
            // Collect matching entries; resolve overflow chains after the
            // borrow on the node ends.
            let mut pending_overflow: Vec<(Vec<u8>, u32, u32)> = Vec::new();
            let mut done = false;
            for (k, v) in entries {
                if k.as_slice() > hi {
                    done = true;
                    break;
                }
                if k.as_slice() < lo {
                    continue;
                }
                match v {
                    LeafValue::Inline(data) => out.push((k.clone(), data.clone())),
                    LeafValue::Overflow { len, head } => {
                        pending_overflow.push((k.clone(), *len, *head))
                    }
                }
            }
            let next = *next;
            drop(node);
            for (k, len, head) in pending_overflow {
                out.push((k, self.pager.read_overflow(head, len)?));
            }
            if done || next == 0 {
                break;
            }
            pid = next;
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Removes a key. Pages are not rebalanced (lazy deletion); space is
    /// reused when neighbouring inserts land on the sparse page.
    pub fn remove(&mut self, key: &[u8]) -> io::Result<bool> {
        if self.pager.root == 0 {
            return Ok(false);
        }
        let pid = self.find_leaf(key)?;
        let node = self.pager.read_node(pid)?;
        let Node::Leaf { entries, .. } = &*node else {
            unreachable!("find_leaf returns a leaf")
        };
        match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                let overflow = match &entries[i].1 {
                    LeafValue::Overflow { head, .. } => Some(*head),
                    LeafValue::Inline(_) => None,
                };
                drop(node);
                // Removal only shrinks the page: mutate in place.
                self.pager.mutate_node(pid, |n| {
                    if let Node::Leaf { entries, .. } = n {
                        entries.remove(i);
                    }
                })?;
                if let Some(head) = overflow {
                    self.pager.free_overflow(head)?;
                }
                Ok(true)
            }
            Err(_) => Ok(false),
        }
    }

    /// Counts live keys by walking the leaf chain.
    pub fn count(&mut self) -> io::Result<usize> {
        if self.pager.root == 0 {
            return Ok(0);
        }
        // Descend to the leftmost leaf.
        let mut pid = self.pager.root;
        while let Node::Internal { children, .. } = &*self.pager.read_node(pid)? {
            pid = children[0];
        }
        let mut total = 0usize;
        loop {
            match &*self.pager.read_node(pid)? {
                Node::Leaf { entries, next } => {
                    total += entries.len();
                    if *next == 0 {
                        return Ok(total);
                    }
                    pid = *next;
                }
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "leaf chain reached an internal page",
                    ))
                }
            }
        }
    }

    /// Flushes dirty pages and metadata.
    pub fn flush(&mut self) -> io::Result<()> {
        self.pager.flush()
    }

    /// Internal statistics.
    pub fn stats(&self) -> Vec<(String, u64)> {
        self.pager.stats()
    }
}

/// Splits an oversized leaf in half; returns `(left, separator, right_pid)`.
fn split_leaf(node: Node, left_pid: u32, pager: &mut Pager) -> io::Result<(Node, Vec<u8>, u32)> {
    let Node::Leaf { mut entries, next } = node else {
        unreachable!("split_leaf called on internal node")
    };
    let mid = entries.len() / 2;
    let right_entries = entries.split_off(mid);
    let sep = right_entries[0].0.clone();
    let right_pid = pager.alloc();
    pager.write_node(
        right_pid,
        Node::Leaf {
            entries: right_entries,
            next,
        },
    )?;
    let _ = left_pid;
    Ok((
        Node::Leaf {
            entries,
            next: right_pid,
        },
        sep,
        right_pid,
    ))
}

/// Splits an oversized internal node; the middle key moves up.
fn split_internal(node: Node) -> (Node, Vec<u8>, Node) {
    let Node::Internal {
        mut keys,
        mut children,
    } = node
    else {
        unreachable!("split_internal called on leaf")
    };
    let mid = keys.len() / 2;
    let sep = keys[mid].clone();
    let right_keys = keys.split_off(mid + 1);
    keys.pop(); // Remove the separator from the left.
    let right_children = children.split_off(mid + 1);
    (
        Node::Internal { keys, children },
        sep,
        Node::Internal {
            keys: right_keys,
            children: right_children,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-tree-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn ascending_inserts_split_correctly() {
        let mut t = Tree::open(&tmp("asc.db"), BTreeConfig::small()).unwrap();
        for i in 0..5_000u64 {
            t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.count().unwrap(), 5_000);
        for i in (0..5_000u64).step_by(173) {
            assert_eq!(t.get(&i.to_be_bytes()).unwrap().unwrap(), i.to_le_bytes());
        }
    }

    #[test]
    fn descending_inserts_split_correctly() {
        let mut t = Tree::open(&tmp("desc.db"), BTreeConfig::small()).unwrap();
        for i in (0..5_000u64).rev() {
            t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.count().unwrap(), 5_000);
        assert_eq!(
            t.get(&0u64.to_be_bytes()).unwrap().unwrap(),
            0u64.to_le_bytes()
        );
        assert_eq!(
            t.get(&4_999u64.to_be_bytes()).unwrap().unwrap(),
            4_999u64.to_le_bytes()
        );
    }

    #[test]
    fn scan_walks_leaf_chain() {
        let mut t = Tree::open(&tmp("scan.db"), BTreeConfig::small()).unwrap();
        for i in 0..3_000u64 {
            t.insert(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        let hits = t
            .scan(&100u64.to_be_bytes(), &250u64.to_be_bytes())
            .unwrap();
        assert_eq!(hits.len(), 151);
        assert_eq!(hits[0].0, 100u64.to_be_bytes());
        assert_eq!(hits[150].0, 250u64.to_be_bytes());
        for w in hits.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        // Inverted and out-of-range scans are empty.
        assert!(t
            .scan(&5u64.to_be_bytes(), &1u64.to_be_bytes())
            .unwrap()
            .is_empty());
        assert!(t
            .scan(&90_000u64.to_be_bytes(), &99_000u64.to_be_bytes())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn scan_materializes_overflow_values() {
        let mut t = Tree::open(&tmp("scan-ov.db"), BTreeConfig::small()).unwrap();
        let big = vec![0x5Au8; 50_000];
        t.insert(b"big", &big).unwrap();
        t.insert(b"small", b"s").unwrap();
        let hits = t.scan(b"a", b"z").unwrap();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, big);
        assert_eq!(hits[1].1, b"s");
    }

    #[test]
    fn rejects_invalid_keys() {
        let mut t = Tree::open(&tmp("invalid.db"), BTreeConfig::small()).unwrap();
        assert!(t.insert(b"", b"v").is_err());
        assert!(t.insert(&[0u8; 256], b"v").is_err());
    }

    #[test]
    fn leaf_chain_stays_sorted_after_splits() {
        let mut t = Tree::open(&tmp("chain.db"), BTreeConfig::small()).unwrap();
        for i in [5u64, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            for j in 0..300u64 {
                t.insert(&(i * 1_000 + j).to_be_bytes(), b"x").unwrap();
            }
        }
        // Walk the leaf chain and assert global order.
        let mut pid = t.pager.root;
        while let Node::Internal { children, .. } = &*t.pager.read_node(pid).unwrap() {
            pid = children[0];
        }
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        loop {
            match (*t.pager.read_node(pid).unwrap()).clone() {
                Node::Leaf { entries, next } => {
                    for (k, _) in entries {
                        if let Some(p) = &prev {
                            assert!(*p < k);
                        }
                        prev = Some(k);
                        count += 1;
                    }
                    if next == 0 {
                        break;
                    }
                    pid = next;
                }
                _ => unreachable!(),
            }
        }
        assert_eq!(count, 3_000);
    }
}
