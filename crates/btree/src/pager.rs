//! Page management: file I/O, write-back page cache, and overflow chains.

use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

use std::sync::Arc;

use gadget_obs::{Counter, MetricsRegistry};

use crate::node::{Node, KIND_OVERFLOW, PAGE_SIZE};

const MAGIC: u64 = 0x6761_6467_6574_4254; // "gadgetBT"

/// Meta page layout: `[magic u64][root u32][next_pid u32]`.
const META_PID: u32 = 0;

struct CacheSlot {
    node: Arc<Node>,
    dirty: bool,
    recency: u64,
}

/// The pager: owns the file, the decoded-node cache, and page allocation.
pub struct Pager {
    file: File,
    /// Root page id of the tree (0 = empty tree).
    pub root: u32,
    next_pid: u32,
    free: Vec<u32>,
    cache: HashMap<u32, CacheSlot>,
    recency_index: BTreeMap<u64, u32>,
    tick: u64,
    capacity_pages: usize,
    meta_dirty: bool,
    // Statistics. Plain counters by default; [`Pager::attach_metrics`]
    // swaps in registry-backed ones.
    cache_hits: Counter,
    cache_misses: Counter,
    pages_written: Counter,
    overflow_pages_written: Counter,
    dirty_writebacks: Counter,
    page_splits: Counter,
}

impl Pager {
    /// Opens (or creates) the data file.
    pub fn open(path: &Path, cache_bytes: usize) -> io::Result<Self> {
        // Note: no truncate — an existing data file is reopened in place.
        #[allow(clippy::suspicious_open_options)]
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)?;
        let len = file.metadata()?.len();
        let (root, next_pid) = if len >= PAGE_SIZE as u64 {
            let mut meta = [0u8; PAGE_SIZE];
            file.read_exact_at(&mut meta, 0)?;
            if u64::from_le_bytes(meta[0..8].try_into().unwrap()) != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a gadget btree file",
                ));
            }
            (
                u32::from_le_bytes(meta[8..12].try_into().unwrap()),
                u32::from_le_bytes(meta[12..16].try_into().unwrap()),
            )
        } else {
            (0, 1)
        };
        Ok(Pager {
            file,
            root,
            next_pid,
            free: Vec::new(),
            cache: HashMap::new(),
            recency_index: BTreeMap::new(),
            tick: 0,
            capacity_pages: (cache_bytes / PAGE_SIZE).max(8),
            meta_dirty: true,
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            pages_written: Counter::new(),
            overflow_pages_written: Counter::new(),
            dirty_writebacks: Counter::new(),
            page_splits: Counter::new(),
        })
    }

    /// Re-registers every pager counter in `registry` so snapshots of the
    /// registry observe subsequent pager activity. Counts accumulated
    /// before the call are not carried over; attach right after open.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.cache_hits = registry.counter("page_cache_hits");
        self.cache_misses = registry.counter("page_cache_misses");
        self.pages_written = registry.counter("pages_written");
        self.overflow_pages_written = registry.counter("overflow_pages_written");
        self.dirty_writebacks = registry.counter("dirty_writebacks");
        self.page_splits = registry.counter("page_splits");
    }

    /// Records one node split (leaf or internal); called by the tree,
    /// which owns the split logic but not the counters.
    pub fn note_split(&self) {
        self.page_splits.inc();
    }

    /// Number of pages currently resident in the cache.
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }

    /// Allocates a fresh page id.
    pub fn alloc(&mut self) -> u32 {
        self.meta_dirty = true;
        if let Some(pid) = self.free.pop() {
            return pid;
        }
        let pid = self.next_pid;
        self.next_pid += 1;
        pid
    }

    /// Returns a page to the free list (in-memory only; free pages are not
    /// persisted across restarts, trading space for recovery simplicity).
    pub fn free_page(&mut self, pid: u32) {
        self.cache
            .remove(&pid)
            .map(|s| self.recency_index.remove(&s.recency));
        self.free.push(pid);
    }

    fn touch(&mut self, pid: u32) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(slot) = self.cache.get_mut(&pid) {
            self.recency_index.remove(&slot.recency);
            slot.recency = tick;
            self.recency_index.insert(tick, pid);
        }
    }

    /// Reads a node page through the cache. The returned `Arc` is shared
    /// with the cache, so reads never copy node contents.
    pub fn read_node(&mut self, pid: u32) -> io::Result<Arc<Node>> {
        if self.cache.contains_key(&pid) {
            self.cache_hits.inc();
            self.touch(pid);
            return Ok(self.cache[&pid].node.clone());
        }
        self.cache_misses.inc();
        let mut page = [0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut page, pid as u64 * PAGE_SIZE as u64)?;
        let node = Arc::new(Node::decode(&page)?);
        self.install(pid, node.clone(), false)?;
        Ok(node)
    }

    /// Mutates a cached node in place (no structural checks): the hot path
    /// for value overwrites. The caller must guarantee the mutation keeps
    /// the node within [`PAGE_SIZE`] when encoded.
    pub fn mutate_node(&mut self, pid: u32, f: impl FnOnce(&mut Node)) -> io::Result<()> {
        // Ensure the node is resident.
        self.read_node(pid)?;
        let slot = self.cache.get_mut(&pid).expect("just loaded");
        f(Arc::make_mut(&mut slot.node));
        slot.dirty = true;
        Ok(())
    }

    /// Writes a node page, through the cache (write-back).
    pub fn write_node(&mut self, pid: u32, node: Node) -> io::Result<()> {
        self.install(pid, Arc::new(node), true)
    }

    fn install(&mut self, pid: u32, node: Arc<Node>, dirty: bool) -> io::Result<()> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(old) = self.cache.insert(
            pid,
            CacheSlot {
                node,
                dirty,
                recency: tick,
            },
        ) {
            self.recency_index.remove(&old.recency);
            // Preserve dirtiness of an overwritten dirty slot.
            if old.dirty && !dirty {
                self.cache.get_mut(&pid).expect("just inserted").dirty = true;
            }
        }
        self.recency_index.insert(tick, pid);
        while self.cache.len() > self.capacity_pages {
            let (&oldest, &victim) = match self.recency_index.iter().next() {
                Some(kv) => kv,
                None => break,
            };
            self.recency_index.remove(&oldest);
            if let Some(slot) = self.cache.remove(&victim) {
                if slot.dirty {
                    // Eviction writeback stalls the op that faulted the
                    // cache over capacity — worth a trace span.
                    let _span = gadget_obs::trace::span(
                        gadget_obs::trace::Category::PageWriteback,
                        victim as u64,
                    );
                    self.dirty_writebacks.inc();
                    self.write_page_raw(victim, &slot.node.encode())?;
                }
            }
        }
        Ok(())
    }

    fn write_page_raw(&mut self, pid: u32, page: &[u8; PAGE_SIZE]) -> io::Result<()> {
        self.pages_written.inc();
        self.file.write_all_at(page, pid as u64 * PAGE_SIZE as u64)
    }

    /// Writes a value into a fresh overflow chain, returning the head pid.
    pub fn write_overflow(&mut self, data: &[u8]) -> io::Result<u32> {
        const CAP: usize = PAGE_SIZE - 7;
        let mut chunks: Vec<&[u8]> = data.chunks(CAP).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let mut next_pid = 0u32;
        // Write back-to-front so each page knows its successor.
        for chunk in chunks.iter().rev() {
            let pid = self.alloc();
            let mut page = [0u8; PAGE_SIZE];
            page[0] = KIND_OVERFLOW;
            page[1..5].copy_from_slice(&next_pid.to_le_bytes());
            page[5..7].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            page[7..7 + chunk.len()].copy_from_slice(chunk);
            self.write_page_raw(pid, &page)?;
            self.overflow_pages_written.inc();
            next_pid = pid;
        }
        Ok(next_pid)
    }

    /// Reads an overflow chain of total length `len` starting at `head`.
    pub fn read_overflow(&mut self, head: u32, len: u32) -> io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len as usize);
        let mut pid = head;
        while pid != 0 && out.len() < len as usize {
            let mut page = [0u8; PAGE_SIZE];
            self.file
                .read_exact_at(&mut page, pid as u64 * PAGE_SIZE as u64)?;
            if page[0] != KIND_OVERFLOW {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "broken overflow chain",
                ));
            }
            let next = u32::from_le_bytes(page[1..5].try_into().unwrap());
            let chunk_len = u16::from_le_bytes(page[5..7].try_into().unwrap()) as usize;
            out.extend_from_slice(&page[7..7 + chunk_len]);
            pid = next;
        }
        if out.len() != len as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "short overflow chain",
            ));
        }
        Ok(out)
    }

    /// Frees every page of an overflow chain.
    pub fn free_overflow(&mut self, head: u32) -> io::Result<()> {
        let mut pid = head;
        while pid != 0 {
            let mut page = [0u8; PAGE_SIZE];
            self.file
                .read_exact_at(&mut page, pid as u64 * PAGE_SIZE as u64)?;
            let next = u32::from_le_bytes(page[1..5].try_into().unwrap());
            self.free_page(pid);
            pid = next;
        }
        Ok(())
    }

    /// Writes all dirty pages and the meta page, then syncs.
    pub fn flush(&mut self) -> io::Result<()> {
        let dirty: Vec<u32> = self
            .cache
            .iter()
            .filter(|(_, s)| s.dirty)
            .map(|(&pid, _)| pid)
            .collect();
        for pid in dirty {
            let page = self.cache[&pid].node.encode();
            let _span =
                gadget_obs::trace::span(gadget_obs::trace::Category::PageWriteback, pid as u64);
            self.dirty_writebacks.inc();
            self.write_page_raw(pid, &page)?;
            self.cache.get_mut(&pid).expect("present").dirty = false;
        }
        if self.meta_dirty {
            let mut meta = [0u8; PAGE_SIZE];
            meta[0..8].copy_from_slice(&MAGIC.to_le_bytes());
            meta[8..12].copy_from_slice(&self.root.to_le_bytes());
            meta[12..16].copy_from_slice(&self.next_pid.to_le_bytes());
            self.write_page_raw(META_PID, &meta)?;
            self.meta_dirty = false;
        }
        self.file.sync_data()
    }

    /// Marks the meta page dirty (root changed).
    pub fn set_root(&mut self, root: u32) {
        self.root = root;
        self.meta_dirty = true;
    }

    /// Internal statistics.
    pub fn stats(&self) -> Vec<(String, u64)> {
        vec![
            ("page_cache_hits".to_string(), self.cache_hits.get()),
            ("page_cache_misses".to_string(), self.cache_misses.get()),
            ("pages_written".to_string(), self.pages_written.get()),
            (
                "overflow_pages_written".to_string(),
                self.overflow_pages_written.get(),
            ),
            ("dirty_writebacks".to_string(), self.dirty_writebacks.get()),
            ("page_splits".to_string(), self.page_splits.get()),
        ]
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LeafValue;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-pager-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn node_roundtrip_through_cache_and_disk() {
        let path = tmp("nodes.db");
        let mut pager = Pager::open(&path, 8 * PAGE_SIZE).unwrap();
        let pid = pager.alloc();
        let node = Node::Leaf {
            entries: vec![(b"k".to_vec(), LeafValue::Inline(b"v".to_vec()))],
            next: 0,
        };
        pager.write_node(pid, node.clone()).unwrap();
        assert_eq!(*pager.read_node(pid).unwrap(), node);
        pager.flush().unwrap();
        drop(pager);
        let mut pager = Pager::open(&path, 8 * PAGE_SIZE).unwrap();
        assert_eq!(*pager.read_node(pid).unwrap(), node);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let path = tmp("evict.db");
        let mut pager = Pager::open(&path, PAGE_SIZE).unwrap(); // capacity clamps to 8 pages
        let mut pids = Vec::new();
        for i in 0..100u32 {
            let pid = pager.alloc();
            let node = Node::Leaf {
                entries: vec![(i.to_be_bytes().to_vec(), LeafValue::Inline(vec![1; 10]))],
                next: 0,
            };
            pager.write_node(pid, node).unwrap();
            pids.push(pid);
        }
        // Everything must still be readable even though most were evicted.
        for (i, pid) in pids.iter().enumerate() {
            let node = pager.read_node(*pid).unwrap();
            match &*node {
                Node::Leaf { entries, .. } => {
                    assert_eq!(entries[0].0, (i as u32).to_be_bytes().to_vec())
                }
                _ => panic!("expected leaf"),
            }
        }
    }

    #[test]
    fn overflow_chain_roundtrip() {
        let path = tmp("overflow.db");
        let mut pager = Pager::open(&path, 8 * PAGE_SIZE).unwrap();
        let data = (0..20_000u32)
            .flat_map(|i| i.to_le_bytes())
            .collect::<Vec<u8>>();
        let head = pager.write_overflow(&data).unwrap();
        assert_eq!(pager.read_overflow(head, data.len() as u32).unwrap(), data);
        pager.free_overflow(head).unwrap();
        // Freed pages are reused.
        let head2 = pager.write_overflow(b"tiny").unwrap();
        assert_eq!(pager.read_overflow(head2, 4).unwrap(), b"tiny");
    }

    #[test]
    fn alloc_reuses_freed_pages() {
        let path = tmp("freelist.db");
        let mut pager = Pager::open(&path, 8 * PAGE_SIZE).unwrap();
        let a = pager.alloc();
        let b = pager.alloc();
        pager.free_page(a);
        assert_eq!(pager.alloc(), a);
        assert_ne!(pager.alloc(), b);
    }

    #[test]
    fn rejects_foreign_files() {
        let path = tmp("foreign.db");
        std::fs::write(&path, vec![0xFFu8; PAGE_SIZE]).unwrap();
        assert!(Pager::open(&path, 8 * PAGE_SIZE).is_err());
    }
}
