//! A page-based B+Tree key-value store: the BerkeleyDB-class substrate.
//!
//! The paper evaluates BerkeleyDB's B+Tree access method with a 256 MiB
//! cache. This crate reproduces that architectural class:
//!
//! * fixed-size **4 KiB pages** in a single data file,
//! * a write-back **page cache** with LRU eviction and a byte budget,
//! * **in-place updates**: an overwrite rewrites the leaf page rather than
//!   appending a new version — the property that makes B+Trees fast on
//!   incremental (update-heavy) streaming operators (§6.5),
//! * **overflow chains** for values larger than a quarter page, so holistic
//!   window buckets of growing size are supported (at the documented
//!   read-copy-write cost the paper attributes to BerkeleyDB),
//! * **read-modify-write** merges (no lazy merge operator).
//!
//! Durability model: pages are written back on eviction, [`flush`] and
//! close. There is no write-ahead log; this matches the common embedded,
//! non-transactional BerkeleyDB deployment the paper benchmarks.
//!
//! [`flush`]: gadget_kv::StateStore::flush
//!
//! # Examples
//!
//! ```
//! use gadget_btree::{BTreeConfig, BTreeStore};
//! use gadget_kv::StateStore;
//!
//! let dir = std::env::temp_dir().join("btree-doc-example");
//! let _ = std::fs::remove_dir_all(&dir);
//! std::fs::create_dir_all(&dir).unwrap();
//! let store = BTreeStore::open(dir.join("data.db"), BTreeConfig::default()).unwrap();
//! store.put(b"k", b"v").unwrap();
//! assert_eq!(store.get(b"k").unwrap().unwrap().as_ref(), b"v");
//! ```

mod node;
mod pager;
mod tree;

use std::path::{Path, PathBuf};

use bytes::Bytes;
use parking_lot::Mutex;

use gadget_kv::{
    apply_ops_serially, BatchResult, CheckpointManifest, Durability, StateStore, StoreCounters,
    StoreError,
};
use gadget_obs::{MetricsRegistry, MetricsSnapshot};
use gadget_types::Op;

pub use tree::BTreeConfig;
use tree::Tree;

/// The single data-file image inside a checkpoint directory.
const SNAPSHOT_NAME: &str = "btree.db";

/// A file-backed B+Tree store. See the crate docs for the architecture.
pub struct BTreeStore {
    tree: Mutex<Tree>,
    path: PathBuf,
    config: BTreeConfig,
    counters: StoreCounters,
    metrics: MetricsRegistry,
}

impl BTreeStore {
    /// Opens (or creates) the store at `path`.
    pub fn open<P: AsRef<std::path::Path>>(
        path: P,
        config: BTreeConfig,
    ) -> Result<Self, StoreError> {
        let metrics = MetricsRegistry::new();
        let mut tree = Tree::open(path.as_ref(), config.clone())?;
        tree.attach_metrics(&metrics);
        Ok(BTreeStore {
            tree: Mutex::new(tree),
            path: path.as_ref().to_path_buf(),
            config,
            counters: StoreCounters::registered(&metrics),
            metrics,
        })
    }

    /// Number of live keys (walks the leaf chain; diagnostics only).
    pub fn len(&self) -> Result<usize, StoreError> {
        Ok(self.tree.lock().count()?)
    }

    /// Returns true if the tree holds no keys.
    pub fn is_empty(&self) -> Result<bool, StoreError> {
        Ok(self.len()? == 0)
    }
}

impl StateStore for BTreeStore {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn get(&self, key: &[u8]) -> Result<Option<Bytes>, StoreError> {
        self.counters.record_get();
        Ok(self.tree.lock().get(key)?.map(Bytes::from))
    }

    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        self.counters.record_put();
        self.tree.lock().insert(key, value)?;
        Ok(())
    }

    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), StoreError> {
        self.counters.record_merge();
        // Read-modify-write: B+Trees have no lazy merge. The copy cost for
        // growing values is the behaviour under study.
        let mut tree = self.tree.lock();
        let merged = match tree.get(key)? {
            Some(mut v) => {
                v.extend_from_slice(operand);
                v
            }
            None => operand.to_vec(),
        };
        tree.insert(key, &merged)?;
        Ok(())
    }

    fn delete(&self, key: &[u8]) -> Result<(), StoreError> {
        self.counters.record_delete();
        self.tree.lock().remove(key)?;
        Ok(())
    }

    fn scan(&self, lo: &[u8], hi: &[u8]) -> Result<Vec<(Bytes, Bytes)>, StoreError> {
        Ok(self
            .tree
            .lock()
            .scan(lo, hi)?
            .into_iter()
            .map(|(k, v)| (Bytes::from(k), Bytes::from(v)))
            .collect())
    }

    fn durability(&self) -> Durability {
        // Pages are written back on eviction/flush/close, but there is
        // no WAL: only explicit checkpoints bound the loss window.
        Durability::SnapshotOnly
    }

    fn checkpoint(&self, dir: &Path) -> Result<CheckpointManifest, StoreError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| StoreError::path_io("create", dir.to_path_buf(), e))?;
        // Hold the tree lock across flush + copy so the copied file is a
        // quiescent, fully written-back image.
        let mut tree = self.tree.lock();
        tree.flush()?;
        let dst = dir.join(SNAPSHOT_NAME);
        // A hard link would alias future in-place page writes — the tree
        // mutates its one data file — so this must be a real copy.
        let bytes = std::fs::copy(&self.path, &dst)
            .map_err(|e| StoreError::path_io("copy", dst.clone(), e))?;
        std::fs::File::open(&dst)
            .and_then(|f| f.sync_all())
            .map_err(|e| StoreError::path_io("fsync", dst, e))?;
        gadget_kv::fsync_dir(dir)?;
        let mut manifest = CheckpointManifest::new(self.name());
        manifest.push_file(SNAPSHOT_NAME, bytes);
        manifest.save(dir)?;
        Ok(manifest)
    }

    fn restore(&self, dir: &Path) -> Result<(), StoreError> {
        let manifest = CheckpointManifest::load(dir)?;
        if manifest.store != self.name() {
            return Err(StoreError::Corruption(format!(
                "checkpoint was taken by store {:?}, not {:?}",
                manifest.store,
                self.name()
            )));
        }
        if manifest.shards != 0 {
            return Err(StoreError::Corruption(format!(
                "checkpoint is a {}-shard super-checkpoint; restore it through ShardedStore",
                manifest.shards
            )));
        }
        let src = dir.join(SNAPSHOT_NAME);
        let mut tree = self.tree.lock();
        // The pager writes dirty state back when a tree is dropped, so
        // quiesce the old tree *before* replacing the data file: after
        // this flush (and under the lock) it has nothing left to write,
        // and the swap below drops it without touching the new image.
        tree.flush()?;
        std::fs::copy(&src, &self.path)
            .map_err(|e| StoreError::path_io("copy", self.path.clone(), e))?;
        std::fs::File::open(&self.path)
            .and_then(|f| f.sync_all())
            .map_err(|e| StoreError::path_io("fsync", self.path.clone(), e))?;
        let mut fresh = Tree::open(&self.path, self.config.clone())?;
        fresh.attach_metrics(&self.metrics);
        *tree = fresh;
        Ok(())
    }

    fn supports_scan(&self) -> bool {
        true
    }

    fn supports_merge(&self) -> bool {
        false
    }

    fn flush(&self) -> Result<(), StoreError> {
        self.tree.lock().flush()?;
        Ok(())
    }

    fn internal_counters(&self) -> Vec<(String, u64)> {
        let mut out = self.counters.snapshot();
        out.extend(self.tree.lock().stats());
        out
    }

    fn apply_batch(&self, batch: &[Op]) -> Result<Vec<BatchResult>, StoreError> {
        // Single-op batches take the per-op methods directly.
        if batch.len() <= 1 {
            return apply_ops_serially(self, batch);
        }
        // One tree-lock acquisition for the whole batch.
        let mut tree = self.tree.lock();
        let mut out = Vec::with_capacity(batch.len());
        for op in batch {
            match op {
                Op::Get { key } => {
                    self.counters.record_get();
                    out.push(BatchResult::Value(tree.get(key)?.map(Bytes::from)));
                }
                Op::Put { key, value } => {
                    self.counters.record_put();
                    tree.insert(key, value)?;
                    out.push(BatchResult::Applied);
                }
                Op::Merge { key, operand } => {
                    self.counters.record_merge();
                    let merged = match tree.get(key)? {
                        Some(mut v) => {
                            v.extend_from_slice(operand);
                            v
                        }
                        None => operand.to_vec(),
                    };
                    tree.insert(key, &merged)?;
                    out.push(BatchResult::Applied);
                }
                Op::Delete { key } => {
                    self.counters.record_delete();
                    tree.remove(key)?;
                    out.push(BatchResult::Applied);
                }
            }
        }
        Ok(out)
    }

    fn metrics(&self) -> Option<MetricsSnapshot> {
        let mut snap = self.metrics.snapshot();
        snap.push_gauge("cached_pages", self.tree.lock().cached_pages() as i64);
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gadget-btree-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crud_roundtrip() {
        let s = BTreeStore::open(tmpfile("crud.db"), BTreeConfig::small()).unwrap();
        s.put(b"a", b"1").unwrap();
        assert_eq!(s.get(b"a").unwrap().as_deref(), Some(&b"1"[..]));
        s.put(b"a", b"2").unwrap();
        assert_eq!(s.get(b"a").unwrap().as_deref(), Some(&b"2"[..]));
        s.delete(b"a").unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        s.delete(b"a").unwrap(); // Idempotent.
    }

    #[test]
    fn merge_is_rmw() {
        let s = BTreeStore::open(tmpfile("merge.db"), BTreeConfig::small()).unwrap();
        s.merge(b"k", b"a").unwrap();
        s.merge(b"k", b"bc").unwrap();
        assert_eq!(s.get(b"k").unwrap().as_deref(), Some(&b"abc"[..]));
        assert!(!s.supports_merge());
    }

    #[test]
    fn thousands_of_keys_with_splits() {
        let s = BTreeStore::open(tmpfile("many.db"), BTreeConfig::small()).unwrap();
        let n = 20_000u64;
        for i in 0..n {
            s.put(&i.to_be_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        for i in (0..n).step_by(487) {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(format!("value-{i}").as_bytes()),
                "key {i}"
            );
        }
        assert_eq!(s.len().unwrap(), n as usize);
    }

    #[test]
    fn random_order_inserts_and_deletes() {
        use rand::seq::SliceRandom;
        let s = BTreeStore::open(tmpfile("random.db"), BTreeConfig::small()).unwrap();
        let mut keys: Vec<u64> = (0..5_000).collect();
        let mut rng = gadget_distrib::seeded_rng(11);
        keys.shuffle(&mut rng);
        for &k in &keys {
            s.put(&k.to_be_bytes(), &k.to_le_bytes()).unwrap();
        }
        for &k in keys.iter().filter(|k| **k % 2 == 0) {
            s.delete(&k.to_be_bytes()).unwrap();
        }
        for &k in &keys {
            let got = s.get(&k.to_be_bytes()).unwrap();
            if k % 2 == 0 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got.unwrap().as_ref(), &k.to_le_bytes());
            }
        }
    }

    #[test]
    fn large_values_use_overflow_chains() {
        let s = BTreeStore::open(tmpfile("overflow.db"), BTreeConfig::small()).unwrap();
        let big = vec![0xABu8; 100_000];
        s.put(b"big", &big).unwrap();
        assert_eq!(s.get(b"big").unwrap().as_deref(), Some(&big[..]));
        // Overwrite with a different large value.
        let bigger = vec![0xCDu8; 150_000];
        s.put(b"big", &bigger).unwrap();
        assert_eq!(s.get(b"big").unwrap().as_deref(), Some(&bigger[..]));
        s.delete(b"big").unwrap();
        assert_eq!(s.get(b"big").unwrap(), None);
        let stats = s.internal_counters();
        assert!(stats
            .iter()
            .any(|(k, v)| k == "overflow_pages_written" && *v > 0));
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmpfile("persist.db");
        {
            let s = BTreeStore::open(&path, BTreeConfig::small()).unwrap();
            for i in 0..1_000u64 {
                s.put(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
            }
            s.flush().unwrap();
        }
        let s = BTreeStore::open(&path, BTreeConfig::small()).unwrap();
        for i in (0..1_000u64).step_by(97) {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes())
            );
        }
    }

    #[test]
    fn growing_value_rmw_cost_is_supported() {
        let s = BTreeStore::open(tmpfile("grow.db"), BTreeConfig::small()).unwrap();
        // Emulates a holistic window bucket: repeated merge growth.
        for i in 0..500u64 {
            s.merge(b"bucket", format!("event-{i};").as_bytes())
                .unwrap();
        }
        let v = s.get(b"bucket").unwrap().unwrap();
        assert!(v.ends_with(b"event-499;"));
        assert!(v.starts_with(b"event-0;"));
    }

    #[test]
    fn metrics_snapshot_covers_internals() {
        let s = BTreeStore::open(tmpfile("metrics.db"), BTreeConfig::small()).unwrap();
        for i in 0..20_000u64 {
            s.put(&i.to_be_bytes(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        s.flush().unwrap();
        for i in (0..20_000u64).step_by(487) {
            s.get(&i.to_be_bytes()).unwrap();
        }
        let snap = s.metrics().expect("btree store exposes metrics");
        assert_eq!(snap.counter("puts"), Some(20_000));
        assert!(snap.counter("page_splits").unwrap() > 0);
        assert!(snap.counter("pages_written").unwrap() > 0);
        assert!(snap.counter("dirty_writebacks").unwrap() > 0);
        assert!(
            snap.counter("page_cache_hits").unwrap() + snap.counter("page_cache_misses").unwrap()
                > 0
        );
        assert!(snap.gauge("cached_pages").unwrap() > 0);
    }

    #[test]
    fn apply_batch_matches_op_by_op() {
        let batched = BTreeStore::open(tmpfile("batch-a.db"), BTreeConfig::small()).unwrap();
        let serial = BTreeStore::open(tmpfile("batch-b.db"), BTreeConfig::small()).unwrap();
        let mut ops = Vec::new();
        for i in 0..50u64 {
            ops.push(Op::put(
                i.to_be_bytes().to_vec(),
                format!("v{i}").into_bytes(),
            ));
            ops.push(Op::merge(i.to_be_bytes().to_vec(), b"+m".to_vec()));
            ops.push(Op::get(i.to_be_bytes().to_vec()));
        }
        ops.push(Op::delete(7u64.to_be_bytes().to_vec()));
        ops.push(Op::get(7u64.to_be_bytes().to_vec()));
        let out = batched.apply_batch(&ops).unwrap();
        let expect = gadget_kv::apply_ops_serially(&serial, &ops).unwrap();
        assert_eq!(out, expect);
        assert_eq!(batched.len().unwrap(), serial.len().unwrap());
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let s = BTreeStore::open(tmpfile("ckpt.db"), BTreeConfig::small()).unwrap();
        assert_eq!(s.durability(), Durability::SnapshotOnly);
        for i in 0..2_000u64 {
            s.put(&i.to_be_bytes(), format!("v{i}").as_bytes()).unwrap();
        }
        let dir = tmpfile("ckpt-dir");
        let manifest = s.checkpoint(&dir).unwrap();
        assert_eq!(manifest.store, "btree");
        assert_eq!(manifest.files.len(), 1);
        // Diverge after the cut: overwrites, deletes, and new keys.
        for i in 0..500u64 {
            s.put(&i.to_be_bytes(), b"overwritten").unwrap();
        }
        for i in 500..700u64 {
            s.delete(&i.to_be_bytes()).unwrap();
        }
        s.put(b"post-checkpoint", b"gone-after-restore").unwrap();
        s.restore(&dir).unwrap();
        for i in 0..2_000u64 {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes()),
                "key {i}"
            );
        }
        assert_eq!(s.get(b"post-checkpoint").unwrap(), None);
        // The restored tree is live: writes after restore stick.
        s.put(b"after", b"restore").unwrap();
        assert_eq!(s.get(b"after").unwrap().as_deref(), Some(&b"restore"[..]));
    }

    #[test]
    fn restore_rejects_foreign_checkpoints() {
        let s = BTreeStore::open(tmpfile("foreign.db"), BTreeConfig::small()).unwrap();
        let dir = tmpfile("foreign-dir");
        std::fs::create_dir_all(&dir).unwrap();
        let mut manifest = CheckpointManifest::new("lsm");
        manifest.push_file(SNAPSHOT_NAME, 0);
        manifest.save(&dir).unwrap();
        let err = s.restore(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Corruption(_)), "{err}");
    }

    #[test]
    fn variable_key_sizes() {
        let s = BTreeStore::open(tmpfile("varkeys.db"), BTreeConfig::small()).unwrap();
        let keys: Vec<Vec<u8>> = (1..100usize).map(|i| vec![b'k'; i]).collect();
        for (i, k) in keys.iter().enumerate() {
            s.put(k, &i.to_le_bytes()).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.get(k).unwrap().unwrap().as_ref(), &i.to_le_bytes());
        }
    }
}
