//! Rate sweep (companion to fig12's YCSB baseline): open-loop
//! latency–throughput curves with knee detection.
//!
//! Where fig12 measures each store flat-out (closed loop, one point
//! per store), this experiment walks a geometric ladder of offered
//! Poisson rates over the YCSB-A core workload and records the whole
//! curve — achieved rate and intended-time (coordinated-omission-safe)
//! latency at every rung, plus the knee: the highest offered rate the
//! store sustains. The contrast pair is deliberately extreme: an
//! in-memory hash store against a 4-shard RocksDB-class LSM.
//!
//! With `--reports DIR` each store's curve is saved as a versioned
//! `SweepReport` that `gadget report show` renders and
//! `gadget report compare` gates across revisions.

use std::path::PathBuf;
use std::sync::Arc;

use gadget_kv::{MemStore, ShardedStore, StateStore};
use gadget_lsm::{LsmConfig, LsmStore};
use gadget_replay::{run_sweep, ReplayOptions, SweepOptions, TraceReplayer};
use gadget_ycsb::{CoreWorkload, YcsbConfig};
use serde::Serialize;

use crate::{fresh_dir, kops, print_table, us, Scale, SharedStore};

/// One rung of one store's curve.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Store label (`mem`, `lsm-4shard`).
    pub store: String,
    /// Offered rate in ops/s.
    pub offered: f64,
    /// Achieved rate in ops/s.
    pub achieved: f64,
    /// Whether the store sustained this rung.
    pub sustainable: bool,
    /// Intended-time p50 latency in ns.
    pub p50_ns: u64,
    /// Intended-time p99 latency in ns.
    pub p99_ns: u64,
    /// Whether this rung is the store's knee.
    pub knee: bool,
}

fn sweep_options(scale: &Scale) -> SweepOptions {
    SweepOptions {
        seed: scale.seed,
        start_rate: 4_000.0,
        max_rate: 1_024_000.0,
        // Short rungs keep the low rates from dominating wall time
        // (a rung's duration is ops_per_step / offered_rate).
        ops_per_step: (scale.ops / 50).clamp(1_000, 20_000),
        batch_size: scale.batch,
        // Throughput-only sustainability: CI machines jitter intended
        // latency far more than they jitter paced throughput.
        sustainable_fraction: 0.9,
        p99_bound_ns: 0,
        ..SweepOptions::default()
    }
}

/// One curve subject: a label, its shard count, and the store.
type Subject = (&'static str, u64, Arc<dyn StateStore>);

/// The two curve subjects: a keyspace store with no I/O at all, and a
/// shard-parallel LSM doing real compaction work. Returns the LSM's
/// scratch directory so the caller can clean it up once both sweeps
/// are done.
fn subjects(shrink: usize) -> (Vec<Subject>, PathBuf) {
    let shrink = shrink.max(1);
    let lsm_dir = fresh_dir("ext-sweep-lsm");
    let factory_dir = lsm_dir.clone();
    let sharded = ShardedStore::from_factory(4, move |shard| {
        let cfg = LsmConfig {
            memtable_bytes: (128 << 20) / shrink,
            block_cache_bytes: (64 << 20) / shrink,
            l1_target_bytes: ((256 << 20) / shrink) as u64,
            target_file_bytes: (64 << 20) / shrink,
            ..LsmConfig::paper_rocksdb()
        };
        LsmStore::open(factory_dir.join(format!("shard-{shard}")), cfg)
            .map(|s| Arc::new(s) as Arc<dyn StateStore>)
    })
    .expect("open sharded lsm");
    (
        vec![
            ("mem", 1, Arc::new(MemStore::new())),
            ("lsm-4shard", 4, Arc::new(sharded)),
        ],
        lsm_dir,
    )
}

/// Runs both sweeps.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let opts = sweep_options(scale);
    let cfg = YcsbConfig::core(CoreWorkload::A, 1_000, opts.ops_per_step);
    let trace = cfg.generate();
    let mut rows = Vec::new();
    let (stores, lsm_dir) = subjects(64);
    for (label, shards, store) in stores {
        let shared = SharedStore(store.clone());
        TraceReplayer::new(ReplayOptions::default())
            .preload(&shared, cfg.preload_keys(), cfg.value_size)
            .expect("preload");
        let outcome = run_sweep(&trace, &shared, "ycsb-a", &opts, None).expect("sweep");
        let knee_rate = outcome.knee.map(|k| outcome.steps[k].offered);
        for step in &outcome.steps {
            rows.push(Row {
                store: label.to_string(),
                offered: step.offered,
                achieved: step.achieved,
                sustainable: step.sustainable,
                p50_ns: step.run.latency.p50_ns,
                p99_ns: step.run.latency.p99_ns,
                knee: Some(step.offered) == knee_rate,
            });
        }
        if let Some(dir) = &scale.reports {
            let mut meta = gadget_report::capture(&format!(
                "ext_sweep store={label} workload=ycsb-a ops_per_step={} seed={}",
                opts.ops_per_step, opts.seed
            ));
            meta.shards = shards;
            meta.batch_size = opts.batch_size as u64;
            meta.arrival = opts.arrival.name().to_string();
            let mut report = gadget_report::SweepReport::from_sweep(&outcome, &opts, meta);
            report.store = label.to_string();
            let path = dir.join(format!("ext-sweep-ycsb-a-{label}.json"));
            match report.save(&path) {
                Ok(()) => println!("(sweep report saved to {})", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&lsm_dir);
    rows
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.store.clone(),
                kops(r.offered),
                kops(r.achieved),
                if r.sustainable { "yes" } else { "NO" }.to_string(),
                us(r.p50_ns),
                us(r.p99_ns),
                if r.knee { "<- knee" } else { "" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Rate sweep: open-loop latency-throughput curves (mem vs 4-shard LSM)",
        &[
            "store",
            "offered Kops/s",
            "achieved Kops/s",
            "sust",
            "p50 us",
            "p99 us",
            "",
        ],
        &table,
    );
    crate::dump_json("ext_sweep", &rows);
}
