//! Figure 11: are Gadget workloads valuable in practice? Replays real
//! (reference-execution), Gadget, and tuned-YCSB traces of the three
//! representative operators against all four stores, comparing throughput
//! and p99.9 latency. Gadget results must track the real-trace results;
//! tuned YCSB may diverge wildly.

use gadget_core::{Driver, GadgetConfig};
use gadget_datasets::DatasetSpec;
use gadget_flinksim::run_reference;
use gadget_kv::MemStore;
use gadget_replay::{ReplayOptions, TraceReplayer};
use serde::Serialize;

use crate::{all_stores, dump_json, kops, print_table, us, Scale};

/// One (operator, trace-source, store) measurement.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// Trace source: `real`, `gadget`, or `ycsb`.
    pub source: String,
    /// Store label.
    pub store: String,
    /// Throughput in ops/s.
    pub throughput: f64,
    /// p99.9 latency in ns.
    pub p999_ns: u64,
}

/// Runs the full matrix.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let spec = DatasetSpec {
        events: scale.events,
        seed: scale.seed,
    };
    let options = ReplayOptions {
        max_ops: Some(scale.ops),
        ..ReplayOptions::default()
    };
    let mut rows = Vec::new();

    for kind in super::REPRESENTATIVE {
        let cfg = GadgetConfig::dataset(kind, "borg", spec);
        let stream = cfg.build_stream();
        let params = cfg.operator_params();

        let real = run_reference(kind, &params, stream.clone().into_iter(), MemStore::new())
            .expect("reference run");
        let mut driver = Driver::new(kind.build(&params));
        let gadget = driver.run(stream.into_iter());
        let ycsb = super::tuned_ycsb(&gadget, super::closest_ycsb_distribution(kind), scale.seed)
            .generate();

        for (source, trace) in [("real", &real), ("gadget", &gadget), ("ycsb", &ycsb)] {
            for inst in all_stores(64) {
                let replayer = TraceReplayer::new(options.clone());
                let report = replayer
                    .replay(trace, inst.store.as_ref(), kind.name())
                    .expect("replay");
                rows.push(Row {
                    operator: kind.name().to_string(),
                    source: source.to_string(),
                    store: inst.label.to_string(),
                    throughput: report.throughput,
                    p999_ns: report.latency.p999_ns,
                });
            }
        }
    }
    rows
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                r.source.clone(),
                r.store.clone(),
                kops(r.throughput),
                us(r.p999_ns),
            ]
        })
        .collect();
    print_table(
        "Figure 11: throughput & p99.9 with real vs Gadget vs YCSB traces",
        &["operator", "trace", "store", "Kops/s", "p99.9 us"],
        &table,
    );
    dump_json("fig11", &rows);
}
