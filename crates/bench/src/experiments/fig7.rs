//! Figure 7: stack distances (1K random keys) and unique sequences in
//! real traces vs tuned YCSB traces with temporal (YCSB-L, latest) and
//! spatial (YCSB-S, sequential) locality. Neither YCSB variant matches
//! the real traces on both metrics at once.

use gadget_analysis::{key_sequence, shuffled_keys, stack_distances, unique_sequences};
use gadget_ycsb::RequestDistribution;
use rand::seq::SliceRandom;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// Locality of one trace variant.
#[derive(Debug, Serialize)]
pub struct Variant {
    /// Variant name (`real`, `ycsb-latest`, `ycsb-sequential`, `shuffled`).
    pub name: String,
    /// Mean stack distance over 1K sampled keys.
    pub mean_stack_distance: f64,
    /// Median stack distance.
    pub p50_stack_distance: u64,
    /// Unique sequences, lengths 1..=10.
    pub unique_sequences: u64,
}

/// One operator's panel.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// The variants, in presentation order.
    pub variants: Vec<Variant>,
}

fn analyze(name: &str, keys: &[u128], seed: u64) -> Variant {
    let mut distinct: Vec<u128> = {
        let mut v = keys.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut rng = gadget_distrib::seeded_rng(seed);
    distinct.shuffle(&mut rng);
    distinct.truncate(1_000);
    let sd = stack_distances(keys, Some(&distinct));
    let mut sorted = sd.distances.clone();
    sorted.sort_unstable();
    let p50 = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
    Variant {
        name: name.to_string(),
        mean_stack_distance: sd.mean,
        p50_stack_distance: p50,
        unique_sequences: unique_sequences(keys, 10).total(),
    }
}

/// Computes Figure 7's panels.
pub fn compute(scale: &Scale) -> Vec<Row> {
    super::REPRESENTATIVE
        .into_iter()
        .map(|kind| {
            let trace = super::dataset_trace(kind, "borg", scale);
            let real = key_sequence(&trace);
            let ycsb_l = key_sequence(
                &super::tuned_ycsb(&trace, RequestDistribution::Latest, scale.seed).generate(),
            );
            let ycsb_s = key_sequence(
                &super::tuned_ycsb(&trace, RequestDistribution::Sequential, scale.seed).generate(),
            );
            let shuffled = shuffled_keys(&real, scale.seed);
            Row {
                operator: kind.name().to_string(),
                variants: vec![
                    analyze("real", &real, scale.seed),
                    analyze("ycsb-latest", &ycsb_l, scale.seed),
                    analyze("ycsb-sequential", &ycsb_s, scale.seed),
                    analyze("shuffled", &shuffled, scale.seed),
                ],
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let mut table = Vec::new();
    for row in &rows {
        for v in &row.variants {
            table.push(vec![
                row.operator.clone(),
                v.name.clone(),
                format!("{:.1}", v.mean_stack_distance),
                v.p50_stack_distance.to_string(),
                v.unique_sequences.to_string(),
            ]);
        }
    }
    print_table(
        "Figure 7: locality, real vs YCSB-L vs YCSB-S (Borg)",
        &["operator", "trace", "mean SD", "p50 SD", "uniq seqs"],
        &table,
    );
    dump_json("fig7", &rows);
}
