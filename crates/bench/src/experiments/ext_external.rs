//! Extension experiment (paper §8): external state management.
//!
//! Runs representative workloads against an embedded store and the same
//! store behind synthetic loopback and datacenter networks, quantifying
//! the cost of decoupling compute from state — the scenario the paper
//! defers to future work with "running multiple concurrent instances …
//! and implementing the respective KV store wrappers".

use gadget_core::{GadgetConfig, OperatorKind};
use gadget_hashlog::{HashLogConfig, HashLogStore};
use gadget_kv::{NetworkProfile, RemoteStore, StateStore};
use gadget_replay::{ReplayOptions, TraceReplayer};
use serde::Serialize;

use crate::{dump_json, kops, print_table, us, Scale};

/// One (workload, deployment) measurement.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Deployment: `embedded`, `remote-loopback`, `remote-datacenter`.
    pub deployment: String,
    /// Throughput in ops/s.
    pub throughput: f64,
    /// p99.9 latency in ns.
    pub p999_ns: u64,
}

/// Runs the matrix.
pub fn compute(scale: &Scale) -> Vec<Row> {
    // Scale down: the datacenter profile costs ~100us/op.
    let ops = (scale.ops / 20).max(5_000);
    let options = ReplayOptions {
        max_ops: Some(ops),
        ..ReplayOptions::default()
    };
    let mut rows = Vec::new();
    for kind in [OperatorKind::Aggregation, OperatorKind::TumblingIncr] {
        let trace = GadgetConfig::synthetic(kind, super::fig13::source(scale, kind)).run();
        let deployments: Vec<(&str, Box<dyn StateStore>)> = vec![
            (
                "embedded",
                Box::new(HashLogStore::new(HashLogConfig::default())),
            ),
            (
                "remote-loopback",
                Box::new(RemoteStore::new(
                    HashLogStore::new(HashLogConfig::default()),
                    NetworkProfile::loopback(),
                )),
            ),
            (
                "remote-datacenter",
                Box::new(RemoteStore::new(
                    HashLogStore::new(HashLogConfig::default()),
                    NetworkProfile::datacenter(),
                )),
            ),
        ];
        for (name, store) in deployments {
            let report = TraceReplayer::new(options.clone())
                .replay(&trace, store.as_ref(), kind.name())
                .expect("replay");
            rows.push(Row {
                workload: kind.name().to_string(),
                deployment: name.to_string(),
                throughput: report.throughput,
                p999_ns: report.latency.p999_ns,
            });
        }
    }
    rows
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.deployment.clone(),
                kops(r.throughput),
                us(r.p999_ns),
            ]
        })
        .collect();
    print_table(
        "Extension: embedded vs external (remote) state management",
        &["workload", "deployment", "Kops/s", "p99.9 us"],
        &table,
    );
    dump_json("ext_external", &rows);
}
