//! One module per paper table/figure; each exposes `run(&Scale)`.
//!
//! The binaries in `src/bin/` are thin wrappers so the whole suite can
//! also run in-process (`all_experiments`) and be exercised by tests.

pub mod ext_cache_tuning;
pub mod ext_external;
pub mod ext_sweep;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;
pub mod table2;
pub mod table3;

use gadget_core::{GadgetConfig, OperatorKind};
use gadget_datasets::DatasetSpec;
use gadget_types::Trace;

use crate::Scale;

/// Runs a predefined workload over a dataset with paper-default params.
pub fn dataset_trace(kind: OperatorKind, dataset: &str, scale: &Scale) -> Trace {
    let spec = DatasetSpec {
        events: scale.events,
        seed: scale.seed,
    };
    GadgetConfig::dataset(kind, dataset, spec).run()
}

/// The three representative operators of §3.2.3 / Figs. 5, 7, 10, 11.
pub const REPRESENTATIVE: [OperatorKind; 3] = [
    OperatorKind::Aggregation,
    OperatorKind::TumblingIncr,
    OperatorKind::SlidingJoin,
];

/// Builds a YCSB workload manually tuned to a real trace (paper §4): same
/// operation count, same number of distinct keys, read/update ratio set
/// to the trace's get/write ratio, insert proportion zero, deletes
/// dropped (YCSB does not support them).
pub fn tuned_ycsb(
    trace: &Trace,
    dist: gadget_ycsb::RequestDistribution,
    seed: u64,
) -> gadget_ycsb::YcsbConfig {
    let stats = trace.stats();
    let reads = stats.ratio(gadget_types::OpType::Get);
    gadget_ycsb::YcsbConfig {
        record_count: stats.distinct_keys.max(1),
        operation_count: stats.total,
        read_proportion: reads,
        update_proportion: (1.0 - reads).max(0.0),
        insert_proportion: 0.0,
        rmw_proportion: 0.0,
        distribution: dist,
        value_size: 256,
        seed,
    }
}

/// The "closest" YCSB distribution per representative operator, following
/// the paper's §6.2 tuning (sequential, hotspot, latest).
pub fn closest_ycsb_distribution(kind: OperatorKind) -> gadget_ycsb::RequestDistribution {
    match kind {
        OperatorKind::Aggregation => gadget_ycsb::RequestDistribution::Sequential,
        OperatorKind::TumblingIncr => gadget_ycsb::RequestDistribution::Hotspot,
        _ => gadget_ycsb::RequestDistribution::Latest,
    }
}
