//! Figure 2: effect of window length and session gap on the workload
//! composition (Taxi). Smaller windows / gaps produce a higher proportion
//! of delete operations.

use gadget_core::{GadgetConfig, OperatorKind};
use gadget_datasets::DatasetSpec;
use gadget_types::OpType;
use serde::Serialize;

use crate::{dump_json, fr, print_table, Scale};

/// One configuration point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// `tumbling` or `session`.
    pub operator: String,
    /// The swept parameter value, in seconds.
    pub param_secs: u64,
    /// Fraction of `get`s.
    pub get: f64,
    /// Fraction of `put`s (incl. merges).
    pub write: f64,
    /// Fraction of `delete`s.
    pub delete: f64,
}

/// Computes the sweep.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let spec = DatasetSpec {
        events: scale.events,
        seed: scale.seed,
    };
    let mut rows = Vec::new();

    // Tumbling window length sweep (paper: 1s .. 60s).
    for secs in [1u64, 5, 30, 60] {
        let mut cfg = GadgetConfig::dataset(OperatorKind::TumblingIncr, "taxi", spec);
        cfg.window_length = secs * 1_000;
        let stats = cfg.run().stats();
        rows.push(Row {
            operator: "tumbling".to_string(),
            param_secs: secs,
            get: stats.ratio(OpType::Get),
            write: stats.ratio(OpType::Put) + stats.ratio(OpType::Merge),
            delete: stats.ratio(OpType::Delete),
        });
    }
    // Session gap sweep (paper: 1min .. 10min).
    for mins in [1u64, 2, 5, 10] {
        let mut cfg = GadgetConfig::dataset(OperatorKind::SessionIncr, "taxi", spec);
        cfg.session_gap = mins * 60_000;
        let stats = cfg.run().stats();
        rows.push(Row {
            operator: "session".to_string(),
            param_secs: mins * 60,
            get: stats.ratio(OpType::Get),
            write: stats.ratio(OpType::Put) + stats.ratio(OpType::Merge),
            delete: stats.ratio(OpType::Delete),
        });
    }
    rows
}

/// Runs the experiment and prints the series.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                format!("{}s", r.param_secs),
                fr(r.get),
                fr(r.write),
                fr(r.delete),
            ]
        })
        .collect();
    print_table(
        "Figure 2: window length / session gap vs composition (Taxi)",
        &["operator", "length/gap", "GET", "PUT+MERGE", "DELETE"],
        &table,
    );
    dump_json("fig2", &rows);
}
