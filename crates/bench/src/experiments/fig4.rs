//! Figure 4: effect of the slide of a 10-minute window on event and
//! keyspace amplification (Taxi). Amplification is proportional to
//! `length / slide`.

use gadget_core::{GadgetConfig, OperatorKind};
use gadget_datasets::DatasetSpec;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// One slide point.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Slide in minutes.
    pub slide_mins: u64,
    /// `length / slide` (the predicted amplification factor).
    pub length_over_slide: f64,
    /// Measured event amplification.
    pub event_amplification: f64,
    /// Measured keyspace amplification.
    pub key_amplification: f64,
}

/// Computes the slide sweep.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let spec = DatasetSpec {
        events: scale.events,
        seed: scale.seed,
    };
    let length_mins = 10u64;
    [1u64, 2, 5, 10]
        .into_iter()
        .map(|slide_mins| {
            let mut cfg = GadgetConfig::dataset(OperatorKind::SlidingIncr, "taxi", spec);
            cfg.window_length = length_mins * 60_000;
            cfg.window_slide = slide_mins * 60_000;
            let stats = cfg.run().stats();
            Row {
                slide_mins,
                length_over_slide: length_mins as f64 / slide_mins as f64,
                event_amplification: stats.event_amplification().unwrap_or(0.0),
                key_amplification: stats.key_amplification().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}min", r.slide_mins),
                format!("{:.1}", r.length_over_slide),
                format!("{:.2}", r.event_amplification),
                format!("{:.2}", r.key_amplification),
            ]
        })
        .collect();
    print_table(
        "Figure 4: slide of a 10-min window vs amplification (Taxi)",
        &["slide", "len/slide", "event amp", "keyspace amp"],
        &table,
    );
    dump_json("fig4", &rows);
}
