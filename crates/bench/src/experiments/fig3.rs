//! Figure 3: event and keyspace amplification per operator (Borg).
//! The state store accepts a much higher load than the stream arrival
//! rate; all operators amplify the keyspace except continuous aggregation.

use gadget_core::OperatorKind;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// One bar pair of Figure 3.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// State requests per input event.
    pub event_amplification: f64,
    /// Distinct state keys over distinct input keys.
    pub key_amplification: f64,
}

/// Computes amplification for the nine Table-1 operators.
pub fn compute(scale: &Scale) -> Vec<Row> {
    OperatorKind::TABLE1
        .into_iter()
        .map(|kind| {
            let stats = super::dataset_trace(kind, "borg", scale).stats();
            Row {
                operator: kind.name().to_string(),
                event_amplification: stats.event_amplification().unwrap_or(0.0),
                key_amplification: stats.key_amplification().unwrap_or(0.0),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                format!("{:.2}", r.event_amplification),
                format!("{:.2}", r.key_amplification),
            ]
        })
        .collect();
    print_table(
        "Figure 3: event and keyspace amplification (Borg)",
        &["operator", "event amp", "keyspace amp"],
        &table,
    );
    dump_json("fig3", &rows);
}
