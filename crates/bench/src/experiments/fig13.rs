//! Figure 13: the headline store evaluation — all eleven Gadget workloads
//! on all four stores. The paper's finding: RocksDB is outperformed by
//! FASTER and BerkeleyDB on six of eleven workloads (the non-holistic
//! ones) but offers robust latency everywhere; LSM lazy merges win the
//! holistic window workloads.

use gadget_core::{ArrivalConfig, GadgetConfig, GeneratorConfig, OperatorKind, ValueSizeConfig};
use gadget_distrib::KeyDistributionConfig;
use gadget_replay::{ReplayOptions, TraceReplayer};
use serde::Serialize;

use crate::{all_stores, dump_json, kops, print_table, us, Scale};

/// One (workload, store) measurement.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Store label.
    pub store: String,
    /// Throughput in ops/s.
    pub throughput: f64,
    /// p99.9 latency in ns.
    pub p999_ns: u64,
    /// Mean latency in ns.
    pub mean_ns: f64,
}

/// The synthetic source of §6.3: zipfian keys, Poisson arrivals, 256-byte
/// values, punctuated watermarks every 100 events.
pub fn source(scale: &Scale, kind: OperatorKind) -> GeneratorConfig {
    GeneratorConfig {
        events: scale.ops / 3, // Most workloads amplify ~2-4x to reach ops.
        arrivals: ArrivalConfig::Poisson {
            rate_per_sec: 1_000.0,
        },
        keys: KeyDistributionConfig::Zipfian {
            n: 1_000,
            theta: 0.99,
        },
        value_sizes: ValueSizeConfig::Constant { bytes: 256 },
        watermark_every: 100,
        out_of_order_fraction: 0.0,
        max_lateness: 3_000,
        right_stream_fraction: if kind.is_two_input() { 0.5 } else { 0.0 },
        // Continuous joins need validity bounds: close a key after ~20
        // events on average, like a ride or job ending.
        closing_fraction: if kind == OperatorKind::ContinuousJoin {
            0.05
        } else {
            0.0
        },
        seed: scale.seed,
    }
}

/// Runs the full 11×4 matrix.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let mut rows = Vec::new();
    let options = ReplayOptions {
        max_ops: Some(scale.ops),
        ..ReplayOptions::default()
    };
    for kind in OperatorKind::ALL {
        let cfg = GadgetConfig::synthetic(kind, source(scale, kind));
        let trace = cfg.run();
        for inst in all_stores(64) {
            let replayer = TraceReplayer::new(options.clone());
            let report = replayer
                .replay(&trace, inst.store.as_ref(), kind.name())
                .expect("replay");
            rows.push(Row {
                workload: kind.name().to_string(),
                store: inst.label.to_string(),
                throughput: report.throughput,
                p999_ns: report.latency.p999_ns,
                mean_ns: report.latency.mean_ns,
            });
        }
    }
    rows
}

/// Counts on how many workloads the given store is beaten by at least one
/// of `rivals` on throughput.
pub fn outperformed_count(rows: &[Row], store: &str, rivals: &[&str]) -> usize {
    let workloads: std::collections::HashSet<&str> =
        rows.iter().map(|r| r.workload.as_str()).collect();
    workloads
        .into_iter()
        .filter(|w| {
            let of = |s: &str| {
                rows.iter()
                    .find(|r| r.workload == *w && r.store == s)
                    .map(|r| r.throughput)
                    .unwrap_or(0.0)
            };
            let mine = of(store);
            rivals.iter().any(|r| of(r) > mine)
        })
        .count()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.store.clone(),
                kops(r.throughput),
                us(r.p999_ns),
            ]
        })
        .collect();
    print_table(
        "Figure 13: eleven Gadget workloads on all four stores",
        &["workload", "store", "Kops/s", "p99.9 us"],
        &table,
    );
    let beaten = outperformed_count(
        &rows,
        "rocksdb-class",
        &["faster-class", "berkeleydb-class"],
    );
    println!(
        "\nrocksdb-class outperformed by faster/berkeleydb on {beaten} of 11 workloads \
         (paper: 6 of 11)"
    );
    dump_json("fig13", &rows);
}
