//! Table 3: TTL percentiles (in thousands of timesteps) of 1K random keys
//! in real traces vs the closest tuned YCSB traces. Real workloads have
//! dramatically shorter TTLs.

use gadget_analysis::{key_sequence, ttl_distribution};
use rand::seq::SliceRandom;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// TTL percentiles (steps) of one trace.
#[derive(Debug, Serialize)]
pub struct TtlRow {
    /// Median TTL.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum.
    pub max: u64,
    /// Fraction of sampled keys accessed exactly once.
    pub accessed_once_fraction: f64,
}

/// One operator row: real vs closest YCSB.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// TTLs of the real Gadget trace.
    pub real: TtlRow,
    /// TTLs of the tuned YCSB trace.
    pub ycsb: TtlRow,
}

fn summarize(keys: &[u128], sample: &[u128]) -> TtlRow {
    let s = ttl_distribution(keys, Some(sample));
    TtlRow {
        p50: s.percentile(50.0),
        p90: s.percentile(90.0),
        p999: s.percentile(99.9),
        max: s.max(),
        accessed_once_fraction: s.accessed_once_fraction(),
    }
}

fn sample_keys(keys: &[u128], n: usize, seed: u64) -> Vec<u128> {
    let mut distinct: Vec<u128> = {
        let mut v = keys.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut rng = gadget_distrib::seeded_rng(seed);
    distinct.shuffle(&mut rng);
    distinct.truncate(n);
    distinct
}

/// Computes the table.
pub fn compute(scale: &Scale) -> Vec<Row> {
    super::REPRESENTATIVE
        .into_iter()
        .map(|kind| {
            let trace = super::dataset_trace(kind, "borg", scale);
            let real_keys = key_sequence(&trace);
            let real_sample = sample_keys(&real_keys, 1_000, scale.seed);

            let ycsb =
                super::tuned_ycsb(&trace, super::closest_ycsb_distribution(kind), scale.seed)
                    .generate();
            let ycsb_keys = key_sequence(&ycsb);
            let ycsb_sample = sample_keys(&ycsb_keys, 1_000, scale.seed);

            Row {
                operator: kind.name().to_string(),
                real: summarize(&real_keys, &real_sample),
                ycsb: summarize(&ycsb_keys, &ycsb_sample),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let k = |v: u64| format!("{:.1}", v as f64 / 1_000.0);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                format!("{} ({})", k(r.real.p50), k(r.ycsb.p50)),
                format!("{} ({})", k(r.real.p90), k(r.ycsb.p90)),
                format!("{} ({})", k(r.real.p999), k(r.ycsb.p999)),
                format!("{} ({})", k(r.real.max), k(r.ycsb.max)),
                format!(
                    "{:.2} ({:.2})",
                    r.real.accessed_once_fraction, r.ycsb.accessed_once_fraction
                ),
            ]
        })
        .collect();
    print_table(
        "Table 3: TTL in K steps, real vs closest YCSB (in parens), 1K random keys",
        &["operator", "p50", "p90", "p99.9", "max", "once-frac"],
        &table,
    );
    dump_json("table3", &rows);
}
