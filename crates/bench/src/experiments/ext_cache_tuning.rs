//! Extension experiment (paper §8): automatic cache-size tuning.
//!
//! Derives each workload's miss-ratio curve from its stack-distance
//! profile and recommends the smallest LRU capacity achieving a 90% hit
//! rate — "our temporal locality analysis could be used to provide
//! automatic cache size tuning in state stores".

use gadget_analysis::{key_sequence, miss_ratio_curve, recommend_capacity, stack_distances};
use gadget_core::OperatorKind;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// One workload's tuning result.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// Distinct keys in the trace.
    pub distinct_keys: u64,
    /// Recommended LRU capacity (keys) for a 90% hit rate, if reachable.
    pub capacity_for_90: Option<u64>,
    /// Miss ratio with a 64-key cache.
    pub miss_at_64: f64,
    /// Miss ratio with a 4096-key cache.
    pub miss_at_4096: f64,
}

/// Computes the tuning table for the nine Table-1 operators.
pub fn compute(scale: &Scale) -> Vec<Row> {
    OperatorKind::TABLE1
        .into_iter()
        .map(|kind| {
            let trace = super::dataset_trace(kind, "borg", scale);
            let keys = key_sequence(&trace);
            let summary = stack_distances(&keys, None);
            let curve = miss_ratio_curve(&summary, &[64, 4_096]);
            Row {
                operator: kind.name().to_string(),
                distinct_keys: trace.stats().distinct_keys,
                capacity_for_90: recommend_capacity(&summary, 0.9),
                miss_at_64: curve[0].miss_ratio,
                miss_at_4096: curve[1].miss_ratio,
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                r.distinct_keys.to_string(),
                r.capacity_for_90
                    .map(|c| c.to_string())
                    .unwrap_or_else(|| "unreachable".to_string()),
                format!("{:.3}", r.miss_at_64),
                format!("{:.3}", r.miss_at_4096),
            ]
        })
        .collect();
    print_table(
        "Extension: LRU capacity recommendation per workload (90% hit target, Borg)",
        &[
            "operator",
            "distinct keys",
            "cap@90%",
            "miss@64",
            "miss@4096",
        ],
        &table,
    );
    dump_json("ext_cache_tuning", &rows);
}
