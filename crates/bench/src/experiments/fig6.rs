//! Figure 6: effect of watermark frequency on the working-set size of an
//! incremental tumbling window (Azure). Slow watermarks keep windows in
//! state longer, increasing the working set by up to ~3x.

use gadget_analysis::{key_sequence, working_set, working_set_series};
use gadget_core::{GadgetConfig, OperatorKind, SourceConfig};
use gadget_datasets::DatasetSpec;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// One watermark-frequency series.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Watermark period in events.
    pub watermark_every: u64,
    /// Peak working-set size.
    pub peak_working_set: u64,
    /// Mean working-set size over the trace.
    pub mean_working_set: f64,
}

/// Computes the two series of Figure 6.
pub fn compute(scale: &Scale) -> Vec<Row> {
    [100u64, 1_000]
        .into_iter()
        .map(|wm| {
            let spec = DatasetSpec {
                events: scale.events,
                seed: scale.seed,
            };
            let mut cfg = GadgetConfig::dataset(OperatorKind::TumblingIncr, "azure", spec);
            if let SourceConfig::Dataset {
                watermark_every, ..
            } = &mut cfg.source
            {
                *watermark_every = wm;
            }
            let trace = cfg.run();
            let series = working_set_series(&key_sequence(&trace), 100);
            let mean = if series.is_empty() {
                0.0
            } else {
                series.iter().map(|p| p.size).sum::<u64>() as f64 / series.len() as f64
            };
            Row {
                watermark_every: wm,
                peak_working_set: working_set::peak(&series),
                mean_working_set: mean,
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("every {} events", r.watermark_every),
                r.peak_working_set.to_string(),
                format!("{:.1}", r.mean_working_set),
            ]
        })
        .collect();
    print_table(
        "Figure 6: watermark frequency vs working-set size (Azure, tumbling-incr)",
        &["watermarks", "peak WS", "mean WS"],
        &table,
    );
    if rows.len() == 2 && rows[0].peak_working_set > 0 {
        println!(
            "slow/fast peak ratio: {:.2}x",
            rows[1].peak_working_set as f64 / rows[0].peak_working_set as f64
        );
    }
    dump_json("fig6", &rows);
}
