//! Figure 10: how close are Gadget traces to real traces? Compares the
//! locality of Gadget's *simulated* traces against traces recorded from
//! the instrumented reference stream processor executing real state
//! (our stand-in for instrumented Flink).

use gadget_analysis::{key_sequence, shuffled_keys, stack_distances, unique_sequences};
use gadget_core::{Driver, GadgetConfig};
use gadget_datasets::DatasetSpec;
use gadget_flinksim::run_reference;
use gadget_kv::MemStore;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// One operator's comparison.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// Mean stack distance: real (reference-execution) trace.
    pub real_mean_sd: f64,
    /// Mean stack distance: Gadget simulated trace.
    pub gadget_mean_sd: f64,
    /// Mean stack distance: shuffled baseline.
    pub shuffled_mean_sd: f64,
    /// Unique sequences (1..=10): real trace.
    pub real_sequences: u64,
    /// Unique sequences: Gadget trace.
    pub gadget_sequences: u64,
    /// Unique sequences: shuffled baseline.
    pub shuffled_sequences: u64,
    /// Lengths of the two traces.
    pub real_len: usize,
    /// Gadget trace length.
    pub gadget_len: usize,
}

/// Computes the comparison for the representative operators.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let spec = DatasetSpec {
        events: scale.events,
        seed: scale.seed,
    };
    super::REPRESENTATIVE
        .into_iter()
        .map(|kind| {
            let cfg = GadgetConfig::dataset(kind, "borg", spec);
            let stream = cfg.build_stream();
            let params = cfg.operator_params();

            let real = run_reference(kind, &params, stream.clone().into_iter(), MemStore::new())
                .expect("reference run");
            let mut driver = Driver::new(kind.build(&params));
            let gadget = driver.run(stream.into_iter());

            let real_keys = key_sequence(&real);
            let gadget_keys = key_sequence(&gadget);
            let shuffled = shuffled_keys(&real_keys, scale.seed);

            Row {
                operator: kind.name().to_string(),
                real_mean_sd: stack_distances(&real_keys, None).mean,
                gadget_mean_sd: stack_distances(&gadget_keys, None).mean,
                shuffled_mean_sd: stack_distances(&shuffled, None).mean,
                real_sequences: unique_sequences(&real_keys, 10).total(),
                gadget_sequences: unique_sequences(&gadget_keys, 10).total(),
                shuffled_sequences: unique_sequences(&shuffled, 10).total(),
                real_len: real.len(),
                gadget_len: gadget.len(),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                format!("{:.1}", r.real_mean_sd),
                format!("{:.1}", r.gadget_mean_sd),
                format!("{:.1}", r.shuffled_mean_sd),
                r.real_sequences.to_string(),
                r.gadget_sequences.to_string(),
                r.shuffled_sequences.to_string(),
                format!("{}/{}", r.gadget_len, r.real_len),
            ]
        })
        .collect();
    print_table(
        "Figure 10: Gadget vs real (reference-execution) trace locality (Borg)",
        &[
            "operator",
            "SD real",
            "SD gadget",
            "SD shuf",
            "seqs real",
            "seqs gadget",
            "seqs shuf",
            "len g/r",
        ],
        &table,
    );
    dump_json("fig10", &rows);
}
