//! Figure 12: the YCSB baseline — core workloads A (update heavy),
//! D (read latest), and F (read-modify-write) on all four stores with
//! 1K keys and zipfian requests.

use gadget_kv::{ObservedStore, StateStore};
use gadget_obs::trace;
use gadget_replay::{ReplayOptions, TraceReplayer};
use gadget_ycsb::{CoreWorkload, YcsbConfig};
use serde::Serialize;

use crate::{all_stores, dump_json, kops, print_table, us, Scale, SharedStore};

/// One (workload, store) measurement.
#[derive(Debug, Serialize)]
pub struct Row {
    /// YCSB workload name (`A`, `D`, `F`).
    pub workload: String,
    /// Store label.
    pub store: String,
    /// Throughput in ops/s.
    pub throughput: f64,
    /// p99.9 latency in ns.
    pub p999_ns: u64,
}

/// Runs the matrix.
///
/// With `--trace PATH` the whole matrix runs inside one trace session:
/// sampled op spans (stores wrapped in [`ObservedStore`]), always-on
/// background spans, and replay phase spans land in one Chrome JSON
/// timeline, and a tail-latency attribution table is printed.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let session = scale.trace.as_ref().map(|_| trace::start_session());
    let mut rows = Vec::new();
    let mut snapshots = Vec::new();
    for (name, workload) in [
        ("A", CoreWorkload::A),
        ("D", CoreWorkload::D),
        ("F", CoreWorkload::F),
    ] {
        // Paper §6.3: 1K keys, 2M operations, 8-byte keys, 256-byte values.
        let cfg = YcsbConfig::core(workload, 1_000, scale.ops);
        let trace = cfg.generate();
        for inst in all_stores(64) {
            let run_store: Box<dyn StateStore> = if session.is_some() {
                Box::new(ObservedStore::new(SharedStore(inst.store.clone())))
            } else {
                Box::new(SharedStore(inst.store.clone()))
            };
            // `--batch-size N` routes the replay through apply_batch
            // (N > 1), exercising each store's native batch path.
            let replayer = TraceReplayer::new(ReplayOptions {
                batch_size: scale.batch,
                ..ReplayOptions::default()
            });
            replayer
                .preload(run_store.as_ref(), cfg.preload_keys(), cfg.value_size)
                .expect("preload");
            let report = replayer
                .replay(&trace, run_store.as_ref(), name)
                .expect("replay");
            if let Some(dir) = &scale.reports {
                crate::emit_run_report(
                    dir,
                    "fig12",
                    inst.label,
                    &report,
                    inst.store.metrics(),
                    &format!(
                        "fig12 workload={name} ops={} batch={}",
                        scale.ops, scale.batch
                    ),
                    scale.batch,
                );
            }
            rows.push(Row {
                workload: name.to_string(),
                store: inst.label.to_string(),
                throughput: report.throughput,
                p999_ns: report.latency.p999_ns,
            });
            if scale.metrics.is_some() {
                if let Some(snap) = inst.store.metrics() {
                    snapshots.push((format!("{name}/{}", inst.label), snap));
                }
            }
        }
    }
    if let Some(path) = &scale.metrics {
        crate::dump_store_metrics(path, &snapshots);
    }
    if let (Some(path), Some(session)) = (&scale.trace, session) {
        let log = session.finish();
        match log.write_chrome(path) {
            Ok(()) => println!(
                "wrote {} trace spans to {} (load in https://ui.perfetto.dev, {} dropped)",
                log.events.len(),
                path.display(),
                log.dropped
            ),
            Err(e) => eprintln!("cannot write trace {}: {e}", path.display()),
        }
        println!("{}", log.attribution().to_table());
    }
    rows
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.store.clone(),
                kops(r.throughput),
                us(r.p999_ns),
            ]
        })
        .collect();
    print_table(
        "Figure 12: YCSB core workloads A/D/F on all stores",
        &["workload", "store", "Kops/s", "p99.9 us"],
        &table,
    );
    dump_json("fig12", &rows);
}
