//! Table 2: Kolmogorov–Smirnov test between the input key distribution
//! and the state key distribution per operator (Borg). Only continuous
//! aggregation preserves the input distribution.

use gadget_analysis::{ks_test, rank_normalize};
use gadget_core::OperatorKind;
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// One row of Table 2.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// KS statistic `D`.
    pub d: f64,
    /// p-value.
    pub p_value: f64,
    /// Input sample size (events).
    pub n: usize,
    /// State sample size (accesses).
    pub m: usize,
    /// Whether the null hypothesis is rejected at α = 0.001.
    pub rejected: bool,
}

/// Computes the KS rows.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let spec = gadget_datasets::DatasetSpec {
        events: scale.events,
        seed: scale.seed,
    };
    OperatorKind::TABLE1
        .into_iter()
        .map(|kind| {
            let cfg = gadget_core::GadgetConfig::dataset(kind, "borg", spec);
            // Input key sequence: the events actually fed to the operator.
            let input_keys: Vec<u128> = cfg
                .build_stream()
                .iter()
                .filter_map(|el| el.as_event())
                .map(|e| e.key as u128)
                .collect();
            let trace = cfg.run();
            let state_keys: Vec<u128> = trace.iter().map(|a| a.key.as_u128()).collect();

            // Map each sample onto the common normalized-rank domain
            // (paper §4) and compare the distributions.
            let s1 = rank_normalize(&input_keys);
            let s2 = rank_normalize(&state_keys);
            let r = ks_test(&s1, &s2);
            Row {
                operator: kind.name().to_string(),
                d: r.d,
                p_value: r.p_value,
                n: r.n,
                m: r.m,
                rejected: r.rejects(0.001),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                format!("{:.3}", r.d),
                format!("{:.3}", r.p_value),
                r.n.to_string(),
                r.m.to_string(),
                if r.rejected { "yes" } else { "no" }.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 2: KS test, input vs state key distribution (Borg)",
        &["operator", "D", "p-value", "n", "m", "rejected"],
        &table,
    );
    dump_json("table2", &rows);
}
