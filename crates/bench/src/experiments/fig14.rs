//! Figure 14: concurrent operators sharing one RocksDB-class store
//! instance. Compares each operator running alone against *Concurrent-A*
//! (two operators of the same type) and *Concurrent-B* (an incremental
//! and a holistic sliding window co-located).

use std::sync::Arc;

use gadget_core::{GadgetConfig, OperatorKind};
use gadget_replay::{run_concurrent, ReplayOptions, TraceReplayer};
use gadget_types::Trace;
use serde::Serialize;

use crate::{build_store, dump_json, kops, print_table, us, Scale};

/// One measurement.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator under measurement.
    pub operator: String,
    /// Deployment: `isolated`, `concurrent-A`, `concurrent-B`.
    pub deployment: String,
    /// Throughput in ops/s.
    pub throughput: f64,
    /// p99.9 latency in ns.
    pub p999_ns: u64,
}

fn trace_for(kind: OperatorKind, scale: &Scale, seed_shift: u64) -> Trace {
    let mut gen = super::fig13::source(scale, kind);
    gen.seed = scale.seed + seed_shift;
    gen.events = scale.ops / 3;
    GadgetConfig::synthetic(kind, gen).run()
}

/// Runs the experiment matrix.
pub fn compute(scale: &Scale) -> Vec<Row> {
    let options = ReplayOptions {
        max_ops: Some(scale.ops / 2),
        ..ReplayOptions::default()
    };
    let mut rows = Vec::new();

    let incr = trace_for(OperatorKind::SlidingIncr, scale, 0);
    let incr2 = trace_for(OperatorKind::SlidingIncr, scale, 1);
    let hol = trace_for(OperatorKind::SlidingHol, scale, 2);
    let hol2 = trace_for(OperatorKind::SlidingHol, scale, 3);

    // Isolated runs.
    for (name, trace) in [("sliding-incr", &incr), ("sliding-hol", &hol)] {
        let inst = build_store("rocksdb-class", 64);
        let report = TraceReplayer::new(options.clone())
            .replay(trace, inst.store.as_ref(), name)
            .expect("replay");
        rows.push(Row {
            operator: name.to_string(),
            deployment: "isolated".to_string(),
            throughput: report.throughput,
            p999_ns: report.latency.p999_ns,
        });
    }

    // Concurrent-A: two operators of the same type share the store.
    for (name, a, b) in [
        ("sliding-incr", incr.clone(), incr2),
        ("sliding-hol", hol.clone(), hol2),
    ] {
        let inst = build_store("rocksdb-class", 64);
        let store: Arc<dyn gadget_kv::StateStore> = inst.store.clone();
        let reports = run_concurrent(
            vec![(name.to_string(), a), (format!("{name}-peer"), b)],
            store,
            options.clone(),
        )
        .expect("concurrent run");
        rows.push(Row {
            operator: name.to_string(),
            deployment: "concurrent-A".to_string(),
            throughput: reports[0].throughput,
            p999_ns: reports[0].latency.p999_ns,
        });
    }

    // Concurrent-B: incremental and holistic share the store.
    {
        let inst = build_store("rocksdb-class", 64);
        let store: Arc<dyn gadget_kv::StateStore> = inst.store.clone();
        let reports = run_concurrent(
            vec![
                ("sliding-incr".to_string(), incr),
                ("sliding-hol".to_string(), hol),
            ],
            store,
            options,
        )
        .expect("concurrent run");
        for report in reports {
            rows.push(Row {
                operator: report.workload.clone(),
                deployment: "concurrent-B".to_string(),
                throughput: report.throughput,
                p999_ns: report.latency.p999_ns,
            });
        }
    }
    rows
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                r.deployment.clone(),
                kops(r.throughput),
                us(r.p999_ns),
            ]
        })
        .collect();
    print_table(
        "Figure 14: concurrent operators on one RocksDB-class instance",
        &["operator", "deployment", "Kops/s", "p99.9 us"],
        &table,
    );
    dump_json("fig14", &rows);
}
