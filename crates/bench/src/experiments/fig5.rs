//! Figure 5: locality and ephemerality of streaming state workloads
//! (Borg): stack distances, unique key sequences, and working-set size
//! for the three representative operators, each against its shuffled
//! baseline.

use gadget_analysis::{
    key_sequence, shuffled_keys, stack_distances, unique_sequences, working_set_series,
};
use serde::Serialize;

use crate::{dump_json, print_table, Scale};

/// Locality summary for one operator.
#[derive(Debug, Serialize)]
pub struct Row {
    /// Operator name.
    pub operator: String,
    /// Mean stack distance in the real trace.
    pub mean_stack_distance: f64,
    /// Mean stack distance in the shuffled trace.
    pub shuffled_mean_stack_distance: f64,
    /// Unique sequences (lengths 1..=10) in the real trace.
    pub unique_sequences: u64,
    /// Unique sequences in the shuffled trace.
    pub shuffled_unique_sequences: u64,
    /// Peak working-set size (sampled every 100 ops).
    pub peak_working_set: u64,
    /// Working-set size at the end of the trace.
    pub final_working_set: u64,
}

/// Computes Figure 5's three panels for the representative operators.
pub fn compute(scale: &Scale) -> Vec<Row> {
    super::REPRESENTATIVE
        .into_iter()
        .map(|kind| {
            let trace = super::dataset_trace(kind, "borg", scale);
            let keys = key_sequence(&trace);
            let shuffled = shuffled_keys(&keys, scale.seed);

            let sd = stack_distances(&keys, None);
            let sd_shuffled = stack_distances(&shuffled, None);
            let seqs = unique_sequences(&keys, 10);
            let seqs_shuffled = unique_sequences(&shuffled, 10);
            let ws = working_set_series(&keys, 100);
            Row {
                operator: kind.name().to_string(),
                mean_stack_distance: sd.mean,
                shuffled_mean_stack_distance: sd_shuffled.mean,
                unique_sequences: seqs.total(),
                shuffled_unique_sequences: seqs_shuffled.total(),
                peak_working_set: gadget_analysis::working_set::peak(&ws),
                final_working_set: ws.last().map(|p| p.size).unwrap_or(0),
            }
        })
        .collect()
}

/// Runs the experiment.
pub fn run(scale: &Scale) {
    let rows = compute(scale);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.operator.clone(),
                format!("{:.1}", r.mean_stack_distance),
                format!("{:.1}", r.shuffled_mean_stack_distance),
                r.unique_sequences.to_string(),
                r.shuffled_unique_sequences.to_string(),
                r.peak_working_set.to_string(),
                r.final_working_set.to_string(),
            ]
        })
        .collect();
    print_table(
        "Figure 5: locality & ephemerality (Borg) — real vs shuffled",
        &[
            "operator",
            "mean SD",
            "mean SD (shuf)",
            "uniq seqs",
            "uniq seqs (shuf)",
            "peak WS",
            "final WS",
        ],
        &table,
    );
    dump_json("fig5", &rows);
}
