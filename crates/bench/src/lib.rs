//! Shared plumbing for the experiment binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md §5 for the index). This
//! library provides what they share: the store zoo, scale flags, table
//! printing, and JSON result dumps.
//!
//! Scale note: the binaries default to CI-friendly sizes (hundreds of
//! thousands of events) rather than the paper's server-scale runs; pass
//! `--full` or `--events N` / `--ops N` to scale up. Result *shapes* —
//! who wins, by what factor, where the crossovers are — are what we
//! reproduce; absolute numbers depend on hardware.

use std::path::PathBuf;
use std::sync::Arc;

use gadget_btree::{BTreeConfig, BTreeStore};
use gadget_hashlog::{HashLogConfig, HashLogStore};
use gadget_kv::StateStore;
use gadget_lsm::{LsmConfig, LsmStore};

/// Command-line scale options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Input events for characterization experiments.
    pub events: u64,
    /// Operations for store-performance experiments.
    pub ops: u64,
    /// RNG seed.
    pub seed: u64,
    /// Where to dump end-of-run store metrics snapshots
    /// ([`dump_store_metrics`]), if anywhere.
    pub metrics: Option<PathBuf>,
    /// Where to write a Chrome trace-event JSON span timeline
    /// (`gadget_obs::trace`), if anywhere. Experiments that honor this
    /// (fig12) also print a tail-latency attribution table.
    pub trace: Option<PathBuf>,
    /// Ops per `apply_batch` call in replay-based experiments (1 =
    /// op-by-op, the pre-batching behavior).
    pub batch: usize,
    /// Directory for versioned per-run reports (`gadget-report`), if
    /// any. Experiments that measure store runs (fig12) drop one
    /// report per (workload, store) here so `gadget report compare`
    /// can diff them across revisions.
    pub reports: Option<PathBuf>,
}

impl Scale {
    /// Parses `--events N`, `--ops N`, `--seed N`, `--metrics PATH`,
    /// `--trace PATH`, `--batch-size N`, `--reports DIR`,
    /// `--no-reports`, `--full` from argv.
    pub fn from_args() -> Scale {
        let mut scale = Scale {
            events: 100_000,
            ops: 200_000,
            seed: 42,
            metrics: None,
            trace: None,
            batch: 1,
            reports: Some(PathBuf::from("results/reports")),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    scale.events = 2_500_000;
                    scale.ops = 2_000_000;
                }
                "--events" if i + 1 < args.len() => {
                    scale.events = args[i + 1].parse().expect("--events takes a number");
                    i += 1;
                }
                "--ops" if i + 1 < args.len() => {
                    scale.ops = args[i + 1].parse().expect("--ops takes a number");
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    scale.seed = args[i + 1].parse().expect("--seed takes a number");
                    i += 1;
                }
                "--metrics" if i + 1 < args.len() => {
                    scale.metrics = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--trace" if i + 1 < args.len() => {
                    scale.trace = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--batch-size" if i + 1 < args.len() => {
                    scale.batch = args[i + 1].parse().expect("--batch-size takes a number");
                    i += 1;
                }
                "--reports" if i + 1 < args.len() => {
                    scale.reports = Some(PathBuf::from(&args[i + 1]));
                    i += 1;
                }
                "--no-reports" => {
                    scale.reports = None;
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
            i += 1;
        }
        scale
    }
}

/// A store instance plus the temp directory backing it (cleaned on drop).
pub struct StoreInstance {
    /// Report name: `rocksdb-class`, `lethe-class`, `faster-class`,
    /// `berkeleydb-class`.
    pub label: &'static str,
    /// The store.
    pub store: Arc<dyn StateStore>,
    dir: Option<PathBuf>,
}

impl Drop for StoreInstance {
    fn drop(&mut self) {
        if let Some(dir) = self.dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gadget-bench-{label}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock before epoch")
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Builds one store of the zoo by label.
///
/// Store memory budgets follow the paper's setup (§6): RocksDB/Lethe with
/// 128 MiB memtables + 64 MiB cache, BerkeleyDB with a 256 MiB cache,
/// FASTER with a 256 MiB log region — scaled down by `shrink` (1 = paper
/// sizes) so CI machines are not required to hold gigabytes.
pub fn build_store(label: &str, shrink: usize) -> StoreInstance {
    let shrink = shrink.max(1);
    match label {
        "rocksdb-class" => {
            let dir = fresh_dir(label);
            let cfg = LsmConfig {
                memtable_bytes: (128 << 20) / shrink,
                block_cache_bytes: (64 << 20) / shrink,
                l1_target_bytes: ((256 << 20) / shrink) as u64,
                target_file_bytes: (64 << 20) / shrink,
                ..LsmConfig::paper_rocksdb()
            };
            StoreInstance {
                label: "rocksdb-class",
                store: Arc::new(LsmStore::open(&dir, cfg).expect("open lsm")),
                dir: Some(dir),
            }
        }
        "lethe-class" => {
            let dir = fresh_dir(label);
            let cfg = LsmConfig {
                memtable_bytes: (128 << 20) / shrink,
                block_cache_bytes: (64 << 20) / shrink,
                l1_target_bytes: ((256 << 20) / shrink) as u64,
                target_file_bytes: (64 << 20) / shrink,
                ..LsmConfig::paper_lethe()
            };
            StoreInstance {
                label: "lethe-class",
                store: Arc::new(LsmStore::open(&dir, cfg).expect("open lethe")),
                dir: Some(dir),
            }
        }
        "faster-class" => {
            let cfg = HashLogConfig {
                mutable_bytes: (64 << 20) / shrink / 64,
                ..HashLogConfig::default()
            };
            StoreInstance {
                label: "faster-class",
                store: Arc::new(HashLogStore::new(cfg)),
                dir: None,
            }
        }
        "berkeleydb-class" => {
            let dir = fresh_dir(label);
            let cfg = BTreeConfig {
                page_cache_bytes: (256 << 20) / shrink,
                ..BTreeConfig::default()
            };
            StoreInstance {
                label: "berkeleydb-class",
                store: Arc::new(BTreeStore::open(dir.join("data.db"), cfg).expect("open btree")),
                dir: Some(dir),
            }
        }
        other => panic!("unknown store label {other}"),
    }
}

/// Writes labeled end-of-run store metrics snapshots as one JSON object
/// keyed by label (the sink for [`Scale::metrics`] / `--metrics PATH`).
pub fn dump_store_metrics(
    path: &std::path::Path,
    snapshots: &[(String, gadget_obs::MetricsSnapshot)],
) {
    use serde::Serialize;
    let obj = serde::Value::Object(
        snapshots
            .iter()
            .map(|(n, s)| (n.clone(), s.to_value()))
            .collect(),
    );
    match serde_json::to_string_pretty(&obj) {
        Ok(mut text) => {
            text.push('\n');
            match std::fs::write(path, text) {
                Ok(()) => println!(
                    "wrote {} store metrics snapshots to {}",
                    snapshots.len(),
                    path.display()
                ),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
        Err(e) => eprintln!("cannot serialize metrics: {e}"),
    }
}

/// The paper's four stores, in Figure-12/13 order.
pub const STORE_LABELS: [&str; 4] = [
    "rocksdb-class",
    "lethe-class",
    "faster-class",
    "berkeleydb-class",
];

/// Builds the whole zoo.
pub fn all_stores(shrink: usize) -> Vec<StoreInstance> {
    STORE_LABELS
        .iter()
        .map(|l| build_store(l, shrink))
        .collect()
}

/// Prints a markdown-ish table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Writes a JSON result blob under `results/<name>.json`.
pub fn dump_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                println!("(results saved to {})", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize {name}: {e}"),
    }
}

/// Writes a versioned run report for one measured experiment run into
/// `dir` as `<experiment>-<workload>-<store_label>.json`.
///
/// The store identity in the report is `store_label` (the zoo label,
/// e.g. `rocksdb-class`) rather than the engine name the replay layer
/// recorded, so the two LSM variants don't collide and baselines match
/// on the label users sweep by.
pub fn emit_run_report(
    dir: &std::path::Path,
    experiment: &str,
    store_label: &str,
    run: &gadget_replay::RunReport,
    metrics: Option<gadget_obs::MetricsSnapshot>,
    config: &str,
    batch: usize,
) {
    let mut meta = gadget_report::capture(config);
    meta.batch_size = batch as u64;
    let mut report = gadget_report::RunReport::from_run(run, meta);
    report.store = store_label.to_string();
    if let Some(snapshot) = metrics {
        report.metrics = snapshot;
    }
    let slug = |s: &str| {
        s.to_lowercase()
            .replace(|c: char| !c.is_ascii_alphanumeric() && c != '-', "-")
    };
    let path = dir.join(format!(
        "{experiment}-{}-{}.json",
        slug(&run.workload),
        slug(store_label)
    ));
    match report.save(&path) {
        Ok(()) => println!("(run report saved to {})", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Reports directory for criterion benches, which run with the package
/// directory as cwd: resolves to `<workspace>/results/reports`.
pub fn bench_reports_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results/reports")
}

/// Adapter: lets an `Arc<dyn StateStore>` zoo handle be wrapped by
/// decorators that take ownership of a concrete store (notably
/// `ObservedStore` when an experiment runs with `--trace`).
pub struct SharedStore(pub Arc<dyn StateStore>);

impl StateStore for SharedStore {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn get(&self, key: &[u8]) -> Result<Option<bytes::Bytes>, gadget_kv::StoreError> {
        self.0.get(key)
    }
    fn put(&self, key: &[u8], value: &[u8]) -> Result<(), gadget_kv::StoreError> {
        self.0.put(key, value)
    }
    fn merge(&self, key: &[u8], operand: &[u8]) -> Result<(), gadget_kv::StoreError> {
        self.0.merge(key, operand)
    }
    fn delete(&self, key: &[u8]) -> Result<(), gadget_kv::StoreError> {
        self.0.delete(key)
    }
    fn scan(
        &self,
        lo: &[u8],
        hi: &[u8],
    ) -> Result<Vec<(bytes::Bytes, bytes::Bytes)>, gadget_kv::StoreError> {
        self.0.scan(lo, hi)
    }
    fn supports_scan(&self) -> bool {
        self.0.supports_scan()
    }
    fn supports_merge(&self) -> bool {
        self.0.supports_merge()
    }
    fn flush(&self) -> Result<(), gadget_kv::StoreError> {
        self.0.flush()
    }
    fn internal_counters(&self) -> Vec<(String, u64)> {
        self.0.internal_counters()
    }
    // Must forward: the trait default would silently degrade batches to
    // op-by-op, hiding the inner store's native group-commit path.
    fn apply_batch(
        &self,
        batch: &[gadget_types::Op],
    ) -> Result<Vec<gadget_kv::BatchResult>, gadget_kv::StoreError> {
        self.0.apply_batch(batch)
    }
    fn metrics(&self) -> Option<gadget_obs::MetricsSnapshot> {
        self.0.metrics()
    }
}

/// Formats a ratio as a fixed-width percentage-like fraction.
pub fn fr(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a throughput in Kops/s.
pub fn kops(x: f64) -> String {
    format!("{:.1}", x / 1_000.0)
}

/// Formats nanoseconds as microseconds.
pub fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_builds_and_serves() {
        for inst in all_stores(64) {
            inst.store.put(b"k", b"v").expect(inst.label);
            assert_eq!(
                inst.store.get(b"k").expect(inst.label).as_deref(),
                Some(&b"v"[..]),
                "{}",
                inst.label
            );
        }
    }

    #[test]
    fn labels_match() {
        for label in STORE_LABELS {
            let inst = build_store(label, 64);
            assert_eq!(inst.label, label);
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fr(0.5), "0.500");
        assert_eq!(kops(12_345.0), "12.3");
        assert_eq!(us(1_500), "1.5");
    }
}
pub mod experiments;
