//! Regenerates the paper's table3 (see DESIGN.md for the experiment index).

fn main() {
    let scale = gadget_bench::Scale::from_args();
    gadget_bench::experiments::table3::run(&scale);
}
