//! Extension experiment beyond the paper's evaluation (its §8 future
//! work); see the module docs of `gadget_bench::experiments::ext_cache_tuning`.

fn main() {
    let scale = gadget_bench::Scale::from_args();
    gadget_bench::experiments::ext_cache_tuning::run(&scale);
}
