//! Regenerates the open-loop rate-sweep curves (see DESIGN.md for the
//! experiment index).

fn main() {
    let scale = gadget_bench::Scale::from_args();
    gadget_bench::experiments::ext_sweep::run(&scale);
}
