//! Regenerates the paper's fig7 (see DESIGN.md for the experiment index).

fn main() {
    let scale = gadget_bench::Scale::from_args();
    gadget_bench::experiments::fig7::run(&scale);
}
