//! Runs the whole evaluation suite — every table and figure — in order,
//! the equivalent of the paper artifact's `runAllExprs.sh`.

use gadget_bench::experiments;
use gadget_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("running the full Gadget evaluation suite");
    println!(
        "scale: {} events / {} ops (use --events/--ops/--full to change)\n",
        scale.events, scale.ops
    );

    let t0 = std::time::Instant::now();
    experiments::table1::run(&scale);
    experiments::fig2::run(&scale);
    experiments::fig3::run(&scale);
    experiments::fig4::run(&scale);
    experiments::table2::run(&scale);
    experiments::fig5::run(&scale);
    experiments::fig6::run(&scale);
    experiments::table3::run(&scale);
    experiments::fig7::run(&scale);
    experiments::fig10::run(&scale);
    experiments::fig11::run(&scale);
    experiments::fig12::run(&scale);
    experiments::fig13::run(&scale);
    experiments::fig14::run(&scale);
    experiments::ext_external::run(&scale);
    experiments::ext_cache_tuning::run(&scale);
    experiments::ext_sweep::run(&scale);
    println!(
        "\nfull suite completed in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
