//! Regenerates the paper's table2 (see DESIGN.md for the experiment index).

fn main() {
    let scale = gadget_bench::Scale::from_args();
    gadget_bench::experiments::table2::run(&scale);
}
