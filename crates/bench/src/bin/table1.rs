//! Regenerates the paper's table1 (see DESIGN.md for the experiment index).

fn main() {
    let scale = gadget_bench::Scale::from_args();
    gadget_bench::experiments::table1::run(&scale);
}
