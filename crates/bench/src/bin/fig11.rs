//! Regenerates the paper's fig11 (see DESIGN.md for the experiment index).

fn main() {
    let scale = gadget_bench::Scale::from_args();
    gadget_bench::experiments::fig11::run(&scale);
}
