//! Smoke tests: every experiment's compute path runs at tiny scale and
//! returns structurally sound results. Keeps the table/figure harness
//! from rotting as the underlying crates evolve.

use gadget_bench::experiments;
use gadget_bench::Scale;

fn tiny() -> Scale {
    Scale {
        events: 4_000,
        ops: 4_000,
        seed: 7,
        metrics: None,
        trace: None,
        batch: 1,
        reports: None,
    }
}

#[test]
fn table1_covers_all_streams_and_operators() {
    let rows = experiments::table1::compute(&tiny());
    // 9 operators for borg and taxi, 7 for azure (no joins).
    assert_eq!(rows.len(), 9 + 9 + 7);
    for r in &rows {
        let sum = r.get + r.put + r.merge + r.delete;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "{}/{} ratios sum {sum}",
            r.dataset,
            r.operator
        );
    }
}

#[test]
fn fig2_sweeps_monotonically() {
    let rows = experiments::fig2::compute(&tiny());
    assert_eq!(rows.len(), 8);
    let tumbling: Vec<f64> = rows
        .iter()
        .filter(|r| r.operator == "tumbling")
        .map(|r| r.delete)
        .collect();
    // Delete share must not increase with window length.
    for w in tumbling.windows(2) {
        assert!(w[0] >= w[1] - 0.02, "delete share rose with window length");
    }
}

#[test]
fn fig3_and_fig4_amplifications() {
    let rows = experiments::fig3::compute(&tiny());
    assert_eq!(rows.len(), 9);
    let agg = rows.iter().find(|r| r.operator == "aggregation").unwrap();
    assert_eq!(agg.event_amplification, 2.0);
    assert_eq!(agg.key_amplification, 1.0);

    let rows = experiments::fig4::compute(&tiny());
    assert_eq!(rows.len(), 4);
    // Event amplification tracks length/slide linearly.
    let ratio0 = rows[0].event_amplification / rows[0].length_over_slide;
    for r in &rows {
        let ratio = r.event_amplification / r.length_over_slide;
        assert!(
            (ratio - ratio0).abs() < 0.1 * ratio0,
            "nonlinear amplification"
        );
    }
}

#[test]
fn table2_only_aggregation_passes() {
    let rows = experiments::table2::compute(&tiny());
    for r in &rows {
        assert_eq!(r.rejected, r.operator != "aggregation", "{}", r.operator);
    }
}

#[test]
fn fig5_and_fig6_locality() {
    let rows = experiments::fig5::compute(&tiny());
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(
            r.mean_stack_distance < r.shuffled_mean_stack_distance,
            "{}",
            r.operator
        );
        assert!(
            r.unique_sequences <= r.shuffled_unique_sequences,
            "{}",
            r.operator
        );
    }
    let rows = experiments::fig6::compute(&tiny());
    assert_eq!(rows.len(), 2);
    assert!(rows[1].peak_working_set > rows[0].peak_working_set);
}

#[test]
fn table3_and_fig7_ycsb_divergence() {
    let rows = experiments::table3::compute(&tiny());
    for r in &rows {
        assert!(
            r.ycsb.p50 > r.real.p50,
            "{}: YCSB TTLs must be longer",
            r.operator
        );
    }
    let rows = experiments::fig7::compute(&tiny());
    for r in &rows {
        let real = &r.variants[0];
        let ycsb_l = &r.variants[1];
        let ycsb_s = &r.variants[2];
        assert!(
            real.mean_stack_distance < ycsb_l.mean_stack_distance,
            "{}",
            r.operator
        );
        assert!(
            ycsb_s.unique_sequences < real.unique_sequences,
            "{}",
            r.operator
        );
    }
}

#[test]
fn fig10_simulation_matches_reference() {
    let rows = experiments::fig10::compute(&tiny());
    for r in &rows {
        assert_eq!(r.gadget_len, r.real_len, "{}", r.operator);
        assert_eq!(r.gadget_sequences, r.real_sequences, "{}", r.operator);
    }
}

#[test]
fn fig12_and_fig13_store_matrix() {
    let rows = experiments::fig12::compute(&tiny());
    assert_eq!(rows.len(), 3 * 4);
    assert!(rows.iter().all(|r| r.throughput > 0.0));

    // Batched replay runs the same matrix through apply_batch and must
    // produce the same structure.
    let batched = experiments::fig12::compute(&Scale {
        batch: 64,
        ..tiny()
    });
    assert_eq!(batched.len(), 3 * 4);
    assert!(batched.iter().all(|r| r.throughput > 0.0));

    let rows = experiments::fig13::compute(&tiny());
    assert_eq!(rows.len(), 11 * 4);
    // Sanity of the claim-check helper.
    let beaten = experiments::fig13::outperformed_count(
        &rows,
        "rocksdb-class",
        &["faster-class", "berkeleydb-class"],
    );
    assert!(beaten <= 11);
}

#[test]
fn fig14_produces_all_deployments() {
    // Timing comparisons are meaningless at smoke scale (thread startup
    // dominates); assert structure only. The real comparison runs in the
    // fig14 binary at benchmark scale.
    let rows = experiments::fig14::compute(&tiny());
    assert_eq!(rows.len(), 6);
    for deployment in ["isolated", "concurrent-A", "concurrent-B"] {
        assert_eq!(
            rows.iter().filter(|r| r.deployment == deployment).count(),
            2,
            "{deployment}"
        );
    }
    assert!(rows.iter().all(|r| r.throughput > 0.0 && r.p999_ns > 0));
}

#[test]
fn extension_experiments_run() {
    let rows = experiments::ext_external::compute(&tiny());
    assert_eq!(rows.len(), 2 * 3);
    for chunk in rows.chunks(3) {
        assert!(
            chunk[0].throughput > chunk[2].throughput,
            "remote-datacenter must be slower than embedded"
        );
    }
    let rows = experiments::ext_cache_tuning::compute(&tiny());
    assert_eq!(rows.len(), 9);
    for r in &rows {
        assert!(r.miss_at_64 >= r.miss_at_4096 - 1e-9, "{}", r.operator);
    }
}
