//! Ablation: LSM block-cache size vs read latency under a zipfian
//! workload — the knob the paper's temporal-locality analysis (§8) says
//! could be auto-tuned from stack-distance profiles.

use criterion::{criterion_group, criterion_main, Criterion};

use gadget_distrib::{seeded_rng, KeyDistribution, ZipfianKeys};
use gadget_kv::StateStore;
use gadget_lsm::{LsmConfig, LsmStore};

fn with_cache(cache_bytes: usize) -> (LsmStore, tempdir::TempDirGuard) {
    let dir = tempdir::fresh();
    let cfg = LsmConfig {
        memtable_bytes: 64 << 10,
        block_cache_bytes: cache_bytes,
        l1_target_bytes: 256 << 10,
        target_file_bytes: 64 << 10,
        ..LsmConfig::small()
    };
    let store = LsmStore::open(&dir.0, cfg).expect("open lsm");
    // Seed 50K keys so the tree has several levels.
    for k in 0..50_000u64 {
        store.put(&k.to_be_bytes(), &[3u8; 128]).expect("seed");
    }
    store.compact_and_wait().expect("quiesce");
    (store, dir)
}

/// Minimal temp-dir guard (no external dependency).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDirGuard(pub PathBuf);

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    pub fn fresh() -> TempDirGuard {
        let dir = std::env::temp_dir().join(format!(
            "gadget-ablation-cache-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock before epoch")
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        TempDirGuard(dir)
    }
}

fn cache_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_zipf_get_by_cache");
    group.sample_size(20);
    for (label, bytes) in [("64KiB", 64 << 10), ("1MiB", 1 << 20), ("16MiB", 16 << 20)] {
        let (store, _guard) = with_cache(bytes);
        let mut zipf = ZipfianKeys::new(50_000, 0.99);
        let mut rng = seeded_rng(7);
        group.bench_function(label, |b| {
            b.iter(|| {
                let k = zipf.next_key(&mut rng);
                store.get(&k.to_be_bytes()).expect("get");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cache_sweep);
criterion_main!(benches);
