//! Criterion microbenchmarks: raw point-operation cost per store class.
//!
//! These isolate the §6.5 discussion: hash/B+Tree stores win point ops;
//! the LSM pays for its ordered structure but amortizes writes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use gadget_bench::{all_stores, build_store};

fn bench_puts(c: &mut Criterion) {
    let mut group = c.benchmark_group("put_256B");
    for inst in all_stores(256) {
        let mut i = 0u64;
        group.bench_function(inst.label, |b| {
            b.iter(|| {
                i += 1;
                inst.store
                    .put(&(i % 100_000).to_be_bytes(), &[7u8; 256])
                    .expect("put");
            })
        });
    }
    group.finish();
}

fn bench_gets(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_hot_1k");
    for inst in all_stores(256) {
        for k in 0..1_000u64 {
            inst.store.put(&k.to_be_bytes(), &[1u8; 256]).expect("seed");
        }
        let mut i = 0u64;
        group.bench_function(inst.label, |b| {
            b.iter(|| {
                i += 1;
                inst.store.get(&(i % 1_000).to_be_bytes()).expect("get");
            })
        });
    }
    group.finish();
}

fn bench_merge_growth(c: &mut Criterion) {
    // The holistic-window hot path: repeated merges on one growing bucket.
    let mut group = c.benchmark_group("merge_append_64B");
    group.sample_size(20);
    for label in gadget_bench::STORE_LABELS {
        group.bench_function(label, |b| {
            b.iter_batched(
                || build_store(label, 256),
                |inst| {
                    for _ in 0..1_000 {
                        inst.store.merge(b"bucket", &[9u8; 64]).expect("merge");
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_puts, bench_gets, bench_merge_growth);
criterion_main!(benches);
