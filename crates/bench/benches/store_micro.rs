//! Criterion microbenchmarks: raw point-operation cost per store class.
//!
//! These isolate the §6.5 discussion: hash/B+Tree stores win point ops;
//! the LSM pays for its ordered structure but amortizes writes.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use gadget_bench::{all_stores, build_store};
use gadget_kv::{MemStore, ObservedStore, StateStore};

fn bench_puts(c: &mut Criterion) {
    let mut group = c.benchmark_group("put_256B");
    for inst in all_stores(256) {
        let mut i = 0u64;
        group.bench_function(inst.label, |b| {
            b.iter(|| {
                i += 1;
                inst.store
                    .put(&(i % 100_000).to_be_bytes(), &[7u8; 256])
                    .expect("put");
            })
        });
    }
    group.finish();
}

fn bench_gets(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_hot_1k");
    for inst in all_stores(256) {
        for k in 0..1_000u64 {
            inst.store.put(&k.to_be_bytes(), &[1u8; 256]).expect("seed");
        }
        let mut i = 0u64;
        group.bench_function(inst.label, |b| {
            b.iter(|| {
                i += 1;
                inst.store.get(&(i % 1_000).to_be_bytes()).expect("get");
            })
        });
    }
    group.finish();
}

fn bench_merge_growth(c: &mut Criterion) {
    // The holistic-window hot path: repeated merges on one growing bucket.
    let mut group = c.benchmark_group("merge_append_64B");
    group.sample_size(20);
    for label in gadget_bench::STORE_LABELS {
        group.bench_function(label, |b| {
            b.iter_batched(
                || build_store(label, 256),
                |inst| {
                    for _ in 0..1_000 {
                        inst.store.merge(b"bucket", &[9u8; 64]).expect("merge");
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

/// Times one run of `ops` operations of `f`, in nanoseconds per op.
fn ns_per_op(ops: u64, mut f: impl FnMut(u64)) -> f64 {
    let started = Instant::now();
    for i in 0..ops {
        f(i);
    }
    started.elapsed().as_nanos() as f64 / ops as f64
}

fn bench_metrics_overhead(c: &mut Criterion) {
    // The gadget-obs acceptance check: wrapping a store in ObservedStore
    // (per-op counters + 1-in-64 sampled latency timing) must cost <5% on
    // the hot path. MemStore is the worst case — the cheapest inner store
    // puts the instrumentation at its largest relative share.
    let bare = MemStore::new();
    let observed = ObservedStore::new(MemStore::new());
    for k in 0..1_000u64 {
        bare.put(&k.to_be_bytes(), &[1u8; 64]).expect("seed");
        observed.put(&k.to_be_bytes(), &[1u8; 64]).expect("seed");
    }

    let mut group = c.benchmark_group("metrics_overhead");
    let mut i = 0u64;
    group.bench_function("mem_bare_get", |b| {
        b.iter(|| {
            i += 1;
            black_box(bare.get(&(i % 1_000).to_be_bytes()).expect("get"));
        })
    });
    let mut i = 0u64;
    group.bench_function("mem_observed_get", |b| {
        b.iter(|| {
            i += 1;
            black_box(observed.get(&(i % 1_000).to_be_bytes()).expect("get"));
        })
    });
    let mut i = 0u64;
    group.bench_function("mem_bare_put", |b| {
        b.iter(|| {
            i += 1;
            bare.put(&(i % 1_000).to_be_bytes(), &[2u8; 64])
                .expect("put");
        })
    });
    let mut i = 0u64;
    group.bench_function("mem_observed_put", |b| {
        b.iter(|| {
            i += 1;
            observed
                .put(&(i % 1_000).to_be_bytes(), &[2u8; 64])
                .expect("put");
        })
    });
    group.finish();

    // Paired measurement with the verdict printed directly: same op
    // sequence, same working set, short chunks interleaved A/B so a
    // frequency or scheduler shift mid-bench cannot bias one side, min
    // per side. Chunks are deliberately small relative to how long the
    // machine stays in one speed regime; the min then picks each side's
    // quiet chunks even on a noisy host.
    const OPS: u64 = 100_000;
    const ROUNDS: usize = 100;
    let mut bare_ns = f64::INFINITY;
    let mut observed_ns = f64::INFINITY;
    let mut ratios = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let b = ns_per_op(OPS, |i| {
            black_box(bare.get(&(i % 1_000).to_be_bytes()).expect("get"));
        });
        let o = ns_per_op(OPS, |i| {
            black_box(observed.get(&(i % 1_000).to_be_bytes()).expect("get"));
        });
        bare_ns = bare_ns.min(b);
        observed_ns = observed_ns.min(o);
        ratios.push(o / b);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median_overhead = (ratios[ROUNDS / 2] - 1.0) * 100.0;
    let overhead = (observed_ns / bare_ns - 1.0) * 100.0;
    println!("metrics_overhead median of paired rounds: {median_overhead:+.2}%");
    println!(
        "metrics_overhead paired gets: bare {bare_ns:.1} ns/op, \
         observed {observed_ns:.1} ns/op => overhead {overhead:+.2}% (target < 5%)"
    );
    // Machine-greppable verdict for CI. Tracing must be off here: with no
    // active session the sampled-span hook in the timer is one relaxed
    // atomic load, and that cost is part of what the 5% budget covers.
    assert!(
        !gadget_obs::trace::enabled(),
        "tracing unexpectedly enabled during overhead measurement"
    );
    println!(
        "metrics_overhead: {} ({overhead:+.2}% vs 5% budget, tracing disabled)",
        if overhead < 5.0 { "PASS" } else { "FAIL" }
    );
}

criterion_group!(
    benches,
    bench_puts,
    bench_gets,
    bench_merge_growth,
    bench_metrics_overhead
);
criterion_main!(benches);
